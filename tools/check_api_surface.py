#!/usr/bin/env python3
"""Public-API surface check (CI, next to the doc-link check).

Asserts that ``repro.api.__all__`` matches the committed snapshot in
``docs/api_surface.txt`` (one name per line, sorted), and that every
advertised name actually resolves on the package.  Growing or shrinking
the stable surface is a reviewed, deliberate act: change the snapshot
in the same commit as the code (see docs/API.md, "Deprecation policy").
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

SNAPSHOT = ROOT / "docs" / "api_surface.txt"


def main() -> int:
    import repro.api as api

    expected = [line.strip() for line in SNAPSHOT.read_text().splitlines()
                if line.strip() and not line.startswith("#")]
    actual = sorted(api.__all__)
    errors = []
    if expected != sorted(expected):
        errors.append(f"{SNAPSHOT.name} is not sorted; keep it sorted")
    missing = sorted(set(expected) - set(actual))
    extra = sorted(set(actual) - set(expected))
    if missing:
        errors.append(
            "snapshot names absent from repro.api.__all__: " + ", ".join(missing)
        )
    if extra:
        errors.append(
            "repro.api.__all__ names absent from the snapshot: " + ", ".join(extra)
            + f"  (update {SNAPSHOT.relative_to(ROOT)} deliberately)"
        )
    for name in actual:
        if not hasattr(api, name):
            errors.append(f"repro.api.__all__ advertises {name!r} but it "
                          "does not resolve")
    if errors:
        print("\n".join(errors))
        print(f"\napi-surface: FAILED ({len(errors)} problem(s))")
        return 1
    print(f"api-surface: {len(actual)} public name(s) match "
          f"{SNAPSHOT.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
