#!/usr/bin/env python3
"""Documentation link checker (`make docs-check`).

Scans the repository's markdown files and verifies that

* every relative markdown link target ``[text](path)`` exists, and
* every backticked repository path (````src/repro/...````,
  ``docs/...`` -- anything with a slash that ends in ``.py`` or ``.md``)
  points at a real file,

so the README module map and the ARCHITECTURE paper-section→module map
can never silently rot. Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Markdown files under these locations are checked.  (ISSUE/CHANGES/
#: PAPERS and other process files are intentionally out of scope.)
DOC_GLOBS = ["README.md", "docs/*.md", "src/**/README.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
_CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_./-]+\.(?:py|md))`")


def check_file(md: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (md.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(ROOT)}: broken link -> {target}")
    for target in _CODE_PATH.findall(text):
        # Backticked paths are repo-root-relative by convention.
        if not (ROOT / target).exists():
            errors.append(f"{md.relative_to(ROOT)}: missing path -> {target}")
    return errors


def main() -> int:
    docs: list[Path] = []
    for pattern in DOC_GLOBS:
        docs.extend(ROOT.glob(pattern))
    docs = sorted(set(d for d in docs if d.is_file()))
    errors = []
    for md in docs:
        errors.extend(check_file(md))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken reference(s) in {len(docs)} file(s)")
        return 1
    print(f"docs-check: {len(docs)} markdown file(s), all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
