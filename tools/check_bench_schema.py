#!/usr/bin/env python3
"""BENCH_*.json trajectory-document schema check (CI).

Pins the benchmark harness's document shape the same way
``check_api_surface.py`` pins ``repro.api``: the key set at every level
is exact (no silent growth or shrinkage), the version is one this
checker understands, and the file on disk is byte-identical to its own
canonical re-serialization (sorted keys, indent 1, trailing newline) --
so trajectory diffs between PRs only ever show measured values.

Usage::

    python tools/check_bench_schema.py                # every ./BENCH_*.json
    python tools/check_bench_schema.py path/to/BENCH_smoke.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: The version(s) of the document shape this checker understands.
KNOWN_VERSIONS = (1,)

#: Known BENCH_serving.json document versions.  Version 2 added the
#: multiproc front-tier section and the skew/multiplex loadgen keys.
#: Version 3 added the per-summary "slowest" top-K table (latency,
#: verb, trace id).
KNOWN_SERVING_VERSIONS = (1, 2, 3)

#: Known BENCH_speculation.json document versions.
KNOWN_SPECULATION_VERSIONS = (1,)

#: Known BENCH_compile.json document versions.
KNOWN_COMPILE_VERSIONS = (1,)

_TOP_KEYS = {
    "backends", "chunk", "equivalence_ok", "jobs", "parallel_wins",
    "repeat", "suite", "version", "workloads",
}

# -- serving-trajectory shape (suite == "serving") ---------------------------
_SERVING_TOP_KEYS = {
    "analyze_fraction", "compile_cache_size", "levels", "mean_speedup",
    "mode", "programs", "requests_per_level", "seed", "sharded_wins",
    "suite", "version", "workers",
}
_SERVING_LEVEL_KEYS = {"clients", "pools", "speedup"}
_SERVING_POOLS = {"sharded", "shared"}
#: One run_load summary document (version 1 shape).
_SERVING_SUMMARY_KEYS_V1 = {
    "analyze_fraction", "clients", "completed", "errors", "failures",
    "latency", "mode", "requests", "shed", "throughput_rps", "wall_s",
}
#: Version 2 added skew plumbing and connection accounting.
_SERVING_SUMMARY_KEYS_V2 = _SERVING_SUMMARY_KEYS_V1 | {
    "connections", "skew", "zipf_s",
}
#: Version 3 added the slowest-requests table.
_SERVING_SUMMARY_KEYS_V3 = _SERVING_SUMMARY_KEYS_V2 | {"slowest"}
_SERVING_SLOWEST_KEYS = {"latency_s", "trace_id", "verb"}
#: Pool entries add the server-side cache deltas to the summary.
_SERVING_POOL_EXTRA_KEYS = {"coalesced", "warm_hits"}
_SERVING_LATENCY_KEYS = {"max_s", "mean_s", "p50_s", "p95_s", "p99_s"}

# -- the multiproc section (serving version >= 2) ----------------------------
_MULTIPROC_TOP_KEYS = {
    "analyze_fraction", "backend_workers", "backends", "cold", "cpu_count",
    "hot_shard_wins", "multiproc_wins", "programs", "replicas",
    "requests_per_level", "seed", "single_workers", "zipf",
}
_MULTIPROC_COLD_KEYS = {"levels", "mean_speedup"}
_MULTIPROC_LEVEL_KEYS = {"clients", "speedup", "systems"}
_MULTIPROC_SYSTEMS = {"multiproc", "single"}
_MULTIPROC_ZIPF_KEYS = {
    "clients", "hot_rps", "multiplex", "p50_speedup", "p95_speedup",
    "requests", "systems", "throughput_speedup", "zipf_s",
}
#: The multiproc system's zipf summary carries front-tier counters.
_MULTIPROC_ZIPF_FRONT_KEYS = {"fanouts", "front_coalesced"}

# -- speculation-trajectory shape (suite == "speculation") -------------------
_SPECULATION_TOP_KEYS = {
    "conflict", "equivalence_ok", "gap", "jobs", "repeat", "suite",
    "version",
}
_SPECULATION_COMMON_KEYS = {
    "committed", "correct", "description", "inorder_wall_s", "name",
    "rollbacks", "speculative_wall_s", "traced_accesses", "trips",
}
_SPECULATION_GAP_KEYS = _SPECULATION_COMMON_KEYS | {
    "sequential_wall_s", "speedup",
}
_SPECULATION_CONFLICT_KEYS = _SPECULATION_COMMON_KEYS | {"loss"}

# -- compile-trajectory shape (suite == "compile") ---------------------------
_COMPILE_TOP_KEYS = {
    "divergences", "equivalence_ok", "programs", "repeat", "sections",
    "seed", "suite", "version",
}
_COMPILE_SECTIONS = {"fuzz", "workloads"}
_COMPILE_SECTION_KEYS = {
    "baseline", "items", "speedup_p50", "speedup_p99", "tier0_fraction",
    "tiered",
}
_COMPILE_MODE_KEYS = {"p50_ms", "p99_ms"}
_COMPILE_ITEM_KEYS = {
    "baseline_ms", "divergent", "escalation_reason", "name", "screening",
    "speedup", "tier_used", "tiered_ms",
}
_COMPILE_TIERS = ("tier0", "tier1")
_COMPILE_SCREENINGS = ("resolved", "escalated", "off")
_CHUNK_KEYS = {"policy", "size"}
_WIN_KEYS = {"backend", "speedup", "workload"}
_WORKLOAD_KEYS = {
    "description", "loop", "name", "results", "seq_work", "trips",
}
_RESULT_KEYS = {
    "backend_used", "chunks", "correct", "jobs", "parallel", "speedup",
    "wall_s",
}


def _key_errors(what: str, payload: dict, expected: set) -> list:
    errors = []
    actual = set(payload)
    missing = sorted(expected - actual)
    extra = sorted(actual - expected)
    if missing:
        errors.append(f"{what}: missing key(s) {missing}")
    if extra:
        errors.append(f"{what}: unexpected key(s) {extra}")
    return errors


def _validate_load_summary(what: str, entry: dict, summary_keys: set,
                           extra_keys: set = frozenset()) -> list:
    """Schema problems of one run_load summary document."""
    errors = _key_errors(what, entry, summary_keys | extra_keys)
    if set(entry) != summary_keys | extra_keys:
        return errors
    errors.extend(_key_errors(
        f"{what} latency", entry["latency"], _SERVING_LATENCY_KEYS,
    ))
    if not isinstance(entry["throughput_rps"], (int, float)) or \
            entry["throughput_rps"] < 0:
        errors.append(f"{what}: 'throughput_rps' must be >= 0")
    if entry["failures"]:
        errors.append(
            f"{what}: transport failures recorded "
            f"({entry['failures'][:1]}...)"
        )
    if "skew" in entry and entry["skew"] not in ("uniform", "zipf"):
        errors.append(f"{what}: 'skew' must be 'uniform' or 'zipf'")
    if "slowest" in entry:
        slowest = entry["slowest"]
        if not isinstance(slowest, list):
            errors.append(f"{what}: 'slowest' must be a list")
        else:
            for slow in slowest:
                errors.extend(_key_errors(
                    f"{what} slowest entry", slow, _SERVING_SLOWEST_KEYS,
                ))
    return errors


def validate_multiproc_section(payload: dict,
                               summary_keys: set = None) -> list:
    """Schema problems of the multiproc front-tier section (empty =
    valid)."""
    if summary_keys is None:
        summary_keys = _SERVING_SUMMARY_KEYS_V2
    errors = _key_errors("multiproc", payload, _MULTIPROC_TOP_KEYS)
    if errors:
        return errors
    for key, minimum in (("backends", 1), ("backend_workers", 1),
                         ("replicas", 1), ("single_workers", 1)):
        if not isinstance(payload[key], int) or payload[key] < minimum:
            errors.append(f"multiproc: {key!r} must be an integer >= {minimum}")
    for key in ("multiproc_wins", "hot_shard_wins"):
        if not isinstance(payload[key], bool):
            errors.append(f"multiproc: {key!r} must be a boolean")
    cold = payload["cold"]
    errors.extend(_key_errors("multiproc cold", cold, _MULTIPROC_COLD_KEYS))
    if set(cold) == _MULTIPROC_COLD_KEYS:
        levels = cold["levels"]
        if not isinstance(levels, list) or not levels:
            errors.append("multiproc cold: 'levels' must be a non-empty list")
            levels = []
        for level in levels:
            errors.extend(_key_errors(
                "multiproc level", level, _MULTIPROC_LEVEL_KEYS,
            ))
            if set(level) != _MULTIPROC_LEVEL_KEYS:
                continue
            what = f"multiproc level clients={level['clients']!r}"
            if set(level["systems"]) != _MULTIPROC_SYSTEMS:
                errors.append(
                    f"{what}: systems cover {sorted(level['systems'])}, "
                    f"expected exactly {sorted(_MULTIPROC_SYSTEMS)}"
                )
                continue
            for system, entry in level["systems"].items():
                errors.extend(_validate_load_summary(
                    f"{what} system {system!r}", entry, summary_keys,
                ))
    zipf = payload["zipf"]
    errors.extend(_key_errors("multiproc zipf", zipf, _MULTIPROC_ZIPF_KEYS))
    if set(zipf) == _MULTIPROC_ZIPF_KEYS:
        if set(zipf["systems"]) != _MULTIPROC_SYSTEMS:
            errors.append(
                f"multiproc zipf: systems cover {sorted(zipf['systems'])}, "
                f"expected exactly {sorted(_MULTIPROC_SYSTEMS)}"
            )
        else:
            for system, entry in zipf["systems"].items():
                extra = (
                    _MULTIPROC_ZIPF_FRONT_KEYS if system == "multiproc"
                    else frozenset()
                )
                errors.extend(_validate_load_summary(
                    f"multiproc zipf system {system!r}", entry,
                    summary_keys, extra,
                ))
                if set(entry) >= summary_keys and \
                        entry.get("skew") != "zipf":
                    errors.append(
                        f"multiproc zipf system {system!r}: summary must "
                        "record skew='zipf'"
                    )
    return errors


def validate_serving_doc(payload: dict) -> list:
    """Schema problems of one BENCH_serving document (empty = valid)."""
    version = payload.get("version")
    if version not in KNOWN_SERVING_VERSIONS:
        return [
            f"document: unsupported serving-bench version "
            f"{version!r} (this checker speaks "
            f"{list(KNOWN_SERVING_VERSIONS)})"
        ]
    top_keys = _SERVING_TOP_KEYS if version == 1 else (
        _SERVING_TOP_KEYS | {"multiproc"}
    )
    summary_keys = {
        1: _SERVING_SUMMARY_KEYS_V1,
        2: _SERVING_SUMMARY_KEYS_V2,
        3: _SERVING_SUMMARY_KEYS_V3,
    }[version]
    errors = _key_errors("document", payload, top_keys)
    if errors:
        return errors
    if not isinstance(payload["workers"], int) or payload["workers"] < 1:
        errors.append("document: 'workers' must be a positive integer")
    if not isinstance(payload["sharded_wins"], bool):
        errors.append("document: 'sharded_wins' must be a boolean")
    if payload["mode"] not in ("closed", "open"):
        errors.append("document: 'mode' must be 'closed' or 'open'")
    levels = payload["levels"]
    if not isinstance(levels, list) or not levels:
        errors.append("document: 'levels' must be a non-empty list")
        return errors
    for level in levels:
        errors.extend(_key_errors("level", level, _SERVING_LEVEL_KEYS))
        if set(level) != _SERVING_LEVEL_KEYS:
            continue
        clients = level["clients"]
        what = f"level clients={clients!r}"
        if not isinstance(clients, int) or clients < 1:
            errors.append(f"{what}: 'clients' must be a positive integer")
        if set(level["pools"]) != _SERVING_POOLS:
            errors.append(
                f"{what}: pools cover {sorted(level['pools'])}, "
                f"expected exactly {sorted(_SERVING_POOLS)}"
            )
            continue
        for discipline, entry in level["pools"].items():
            errors.extend(_validate_load_summary(
                f"{what} pool {discipline!r}", entry, summary_keys,
                _SERVING_POOL_EXTRA_KEYS,
            ))
    if version >= 2:
        errors.extend(
            validate_multiproc_section(payload["multiproc"], summary_keys)
        )
    return errors


def validate_speculation_doc(payload: dict) -> list:
    """Schema problems of one BENCH_speculation document (empty =
    valid)."""
    errors = _key_errors("document", payload, _SPECULATION_TOP_KEYS)
    if errors:
        return errors
    if payload["version"] not in KNOWN_SPECULATION_VERSIONS:
        return [
            f"document: unsupported speculation-bench version "
            f"{payload['version']!r} (this checker speaks "
            f"{list(KNOWN_SPECULATION_VERSIONS)})"
        ]
    if not isinstance(payload["jobs"], int) or payload["jobs"] < 1:
        errors.append("document: 'jobs' must be a positive integer")
    if not isinstance(payload["repeat"], int) or payload["repeat"] < 1:
        errors.append("document: 'repeat' must be a positive integer")
    if not isinstance(payload["equivalence_ok"], bool):
        errors.append("document: 'equivalence_ok' must be a boolean")
    for section, headline, entry_keys, expect_commit in (
        ("gap", "win_fraction", _SPECULATION_GAP_KEYS, True),
        ("conflict", "max_loss", _SPECULATION_CONFLICT_KEYS, False),
    ):
        body = payload[section]
        errors.extend(_key_errors(
            section, body, {headline, "workloads"},
        ))
        if set(body) != {headline, "workloads"}:
            continue
        workloads = body["workloads"]
        if not isinstance(workloads, list) or not workloads:
            errors.append(f"{section}: 'workloads' must be a non-empty list")
            continue
        for entry in workloads:
            what = f"{section} workload {entry.get('name')!r}"
            errors.extend(_key_errors(what, entry, entry_keys))
            if set(entry) != entry_keys:
                continue
            if not isinstance(entry["correct"], bool):
                errors.append(f"{what}: 'correct' must be a boolean")
            if entry["committed"] is not expect_commit:
                errors.append(
                    f"{what}: expected committed={expect_commit} in the "
                    f"{section} section"
                )
            for key in ("inorder_wall_s", "speculative_wall_s"):
                if not isinstance(entry[key], (int, float)) or entry[key] < 0:
                    errors.append(f"{what}: {key!r} must be >= 0")
    return errors


def validate_compile_doc(payload: dict) -> list:
    """Schema problems of one BENCH_compile document (empty = valid)."""
    errors = _key_errors("document", payload, _COMPILE_TOP_KEYS)
    if errors:
        return errors
    if payload["version"] not in KNOWN_COMPILE_VERSIONS:
        return [
            f"document: unsupported compile-bench version "
            f"{payload['version']!r} (this checker speaks "
            f"{list(KNOWN_COMPILE_VERSIONS)})"
        ]
    if not isinstance(payload["repeat"], int) or payload["repeat"] < 1:
        errors.append("document: 'repeat' must be a positive integer")
    if not isinstance(payload["programs"], int) or payload["programs"] < 1:
        errors.append("document: 'programs' must be a positive integer")
    if not isinstance(payload["divergences"], int) or payload["divergences"] < 0:
        errors.append("document: 'divergences' must be an integer >= 0")
    if not isinstance(payload["equivalence_ok"], bool):
        errors.append("document: 'equivalence_ok' must be a boolean")
    if payload.get("equivalence_ok") is not (payload.get("divergences") == 0):
        errors.append(
            "document: 'equivalence_ok' must be exactly 'divergences == 0'"
        )
    sections = payload["sections"]
    if set(sections) != _COMPILE_SECTIONS:
        errors.append(
            f"document: sections cover {sorted(sections)}, expected "
            f"exactly {sorted(_COMPILE_SECTIONS)}"
        )
        return errors
    for section, body in sections.items():
        errors.extend(_key_errors(f"section {section!r}", body,
                                  _COMPILE_SECTION_KEYS))
        if set(body) != _COMPILE_SECTION_KEYS:
            continue
        for mode in ("tiered", "baseline"):
            errors.extend(_key_errors(
                f"section {section!r} {mode}", body[mode], _COMPILE_MODE_KEYS
            ))
        fraction = body["tier0_fraction"]
        if not isinstance(fraction, (int, float)) or not 0 <= fraction <= 1:
            errors.append(
                f"section {section!r}: 'tier0_fraction' must be in [0, 1]"
            )
        items = body["items"]
        if not isinstance(items, list) or not items:
            errors.append(f"section {section!r}: 'items' must be a "
                          "non-empty list")
            continue
        for entry in items:
            what = f"section {section!r} item {entry.get('name')!r}"
            errors.extend(_key_errors(what, entry, _COMPILE_ITEM_KEYS))
            if set(entry) != _COMPILE_ITEM_KEYS:
                continue
            if entry["tier_used"] not in _COMPILE_TIERS:
                errors.append(f"{what}: unknown tier "
                              f"{entry['tier_used']!r}")
            if entry["screening"] not in _COMPILE_SCREENINGS:
                errors.append(f"{what}: unknown screening verdict "
                              f"{entry['screening']!r}")
            # the hard invariant of the whole tier design, checked where
            # the trajectory is checked: tier0 means no divergence is
            # even *possible* to record, but any recorded divergence is
            # a bug regardless of tier
            if entry["divergent"]:
                errors.append(f"{what}: plan divergence recorded -- "
                              "screening changed an analysis answer")
            for key in ("tiered_ms", "baseline_ms"):
                if not isinstance(entry[key], (int, float)) or entry[key] < 0:
                    errors.append(f"{what}: {key!r} must be >= 0")
    return errors


def validate_bench_doc(payload: dict) -> list:
    """Schema problems of one parsed BENCH document (empty = valid).

    Dispatches on the suite: the serving trajectory (``suite ==
    "serving"``), the speculation trajectory (``suite ==
    "speculation"``) and the compile trajectory (``suite ==
    "compile"``) have their own shapes; everything else is an
    execution-backend trajectory.
    """
    if isinstance(payload, dict) and payload.get("suite") == "serving":
        return validate_serving_doc(payload)
    if isinstance(payload, dict) and payload.get("suite") == "speculation":
        return validate_speculation_doc(payload)
    if isinstance(payload, dict) and payload.get("suite") == "compile":
        return validate_compile_doc(payload)
    errors = _key_errors("document", payload, _TOP_KEYS)
    if errors:
        return errors
    if payload["version"] not in KNOWN_VERSIONS:
        return [
            f"document: unsupported bench version {payload['version']!r} "
            f"(this checker speaks {list(KNOWN_VERSIONS)})"
        ]
    if not isinstance(payload["suite"], str) or not payload["suite"]:
        errors.append("document: 'suite' must be a non-empty string")
    if not isinstance(payload["jobs"], int) or payload["jobs"] < 1:
        errors.append("document: 'jobs' must be a positive integer")
    if not isinstance(payload["repeat"], int) or payload["repeat"] < 1:
        errors.append("document: 'repeat' must be a positive integer")
    if not isinstance(payload["equivalence_ok"], bool):
        errors.append("document: 'equivalence_ok' must be a boolean")
    backends = payload["backends"]
    if not isinstance(backends, list) or not backends or not all(
        isinstance(b, str) for b in backends
    ):
        errors.append("document: 'backends' must be a non-empty string list")
        backends = []
    errors.extend(_key_errors("chunk", payload["chunk"], _CHUNK_KEYS))
    for win in payload["parallel_wins"]:
        errors.extend(_key_errors("parallel_wins entry", win, _WIN_KEYS))
    if not isinstance(payload["workloads"], list) or not payload["workloads"]:
        errors.append("document: 'workloads' must be a non-empty list")
        return errors
    for workload in payload["workloads"]:
        errors.extend(_key_errors("workload", workload, _WORKLOAD_KEYS))
        if set(workload) != _WORKLOAD_KEYS:
            continue
        name = workload["name"]
        results = workload["results"]
        if sorted(results) != sorted(backends):
            errors.append(
                f"workload {name!r}: results cover {sorted(results)}, "
                f"expected exactly {sorted(backends)}"
            )
        for backend, entry in results.items():
            what = f"workload {name!r} backend {backend!r}"
            errors.extend(_key_errors(what, entry, _RESULT_KEYS))
            if set(entry) != _RESULT_KEYS:
                continue
            if not isinstance(entry["wall_s"], (int, float)) or entry["wall_s"] < 0:
                errors.append(f"{what}: 'wall_s' must be >= 0")
            if not isinstance(entry["correct"], bool):
                errors.append(f"{what}: 'correct' must be a boolean")
            if entry["backend_used"] not in ("", *backends, "sequential"):
                errors.append(
                    f"{what}: 'backend_used' {entry['backend_used']!r} "
                    "is not a known backend"
                )
    return errors


def check_file(path: Path) -> list:
    """Schema + byte-stability problems of one trajectory file."""
    from repro.api.protocol import canonical_json

    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    try:
        payload = json.loads(text)
    except ValueError as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = [f"{path}: {e}" for e in validate_bench_doc(payload)]
    if canonical_json(payload) + "\n" != text:
        errors.append(
            f"{path}: not in canonical form (regenerate with "
            "'repro-eval bench' -- sorted keys, indent 1, trailing newline)"
        )
    return errors


def main(argv) -> int:
    paths = [Path(a) for a in argv] or sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json files found under {ROOT}")
        return 1
    errors = []
    for path in paths:
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        print(f"\nbench-schema: FAILED ({len(errors)} problem(s))")
        return 1
    print(f"bench-schema: {len(paths)} trajectory file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
