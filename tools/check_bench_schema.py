#!/usr/bin/env python3
"""BENCH_*.json trajectory-document schema check (CI).

Pins the benchmark harness's document shape the same way
``check_api_surface.py`` pins ``repro.api``: the key set at every level
is exact (no silent growth or shrinkage), the version is one this
checker understands, and the file on disk is byte-identical to its own
canonical re-serialization (sorted keys, indent 1, trailing newline) --
so trajectory diffs between PRs only ever show measured values.

Usage::

    python tools/check_bench_schema.py                # every ./BENCH_*.json
    python tools/check_bench_schema.py path/to/BENCH_smoke.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: The version(s) of the document shape this checker understands.
KNOWN_VERSIONS = (1,)

_TOP_KEYS = {
    "backends", "chunk", "equivalence_ok", "jobs", "parallel_wins",
    "repeat", "suite", "version", "workloads",
}
_CHUNK_KEYS = {"policy", "size"}
_WIN_KEYS = {"backend", "speedup", "workload"}
_WORKLOAD_KEYS = {
    "description", "loop", "name", "results", "seq_work", "trips",
}
_RESULT_KEYS = {
    "backend_used", "chunks", "correct", "jobs", "parallel", "speedup",
    "wall_s",
}


def _key_errors(what: str, payload: dict, expected: set) -> list:
    errors = []
    actual = set(payload)
    missing = sorted(expected - actual)
    extra = sorted(actual - expected)
    if missing:
        errors.append(f"{what}: missing key(s) {missing}")
    if extra:
        errors.append(f"{what}: unexpected key(s) {extra}")
    return errors


def validate_bench_doc(payload: dict) -> list:
    """Schema problems of one parsed BENCH document (empty = valid)."""
    errors = _key_errors("document", payload, _TOP_KEYS)
    if errors:
        return errors
    if payload["version"] not in KNOWN_VERSIONS:
        return [
            f"document: unsupported bench version {payload['version']!r} "
            f"(this checker speaks {list(KNOWN_VERSIONS)})"
        ]
    if not isinstance(payload["suite"], str) or not payload["suite"]:
        errors.append("document: 'suite' must be a non-empty string")
    if not isinstance(payload["jobs"], int) or payload["jobs"] < 1:
        errors.append("document: 'jobs' must be a positive integer")
    if not isinstance(payload["repeat"], int) or payload["repeat"] < 1:
        errors.append("document: 'repeat' must be a positive integer")
    if not isinstance(payload["equivalence_ok"], bool):
        errors.append("document: 'equivalence_ok' must be a boolean")
    backends = payload["backends"]
    if not isinstance(backends, list) or not backends or not all(
        isinstance(b, str) for b in backends
    ):
        errors.append("document: 'backends' must be a non-empty string list")
        backends = []
    errors.extend(_key_errors("chunk", payload["chunk"], _CHUNK_KEYS))
    for win in payload["parallel_wins"]:
        errors.extend(_key_errors("parallel_wins entry", win, _WIN_KEYS))
    if not isinstance(payload["workloads"], list) or not payload["workloads"]:
        errors.append("document: 'workloads' must be a non-empty list")
        return errors
    for workload in payload["workloads"]:
        errors.extend(_key_errors("workload", workload, _WORKLOAD_KEYS))
        if set(workload) != _WORKLOAD_KEYS:
            continue
        name = workload["name"]
        results = workload["results"]
        if sorted(results) != sorted(backends):
            errors.append(
                f"workload {name!r}: results cover {sorted(results)}, "
                f"expected exactly {sorted(backends)}"
            )
        for backend, entry in results.items():
            what = f"workload {name!r} backend {backend!r}"
            errors.extend(_key_errors(what, entry, _RESULT_KEYS))
            if set(entry) != _RESULT_KEYS:
                continue
            if not isinstance(entry["wall_s"], (int, float)) or entry["wall_s"] < 0:
                errors.append(f"{what}: 'wall_s' must be >= 0")
            if not isinstance(entry["correct"], bool):
                errors.append(f"{what}: 'correct' must be a boolean")
            if entry["backend_used"] not in ("", *backends, "sequential"):
                errors.append(
                    f"{what}: 'backend_used' {entry['backend_used']!r} "
                    "is not a known backend"
                )
    return errors


def check_file(path: Path) -> list:
    """Schema + byte-stability problems of one trajectory file."""
    from repro.api.protocol import canonical_json

    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    try:
        payload = json.loads(text)
    except ValueError as exc:
        return [f"{path}: not JSON ({exc})"]
    errors = [f"{path}: {e}" for e in validate_bench_doc(payload)]
    if canonical_json(payload) + "\n" != text:
        errors.append(
            f"{path}: not in canonical form (regenerate with "
            "'repro-eval bench' -- sorted keys, indent 1, trailing newline)"
        )
    return errors


def main(argv) -> int:
    paths = [Path(a) for a in argv] or sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json files found under {ROOT}")
        return 1
    errors = []
    for path in paths:
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        print(f"\nbench-schema: FAILED ({len(errors)} problem(s))")
        return 1
    print(f"bench-schema: {len(paths)} trajectory file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
