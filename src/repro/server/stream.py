"""Live metrics streaming: the protocol v6 ``subscribe`` verb.

A subscription turns the poll-only ``stats`` snapshot into a push
stream on the *same* JSON-lines connection: the server answers a
:class:`~repro.api.protocol.SubscribeRequest` with a sequence of
:class:`~repro.api.protocol.MetricsFrame` lines instead of a single
response line, still in request order -- requests pipelined behind the
subscribe are answered after the stream's final frame.

The pieces:

* :class:`ResponseStream` -- the marker type the transport
  (:mod:`repro.server.lineserver`) recognizes among pending responses:
  instead of awaiting one document it iterates the stream and writes
  each frame as its own line;
* :class:`Subscription` -- one live stream: paces frames at the
  clamped client-chosen interval, samples the metrics registry through
  an injected callable, emits *deltas* between consecutive samples
  (plus current gauges), and ends on unsubscribe, frame budget
  exhaustion, or connection teardown -- always with a ``final`` frame
  so the client knows the stream is complete;
* :func:`build_stream_body` / :func:`history_entry` -- the pure frame
  construction: cumulative counters diff, gauges pass through, latency
  becomes sparse per-bucket deltas (constant size regardless of
  traffic), ring-buffer samples project to compact history entries.

Frames carry *deltas* rather than snapshots so a dashboard computes
rates with one division and a cheap reader can ignore everything it
does not chart; the first frame's deltas are zero by construction
(there is no earlier sample) and carry the requested ring history
instead.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from ..api.protocol import MetricsFrame, UnsubscribeResponse

__all__ = [
    "MAX_INTERVAL_S",
    "MIN_INTERVAL_S",
    "ResponseStream",
    "Subscription",
    "build_stream_body",
    "clamp_interval",
    "history_entry",
]

#: Server-side clamp on the client-chosen frame interval: fast enough
#: for a live dashboard, slow enough that one subscriber cannot turn
#: the metrics lock into a hot spot.
MIN_INTERVAL_S = 0.05
MAX_INTERVAL_S = 60.0

#: Snapshot keys that are gauges (current level, not cumulative): they
#: surface under the frame's ``gauges``, never as deltas.
_GAUGE_KEYS = frozenset({"inflight", "connections"})

#: Snapshot keys handled specially (latency becomes bucket deltas;
#: uptime is carried whole as the frame timestamp).
_SKIP_KEYS = frozenset({"latency", "uptime_s"})


def clamp_interval(interval_s: float) -> float:
    """The interval the server actually streams at."""
    return min(MAX_INTERVAL_S, max(MIN_INTERVAL_S, float(interval_s)))


def _diff_counters(prev: dict, cur: dict) -> dict:
    """Recursive cumulative-counter delta between two snapshot
    documents (gauges and specially-handled keys excluded)."""
    out = {}
    for key, value in cur.items():
        if key in _SKIP_KEYS or key in _GAUGE_KEYS:
            continue
        if isinstance(value, dict):
            before = prev.get(key)
            out[key] = _diff_counters(
                before if isinstance(before, dict) else {}, value
            )
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            before = prev.get(key, 0)
            if isinstance(before, bool) or not isinstance(before, (int, float)):
                before = 0
            out[key] = value - before
    return out


def _diff_latency(prev: dict, cur: dict) -> dict:
    """Sparse per-bucket histogram deltas between two cumulative
    latency states (:meth:`LatencyHistogram.state`).  ``max_s`` is the
    cumulative maximum (a running max has no meaningful delta)."""
    prev_counts = prev.get("counts", {})
    buckets = {}
    for index, count in cur.get("counts", {}).items():
        delta = count - prev_counts.get(index, 0)
        if delta:
            buckets[index] = delta
    return {
        "buckets": buckets,
        "count": cur.get("total", 0) - prev.get("total", 0),
        "invalid": cur.get("invalid", 0) - prev.get("invalid", 0),
        "max_s": round(cur.get("max_s", 0.0), 6),
        "overflow": cur.get("overflow", 0) - prev.get("overflow", 0),
        "sum_s": round(cur.get("sum_s", 0.0) - prev.get("sum_s", 0.0), 6),
    }


def build_stream_body(prev: dict, cur: dict, topology: str) -> dict:
    """One frame's ``stream`` document from two consecutive samples.

    Key set is schema-stable (pinned by the server tests): ``counters``
    (cumulative deltas, including the nested errors/requests/tiers/
    speculation documents each tier publishes), ``gauges`` (current
    levels -- inflight, connections, plus whatever the sampling server
    injected: per-worker queue depths, the live admission budget,
    per-backend in-flight counts), ``latency`` (sparse bucket deltas),
    ``hot_shards`` (the tracker snapshot on the front tier, ``null`` on
    the threads tier), ``topology`` and the sample's ``uptime_s``.
    """
    prev_stats = prev.get("stats", {})
    cur_stats = cur.get("stats", {})
    return {
        "counters": _diff_counters(prev_stats, cur_stats),
        "gauges": {
            **cur.get("gauges", {}),
            "connections": cur_stats.get("connections", 0),
            "inflight": cur_stats.get("inflight", 0),
        },
        "hot_shards": cur.get("extra", {}).get("hot_shards"),
        "latency": _diff_latency(
            prev.get("latency_state", {}), cur.get("latency_state", {})
        ),
        "topology": topology,
        "uptime_s": cur_stats.get("uptime_s", 0.0),
    }


def history_entry(sample: dict) -> dict:
    """Compact projection of one ring sample for a first frame's
    ``history`` list: enough to reconstruct the recent load shape
    (completion/shed counters, gauges) without shipping full
    snapshots."""
    stats = sample.get("stats", {})
    return {
        "completed": stats.get("completed", 0),
        "errors": sum(stats.get("errors", {}).values()),
        "gauges": dict(sample.get("gauges", {})),
        "inflight": stats.get("inflight", 0),
        "seq": sample.get("seq", 0),
        "shed": stats.get("shed", 0),
        "uptime_s": stats.get("uptime_s", 0.0),
    }


class ResponseStream:
    """Marker base the transport recognizes among pending responses.

    Where an ordinary admission result is one awaitable resolving to
    one document, a :class:`ResponseStream` is iterated: the writer
    sends each yielded document as its own line, then moves on to the
    next pending response -- the in-order contract holds because the
    stream occupies exactly one slot in the per-connection order queue.
    """

    def stop(self) -> None:
        """Ask the stream to finish (idempotent); it ends with a
        ``final`` frame shortly after."""
        raise NotImplementedError

    def frames(self):
        """The async iterator of response documents."""
        raise NotImplementedError


class Subscription(ResponseStream):
    """One live metrics stream bound to one connection.

    ``sample_fn`` (injected by the owning server) takes a fresh
    registry sample including the server's gauges; ``recent_fn``
    returns recent ring samples for first-frame history.  Frames carry
    deltas between consecutive samples.  The stream ends when
    :meth:`stop` is called (unsubscribe, connection teardown, server
    shutdown) or the frame budget is exhausted; the awaitable from
    :meth:`ack` then resolves to the
    :class:`~repro.api.protocol.UnsubscribeResponse` with the exact
    frame count -- queued *after* the stream, it preserves the
    responses-in-request-order contract.

    Must be created on the event loop (it binds the running loop).
    """

    def __init__(
        self,
        sample_fn: Callable[[], dict],
        topology: str,
        interval_s: float = 1.0,
        frames: int = 0,
        history: int = 0,
        recent_fn: Optional[Callable[[int], list]] = None,
    ):
        self.interval_s = clamp_interval(interval_s)
        self.frame_limit = max(0, int(frames))
        self.history = max(0, int(history))
        self.topology = topology
        self.frames_sent = 0
        self.finished = False
        self._sample_fn = sample_fn
        self._recent_fn = recent_fn
        self._stop_event = asyncio.Event()
        self._done: asyncio.Future = asyncio.get_running_loop().create_future()

    def stop(self) -> None:
        self._stop_event.set()

    def ack(self) -> asyncio.Future:
        """Resolves to the :class:`UnsubscribeResponse` once the stream
        actually finished (so the acked frame count is exact)."""
        return self._done

    def _is_final(self) -> bool:
        return self._stop_event.is_set() or (
            self.frame_limit > 0 and self.frames_sent + 1 >= self.frame_limit
        )

    async def frames(self):
        try:
            prev = self._sample_fn()
            first_history = []
            if self.history and self._recent_fn is not None:
                first_history = [
                    history_entry(s) for s in self._recent_fn(self.history)
                ]
            cur = prev  # first frame: zero deltas + history
            while True:
                final = self._is_final()
                yield MetricsFrame(
                    seq=self.frames_sent,
                    stream=build_stream_body(prev, cur, self.topology),
                    elapsed_s=round(
                        max(0.0, cur["uptime_s"] - prev["uptime_s"]), 6
                    ),
                    final=final,
                    history=first_history if self.frames_sent == 0 else [],
                )
                self.frames_sent += 1
                if final:
                    return
                prev = cur
                try:
                    await asyncio.wait_for(
                        self._stop_event.wait(), self.interval_s
                    )
                except asyncio.TimeoutError:
                    pass
                cur = self._sample_fn()
        finally:
            # resolve the ack no matter how the stream ended (client
            # unsubscribe, frame budget, connection teardown, a
            # sample_fn failure) -- a pipelined unsubscribe must never
            # hang behind a stream that died
            self.finished = True
            if not self._done.done():
                self._done.set_result(
                    UnsubscribeResponse(frames=self.frames_sent)
                )
