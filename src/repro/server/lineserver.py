"""The shared asyncio JSON-lines-over-TCP transport.

Both serving tiers speak the same wire format -- one request document
per line, one response document per line, responses **in request order
per connection** while the server works on pipelined requests
concurrently -- so the transport lives here once:

* :class:`ReproServer <repro.server.server.ReproServer>` (the
  single-process engine-pool tier) and
* :class:`FrontTier <repro.server.proxy.FrontTier>` (the multi-process
  front tier)

both subclass :class:`LineServer` and implement only the *admission*
half: ``_admit(line, oversized, context)`` returns an awaitable
resolving to a response payload (or a
:class:`~repro.server.stream.ResponseStream` whose frames are written
as individual lines), and the lifecycle hooks ``_on_start`` /
``_on_stop`` own whatever backs the admission (an engine pool, a
backend fleet).

The transport guarantees are the protocol's hard promises and are
enforced here for every tier: bounded line framing (oversized lines
yield a ``too_large`` error and the stream resynchronizes at the next
newline), bounded per-connection pipelining (TCP backpressure instead
of unbounded buffering), and a graceful shutdown that stops accepting,
drains every admitted request, and flushes the responses.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..api import wire_json
from .stream import ResponseStream

__all__ = ["ConnectionContext", "LineServer", "ServerThread"]

#: Upper bound on responses admitted-but-unwritten per connection.  A
#: client that pipelines without reading fills this queue, which stops
#: the server reading its connection -- TCP backpressure instead of
#: unbounded buffering.
MAX_PIPELINED = 256

#: How long one response write may wait for the peer to read before the
#: connection is treated as broken and its remaining output dropped.
DRAIN_TIMEOUT_S = 60.0


class _LineReader:
    """Bounded line framing over an asyncio stream.

    ``next()`` returns ``(line_bytes, None)`` for each complete line,
    ``(None, "too_large")`` once per oversized line (whose remaining
    bytes are then discarded up to its newline, resynchronizing the
    stream), and ``None`` at EOF.
    """

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int):
        self.reader = reader
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._discarding = False
        self._eof = False

    async def next(self):
        while True:
            line = self._take_line()
            if line is not None:
                return line
            if self._eof:
                if self._buffer and not self._discarding:
                    # lenient: serve a trailing unterminated line
                    tail = bytes(self._buffer)
                    self._buffer.clear()
                    return (tail, None)
                return None
            chunk = await self.reader.read(65536)
            if not chunk:
                self._eof = True
            else:
                self._buffer += chunk
                if self._discarding:
                    newline = self._buffer.find(b"\n")
                    if newline < 0:
                        self._buffer.clear()
                    else:
                        del self._buffer[: newline + 1]
                        self._discarding = False
                elif self._buffer.find(b"\n") < 0 and len(self._buffer) > self.max_bytes:
                    self._buffer.clear()
                    self._discarding = True
                    return (None, "too_large")

    def _take_line(self):
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[:newline])
        del self._buffer[: newline + 1]
        if len(line) > self.max_bytes:
            return (None, "too_large")
        return (line, None)


class ConnectionContext:
    """Per-connection admission state.

    Today that is exactly one thing: the connection's active metrics
    stream, if any (the protocol allows one live ``subscribe`` per
    connection).  The transport closes the context on teardown so a
    client that disconnects mid-stream -- or a server shutting down --
    never leaves a subscription ticking.
    """

    def __init__(self):
        self.subscription: Optional[ResponseStream] = None

    def close(self) -> None:
        if self.subscription is not None:
            self.subscription.stop()


class LineServer:
    """One JSON-lines serving endpoint: listener + per-connection pump.

    Subclasses implement ``_admit(line, oversized, context)`` (cheap,
    on the event loop; returns an awaitable resolving to a response
    document object with ``to_json()``, or a
    :class:`~repro.server.stream.ResponseStream`) and the ``_on_start``
    / ``_on_stop`` lifecycle hooks; ``connection_opened`` /
    ``connection_closed`` metric hooks are optional overrides.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = 1024 * 1024,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port replaces it on start
        self.max_request_bytes = max_request_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()

    # -- subclass surface -----------------------------------------------
    async def _on_start(self) -> None:
        """Bring up whatever backs admission (pool, backend fleet)."""

    async def _on_stop(self) -> None:
        """Tear the backing down; runs after every connection drained."""

    def _admit(self, line, oversized, context):
        raise NotImplementedError

    def _connection_opened(self) -> None:
        pass

    def _connection_closed(self) -> None:
        pass

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "LineServer":
        self._stop_event = asyncio.Event()
        self._stopped = asyncio.Event()
        await self._on_start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            # a failed bind (port in use, bad host) must not leak the
            # idle backing resources
            await self._on_stop()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, stop reading, let every
        admitted request finish and its response flush, then stop the
        backing."""
        if self._stop_event is None or self._stop_event.is_set():
            return
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        await self._on_stop()
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until a :meth:`stop` call (from a signal handler or
        another task) has *completed* the graceful shutdown."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    # -- connection handling --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connection_opened()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        order: asyncio.Queue = asyncio.Queue(maxsize=MAX_PIPELINED)
        writer_task = asyncio.create_task(self._write_responses(order, writer))
        liner = _LineReader(reader, self.max_request_bytes)
        context = ConnectionContext()
        stop_wait = asyncio.create_task(self._stop_event.wait())
        try:
            while not self._stop_event.is_set():
                next_line = asyncio.create_task(liner.next())
                done, _pending = await asyncio.wait(
                    {next_line, stop_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if next_line not in done:
                    next_line.cancel()
                    break
                try:
                    item = next_line.result()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if item is None:  # client closed its half
                    break
                line, oversized = item
                if line is not None and not line.strip():
                    continue  # blank keepalive line
                await order.put(self._admit(line, oversized, context))
        finally:
            stop_wait.cancel()
            # stop any live stream before the writer drain: the stream
            # emits its final frame promptly and the writer terminates
            context.close()
            try:
                # the writer keeps draining concurrently, so this
                # terminates even when the pipeline is full; a peer that
                # stopped reading is bounded by the drain timeout
                await order.put(None)
                await writer_task
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                self._conn_tasks.discard(task)
                self._connection_closed()

    async def _write_responses(self, order: asyncio.Queue, writer) -> None:
        """Await pipelined responses in arrival order and write them.

        A response may be a protocol document (``to_json()``), raw
        ``bytes`` -- an already-serialized line a proxying tier forwards
        verbatim, so a front tier is byte-transparent to its backends --
        or a :class:`~repro.server.stream.ResponseStream`, whose frames
        are each written as their own line while the stream occupies its
        single in-order slot.
        """
        broken = False
        while True:
            pending = await order.get()
            if pending is None:
                return
            if isinstance(pending, ResponseStream):
                broken = await self._write_stream(pending, writer, broken)
                continue
            response = await pending
            if broken:
                continue  # keep consuming futures; peer is gone
            try:
                if isinstance(response, (bytes, bytearray)):
                    writer.write(bytes(response) + b"\n")
                else:
                    writer.write(wire_json(response.to_json()).encode() + b"\n")
                await asyncio.wait_for(writer.drain(), DRAIN_TIMEOUT_S)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                broken = True

    async def _write_stream(self, stream, writer, broken: bool) -> bool:
        """Drain one response stream, writing each frame as a line.

        Always iterates to exhaustion even on a broken peer -- the
        stream's cleanup (resolving a pipelined unsubscribe ack) runs in
        its generator's ``finally`` -- but stops the stream first so
        that takes one final frame, not the full schedule.  Returns the
        updated *broken* flag.
        """
        if broken:
            stream.stop()
        try:
            async for frame in stream.frames():
                if broken:
                    continue
                try:
                    writer.write(wire_json(frame.to_json()).encode() + b"\n")
                    await asyncio.wait_for(writer.drain(), DRAIN_TIMEOUT_S)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    broken = True
                    stream.stop()
        except Exception:
            # a stream that dies (a failing sample_fn) must not take the
            # writer loop -- and the rest of the connection -- with it
            stream.stop()
        return broken


def ready(response):
    """A resolved future for a response computed during admission."""
    future = asyncio.get_running_loop().create_future()
    future.set_result(response)
    return future


class ServerThread:
    """Host any :class:`LineServer` on a dedicated event-loop thread.

    ``start()`` blocks until the port is bound (so callers can connect
    immediately); ``stop()`` performs the graceful shutdown and joins
    the thread.  Used by the self-hosted load-generation benchmarks and
    the integration tests; the CLI runs servers on the main thread
    instead.

    Construction: either pass a ready server instance (``server=``), or
    pass :class:`~repro.server.ReproServer` keyword arguments (the
    historical form, which builds a single-process engine-pool server).
    """

    def __init__(self, server: Optional[LineServer] = None, **server_kwargs):
        if server is not None and server_kwargs:
            raise ValueError("pass either server= or ReproServer kwargs, not both")
        if server is None:
            from .server import ReproServer

            server = ReproServer(**server_kwargs)
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._bound = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._bound.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> tuple:
        return (self.server.host, self.server.port)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._bound.set()
            self._loop.run_until_complete(self.server.serve_forever())
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.run_until_complete(self._loop.shutdown_default_executor())
        finally:
            asyncio.set_event_loop(None)
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=120)
        self._thread.join(timeout=120)
