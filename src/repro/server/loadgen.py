"""Load generation and the serving benchmark (``BENCH_serving.json``).

Two client disciplines over a **seeded, deterministic workload mix**
(bench workloads + fuzz-generated programs, analyze-heavy by default):

* **closed loop** -- each of C clients keeps exactly one request in
  flight (send, wait, repeat): measures the server's capacity at a
  fixed concurrency level;
* **open loop** -- each client sends at a fixed rate regardless of
  responses (the arrival process of independent users): measures how
  latency degrades when offered load, not concurrency, is the control
  variable.

:func:`run_serving_bench` is the self-hosted A/B: for each concurrency
level it drives the same closed-loop mix against two pool disciplines
-- ``sharded`` (N workers, each owning an engine, digest-routed) and
``shared`` (N workers serving one engine round-robin) -- with an
engine compile cache deliberately smaller than the program working
set.  A single shared engine cannot hold the working set and thrashes;
the sharded pool partitions it (aggregate cache = N x per-engine
cache) so nearly every request is a warm hit.  The resulting
``BENCH_serving.json`` (throughput + latency percentiles per level,
schema pinned by ``tools/check_bench_schema.py``) is the serving-side
performance trajectory.
"""

from __future__ import annotations

import bisect
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..api import (
    AnalyzeRequest,
    EngineConfig,
    ErrorResponse,
    ExecuteRequest,
    canonical_json,
)
from ..evaluation.bench import BENCH_SUITES
from ..fuzz import generate_case
from ..fuzz.generator import GeneratorConfig
from .client import ServerClient
from .lineserver import MAX_PIPELINED
from .server import ServerThread
from .tracing import mint_trace_id

__all__ = [
    "SERVING_VERSION",
    "SLOWEST_K",
    "MixItem",
    "ZipfSampler",
    "build_mix",
    "make_request",
    "run_load",
    "run_serving_bench",
    "run_multiproc_bench",
    "write_serving_bench",
    "format_serving",
    "format_multiproc",
    "serving_path",
]

#: Bump on any change to the BENCH_serving.json document shape.
#: Version 2: per-run summaries gain skew/zipf_s/connections, and the
#: document gains the "multiproc" section (front tier vs single
#: process, cold and zipf-skewed).
#: Version 3: per-run summaries gain "slowest" -- the top-K slowest
#: served requests with verb and trace id, so a tail outlier in a
#: report is one ``repro-eval trace <id>`` away from its waterfall.
SERVING_VERSION = 3

#: How many of the slowest served requests each summary reports.
SLOWEST_K = 5

#: Ceiling on logical clients per multiplexed connection: half the
#: server's per-connection pipelining bound, so a connection's whole
#: window is always admitted and the sliding window can never deadlock
#: against the server's backpressure.
MAX_MULTIPLEX = MAX_PIPELINED // 2


@dataclass(frozen=True)
class MixItem:
    """One program of the workload mix, with ready-to-run inputs."""

    source: str
    loop: str
    params: dict
    arrays: dict
    #: per-request analyzer knob overrides (the fuzz programs run with
    #: the oracle's size/work caps so no single analysis can stall the
    #: latency measurement)
    options: dict = field(default_factory=dict)


#: Generator knobs for the load mix: the full feature weights of the
#: fuzz grammar, but small bodies -- the serving benchmark measures the
#: cache discipline, not worst-case analysis time.
_MIX_GENERATOR = GeneratorConfig(max_body_stmts=3)

#: Analyzer caps for the generated programs (mirrors the fuzz oracle).
_MIX_OPTIONS = {"size_cap": 3_000, "work_cap": 4_000}


def build_mix(
    seed: int = 0,
    programs: int = 16,
    include_workloads: bool = True,
    generator: Optional[GeneratorConfig] = None,
) -> list:
    """A deterministic list of *programs* distinct programs: the bench
    smoke workloads (unless *include_workloads* is off) plus
    fuzz-generated loop programs whose in-bounds guarantee makes them
    safe to execute."""
    if programs < 1:
        raise ValueError(f"programs must be >= 1 (got {programs})")
    items = []
    if include_workloads:
        for workload in BENCH_SUITES["smoke"]():
            items.append(MixItem(
                source=workload.source, loop=workload.loop,
                params=dict(workload.params), arrays=workload.arrays(),
            ))
    fuzz_seed = seed * 100_000
    while len(items) < programs:
        case = generate_case(fuzz_seed, generator or _MIX_GENERATOR)
        fuzz_seed += 1
        items.append(MixItem(
            source=case.source, loop=case.label,
            params=dict(case.params), arrays=dict(case.arrays),
            options=dict(_MIX_OPTIONS),
        ))
    return items[:programs]


class ZipfSampler:
    """Seeded, deterministic zipf(s) sampling over mix indices.

    Index *i* (0-based) is rank *i+1* with weight ``1 / (i+1)**s`` --
    the first mix item is the hottest program ("one viral program"), the
    tail approximates the long tail of distinct sources.  The sampler
    itself is stateless (a cumulative weight table); all randomness
    comes from the caller's seeded ``random.Random``, so a (seed, s, n)
    triple always produces the identical request stream.
    """

    def __init__(self, n: int, s: float = 1.1):
        if n < 1:
            raise ValueError(f"n must be >= 1 (got {n})")
        if s <= 0:
            raise ValueError(f"s must be > 0 (got {s})")
        self.n = n
        self.s = s
        self._cumulative = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / (rank ** s)
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """One index drawn zipf(s), consuming one ``rng.random()``."""
        return bisect.bisect_left(self._cumulative, rng.random() * self._total)

    def share(self, index: int) -> float:
        """The fraction of traffic index *index* receives."""
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        return (self._cumulative[index] - previous) / self._total


def make_request(rng: random.Random, mix: list, analyze_fraction: float,
                 sampler: Optional[ZipfSampler] = None,
                 force_trace: bool = False):
    """Draw one request from the mix (analyze or execute), uniformly or
    through a skew *sampler*.  With *force_trace* every request carries
    a client-minted, force-sampled trace context, so the server keeps
    its trace (with compile-phase attribution) regardless of its
    sampling configuration."""
    index = sampler.sample(rng) if sampler is not None else rng.randrange(len(mix))
    item = mix[index]
    trace = (
        {"trace_id": mint_trace_id(), "sampled": True} if force_trace else None
    )
    if rng.random() < analyze_fraction:
        return AnalyzeRequest(
            source=item.source, loop=item.loop, options=item.options,
            trace=trace,
        )
    return ExecuteRequest(
        source=item.source, loop=item.loop,
        params=item.params, arrays=item.arrays, options=item.options,
        trace=trace,
    )


class _ClientStats:
    """Per-client tallies, merged after the run."""

    __slots__ = ("latencies", "completed", "errors", "shed", "failures",
                 "slowest")

    def __init__(self):
        self.latencies: list = []
        self.completed = 0
        self.errors = 0
        self.shed = 0
        self.failures: list = []  # transport-level problems (bug territory)
        self.slowest: list = []  # (latency_s, verb, trace_id), top-K only

    def record(self, response, latency_s: float, verb: str = "?",
               trace_id: Optional[str] = None) -> None:
        if isinstance(response, ErrorResponse):
            self.errors += 1
            if response.code == "overloaded":
                self.shed += 1
        else:
            # same convention as the server's own histogram: shed/error
            # answers arrive in microseconds and would overstate
            # capacity exactly when the server is overloaded, so only
            # served requests count toward latency and throughput
            self.completed += 1
            self.latencies.append(latency_s)
            self.slowest.append((latency_s, verb, trace_id))
            if len(self.slowest) > SLOWEST_K:
                self.slowest.sort(key=lambda entry: -entry[0])
                del self.slowest[SLOWEST_K:]


def _request_meta(request) -> tuple:
    """(verb, trace_id) of an outgoing request, for the slowest table."""
    verb = "analyze" if isinstance(request, AnalyzeRequest) else "execute"
    trace = getattr(request, "trace", None)
    return verb, trace.get("trace_id") if trace else None


def _closed_loop(host, port, count, seed, mix, analyze_fraction, timeout,
                 sampler=None, force_trace=False):
    stats = _ClientStats()
    rng = random.Random(seed)
    try:
        with ServerClient(host, port, timeout=timeout) as client:
            for _ in range(count):
                request = make_request(
                    rng, mix, analyze_fraction, sampler, force_trace
                )
                verb, trace_id = _request_meta(request)
                started = time.monotonic()
                response = client.call(request)
                stats.record(
                    response, time.monotonic() - started, verb, trace_id
                )
    except (ConnectionError, OSError, ValueError) as exc:
        # ValueError: the peer is not speaking the protocol (wrong
        # port, version-skewed response) -- a transport-level failure
        # from the load generator's point of view
        stats.failures.append(f"{type(exc).__name__}: {exc}")
    return stats


def _multiplexed_loop(host, port, count, seed, mix, analyze_fraction, timeout,
                      window, sampler=None, force_trace=False):
    """*window* logical closed-loop clients sharing one pipelined
    connection: keep exactly *window* requests in flight, replacing each
    response with the next send.  Responses arrive in request order, so
    per-request latency pairs with a FIFO of send timestamps.  This is
    how the load generator reaches hundreds-to-thousands of simulated
    clients without a thread and a socket per client."""
    stats = _ClientStats()
    rng = random.Random(seed)
    sent_at: deque = deque()
    try:
        with ServerClient(host, port, timeout=timeout) as client:
            sent = received = 0
            while received < count:
                while sent < count and len(sent_at) < window:
                    request = make_request(
                        rng, mix, analyze_fraction, sampler, force_trace
                    )
                    sent_at.append((time.monotonic(), *_request_meta(request)))
                    client.send(request)
                    sent += 1
                response = client.recv()
                started, verb, trace_id = sent_at.popleft()
                stats.record(
                    response, time.monotonic() - started, verb, trace_id
                )
                received += 1
    except (ConnectionError, OSError, ValueError) as exc:
        stats.failures.append(f"{type(exc).__name__}: {exc}")
    return stats


def _open_loop(host, port, count, seed, mix, analyze_fraction, timeout, interval_s,
               sampler=None, force_trace=False):
    """One connection, sends on a fixed schedule, receives concurrently.
    Responses arrive in request order, so latency correlation is a
    FIFO of send timestamps."""
    stats = _ClientStats()
    rng = random.Random(seed)
    sent_at: deque = deque()
    sent_total = [0]  # monotone count of completed sends
    send_error = []
    sender_done = threading.Event()

    try:
        client = ServerClient(host, port, timeout=timeout)
    except (ConnectionError, OSError) as exc:
        stats.failures.append(f"{type(exc).__name__}: {exc}")
        return stats

    def sender():
        next_at = time.monotonic()
        try:
            for _ in range(count):
                delay = next_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                request = make_request(
                    rng, mix, analyze_fraction, sampler, force_trace
                )
                sent_at.append((time.monotonic(), *_request_meta(request)))
                client.send(request)
                sent_total[0] += 1
                next_at += interval_s
        except (ConnectionError, OSError) as exc:
            send_error.append(f"{type(exc).__name__}: {exc}")
        finally:
            sender_done.set()

    thread = threading.Thread(target=sender, daemon=True)
    thread.start()
    try:
        received = 0
        while received < count:
            if sender_done.is_set() and send_error and received >= sent_total[0]:
                break  # sender failed; every completed send is answered
            response = client.recv()
            started, verb, trace_id = sent_at.popleft()
            stats.record(response, time.monotonic() - started, verb, trace_id)
            received += 1
    except (ConnectionError, OSError, ValueError) as exc:
        stats.failures.append(f"{type(exc).__name__}: {exc}")
    finally:
        thread.join(timeout=timeout)
        client.close()
    stats.failures.extend(send_error)
    return stats


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_load(
    host: str,
    port: int,
    clients: int = 8,
    requests: int = 200,
    mode: str = "closed",
    rate: Optional[float] = None,
    seed: int = 0,
    mix: Optional[list] = None,
    analyze_fraction: float = 0.9,
    timeout: float = 120.0,
    skew: str = "uniform",
    zipf_s: float = 1.1,
    multiplex: int = 1,
    force_trace: bool = False,
) -> dict:
    """Drive *requests* total requests from *clients* concurrent
    logical clients and summarize throughput and latency.

    ``mode="open"`` needs *rate* (total offered requests/second across
    all clients).  ``skew="zipf"`` draws programs zipf(*zipf_s*)-skewed
    instead of uniformly (seeded -- the stream is deterministic).
    ``multiplex=M`` packs up to M closed-loop clients onto each
    connection (sliding-window pipelining), so thousands of simulated
    clients cost ``clients / M`` threads and sockets.
    ``force_trace=True`` attaches a force-sampled trace context to
    every request; the summary's ``slowest`` entries then carry trace
    ids resolvable with ``repro-eval trace``.  The summary document is
    JSON-safe and schema-stable.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1 (got {clients})")
    if requests < 1:
        raise ValueError(f"requests must be >= 1 (got {requests})")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open' (got {mode!r})")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs a positive --rate")
    if skew not in ("uniform", "zipf"):
        raise ValueError(f"skew must be 'uniform' or 'zipf' (got {skew!r})")
    if not 1 <= multiplex <= MAX_MULTIPLEX:
        raise ValueError(
            f"multiplex must be within [1, {MAX_MULTIPLEX}] (got {multiplex})"
        )
    if multiplex > 1 and mode != "closed":
        raise ValueError("multiplex only applies to closed-loop mode")
    mix = mix or build_mix(seed)
    sampler = ZipfSampler(len(mix), zipf_s) if skew == "zipf" else None

    # pack logical clients onto connections (multiplex=1: one each),
    # then spread the request budget across connections by window size
    connections = (clients + multiplex - 1) // multiplex
    windows = [clients // connections] * connections
    for i in range(clients % connections):
        windows[i] += 1
    per_conn = [0] * connections
    weight = sum(windows)
    for i, window in enumerate(windows):
        per_conn[i] = requests * window // weight
    for i in range(requests - sum(per_conn)):
        per_conn[i % connections] += 1
    lanes = [(n, w) for n, w in zip(per_conn, windows) if n]

    results: list = [None] * len(lanes)

    def run_one(index: int, count: int, window: int) -> None:
        client_seed = seed * 1_000_003 + index
        try:
            if mode == "open":
                interval_s = len(lanes) / rate
                results[index] = _open_loop(
                    host, port, count, client_seed, mix, analyze_fraction,
                    timeout, interval_s, sampler, force_trace,
                )
            elif window > 1:
                results[index] = _multiplexed_loop(
                    host, port, count, client_seed, mix, analyze_fraction,
                    timeout, window, sampler, force_trace,
                )
            else:
                results[index] = _closed_loop(
                    host, port, count, client_seed, mix, analyze_fraction,
                    timeout, sampler, force_trace,
                )
        except Exception as exc:  # noqa: BLE001 -- a dead thread must still report
            stats = _ClientStats()
            stats.failures.append(f"{type(exc).__name__}: {exc}")
            results[index] = stats

    started = time.monotonic()
    threads = [
        threading.Thread(target=run_one, args=(i, n, w), daemon=True)
        for i, (n, w) in enumerate(lanes)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.monotonic() - started

    latencies = sorted(x for s in results for x in s.latencies)
    completed = sum(s.completed for s in results)
    errors = sum(s.errors for s in results)
    shed = sum(s.shed for s in results)
    failures = [f for s in results for f in s.failures]
    slowest = sorted(
        (entry for s in results for entry in s.slowest),
        key=lambda entry: -entry[0],
    )[:SLOWEST_K]
    answered = len(latencies)  # == completed: served requests only
    return {
        "analyze_fraction": analyze_fraction,
        "clients": clients,
        "completed": completed,
        "connections": len(lanes),
        "errors": errors,
        "failures": failures,
        "latency": {
            "max_s": round(latencies[-1], 6) if latencies else 0.0,
            "mean_s": round(sum(latencies) / answered, 6) if answered else 0.0,
            "p50_s": round(_percentile(latencies, 0.50), 6),
            "p95_s": round(_percentile(latencies, 0.95), 6),
            "p99_s": round(_percentile(latencies, 0.99), 6),
        },
        "mode": mode,
        "requests": requests,
        "shed": shed,
        "skew": skew,
        "slowest": [
            {
                "latency_s": round(latency, 6),
                "trace_id": trace_id,
                "verb": verb,
            }
            for latency, verb, trace_id in slowest
        ],
        "throughput_rps": round(answered / wall_s, 3) if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 6),
        "zipf_s": zipf_s if skew == "zipf" else None,
    }


# -- the serving benchmark ---------------------------------------------------


def run_serving_bench(
    levels: tuple = (4, 16, 32),
    requests_per_level: int = 600,
    workers: int = 4,
    seed: int = 0,
    programs: int = 48,
    analyze_fraction: float = 0.9,
    compile_cache_size: int = 16,
) -> dict:
    """The sharded-vs-shared A/B at each concurrency level.

    Both pool disciplines run the identical closed-loop mix; the
    compile cache (per engine) is smaller than the program working set,
    so the outcome measures exactly what digest sharding buys: the
    sharded pool partitions the working set across N private caches
    while the shared engine thrashes its single one.

    The mix is fuzz-only with the grammar's full body sizes: analysis
    is the dominant per-request cost (what the cache discipline
    governs), and every program's execute stays tiny (trip counts <=
    9), so tail latency measures caching rather than head-of-line
    blocking behind long executions.
    """
    if not levels:
        raise ValueError("need at least one concurrency level")
    mix = build_mix(
        seed, programs=programs, include_workloads=False,
        generator=GeneratorConfig(),
    )
    engine_config = EngineConfig(
        use_disk_cache=False, compile_cache_size=compile_cache_size
    )
    level_docs = [{"clients": int(c), "pools": {}} for c in sorted(levels)]
    for discipline in ("sharded", "shared"):
        hosted = ServerThread(
            workers=workers,
            sharding="digest" if discipline == "sharded" else "shared",
            engine_config=engine_config,
            queue_depth=4096,
            max_inflight=8192,
        ).start()
        host, port = hosted.address
        try:
            # warm pass: every program analyzed twice, with the same
            # knobs the traffic will carry, so steady-state levels
            # measure the cache discipline, not first compiles
            for _ in range(2):
                with ServerClient(host, port) as client:
                    for item in mix:
                        client.call(AnalyzeRequest(
                            source=item.source, loop=item.loop,
                            options=item.options,
                        ))
            for level_doc in level_docs:
                before = hosted.server.metrics.snapshot()
                summary = run_load(
                    host, port,
                    clients=level_doc["clients"],
                    requests=requests_per_level,
                    mode="closed",
                    seed=seed,
                    mix=mix,
                    analyze_fraction=analyze_fraction,
                )
                after = hosted.server.metrics.snapshot()
                summary["warm_hits"] = after["warm_hits"] - before["warm_hits"]
                summary["coalesced"] = after["coalesced"] - before["coalesced"]
                level_doc["pools"][discipline] = summary
        finally:
            hosted.stop()
    speedups = []
    for level_doc in level_docs:
        sharded = level_doc["pools"]["sharded"]["throughput_rps"]
        shared = level_doc["pools"]["shared"]["throughput_rps"]
        level_doc["speedup"] = round(sharded / shared, 3) if shared else None
        if level_doc["speedup"] is not None:
            speedups.append(level_doc["speedup"])
    mean_speedup = round(sum(speedups) / len(speedups), 3) if speedups else None
    return {
        "analyze_fraction": analyze_fraction,
        "compile_cache_size": compile_cache_size,
        "levels": level_docs,
        "mean_speedup": mean_speedup,
        "mode": "closed",
        "programs": programs,
        "requests_per_level": requests_per_level,
        "seed": seed,
        "sharded_wins": bool(mean_speedup is not None and mean_speedup > 1.0),
        "suite": "serving",
        "version": SERVING_VERSION,
        "workers": workers,
    }


def run_multiproc_bench(
    backends: int = 4,
    replicas: int = 2,
    backend_workers: int = 1,
    levels: tuple = (8, 32),
    requests_per_level: int = 240,
    seed: int = 0,
    programs: int = 32,
    analyze_fraction: float = 0.9,
    zipf_clients: int = 64,
    zipf_multiplex: int = 16,
    zipf_requests: int = 600,
    zipf_s: float = 1.2,
    hot_rps: float = 8.0,
) -> dict:
    """The multi-process A/B: front tier over N backend processes vs a
    single-process sharded pool with the same total worker count.

    Two disciplines, each run on both systems from cold caches:

    * **cold** -- uniform analyze-heavy closed loop over a fresh program
      mix per concurrency level (every level's first sight of every
      program pays a full compile), the GIL-bound workload the ISSUE
      names;
    * **zipf** -- one viral program dominating a skewed mix driven by
      hundreds of multiplexed clients.  On the single process, every
      cold compile holds the GIL and stalls the event loop, so even the
      cache-warm hot requests queue behind it; the front tier isolates
      compiles in backend processes and fans the hot digest across its
      replica set, which is where latency isolation shows up.

    The host's ``cpu_count`` is recorded in the document: on a
    single-core host the cold section measures process overhead versus
    GIL overhead (roughly parity), not parallel speedup -- the honest
    reading of any result this benchmark reports.
    """
    from .proxy import FrontTier  # local: avoids a module cycle

    if not levels:
        raise ValueError("need at least one concurrency level")
    levels = tuple(sorted(int(level) for level in levels))
    single_workers = backends * backend_workers
    engine_config = EngineConfig(use_disk_cache=False)
    # distinct programs per level so every level is cold for both
    # systems even though each system instance persists across levels
    level_mixes = [
        build_mix(
            seed + 7919 * (i + 1), programs=programs,
            include_workloads=False, generator=GeneratorConfig(),
        )
        for i in range(len(levels))
    ]
    zipf_mix = build_mix(
        seed + 104_729, programs=programs,
        include_workloads=False, generator=GeneratorConfig(),
    )

    def single_server():
        return ServerThread(
            workers=single_workers,
            sharding="digest",
            engine_config=engine_config,
            queue_depth=4096,
            max_inflight=8192,
        )

    def front_server(rps=hot_rps):
        return ServerThread(server=FrontTier(
            backends=backends,
            replicas=replicas,
            backend_workers=backend_workers,
            use_disk_cache=False,
            hot_rps=rps,
        ))

    # -- cold section ------------------------------------------------------
    level_docs = [{"clients": c, "systems": {}} for c in levels]
    for system, make in (("single", single_server), ("multiproc", front_server)):
        hosted = make().start()
        host, port = hosted.address
        try:
            for level_doc, mix in zip(level_docs, level_mixes):
                level_doc["systems"][system] = run_load(
                    host, port,
                    clients=level_doc["clients"],
                    requests=requests_per_level,
                    mode="closed",
                    seed=seed,
                    mix=mix,
                    analyze_fraction=analyze_fraction,
                )
        finally:
            hosted.stop()
    speedups = []
    for level_doc in level_docs:
        multi = level_doc["systems"]["multiproc"]["throughput_rps"]
        single = level_doc["systems"]["single"]["throughput_rps"]
        level_doc["speedup"] = round(multi / single, 3) if single else None
        if level_doc["speedup"] is not None:
            speedups.append(level_doc["speedup"])
    cold_mean = round(sum(speedups) / len(speedups), 3) if speedups else None

    # -- zipf hot-shard section --------------------------------------------
    zipf_doc = {
        "clients": zipf_clients,
        "hot_rps": hot_rps,
        "multiplex": zipf_multiplex,
        "requests": zipf_requests,
        "systems": {},
        "zipf_s": zipf_s,
    }
    for system, make in (("single", single_server), ("multiproc", front_server)):
        hosted = make().start()
        host, port = hosted.address
        try:
            summary = run_load(
                host, port,
                clients=zipf_clients,
                requests=zipf_requests,
                mode="closed",
                seed=seed,
                mix=zipf_mix,
                analyze_fraction=analyze_fraction,
                skew="zipf",
                zipf_s=zipf_s,
                multiplex=zipf_multiplex,
            )
            if system == "multiproc":
                with ServerClient(host, port) as client:
                    front = client.stats().stats["front"]
                summary["fanouts"] = front["fanouts"]
                summary["front_coalesced"] = front["coalesced"]
            zipf_doc["systems"][system] = summary
        finally:
            hosted.stop()
    multi_lat = zipf_doc["systems"]["multiproc"]["latency"]
    single_lat = zipf_doc["systems"]["single"]["latency"]
    for quantile in ("p50_s", "p95_s"):
        single_q, multi_q = single_lat[quantile], multi_lat[quantile]
        key = quantile.replace("_s", "_speedup")
        zipf_doc[key] = round(single_q / multi_q, 3) if multi_q else None
    multi_rps = zipf_doc["systems"]["multiproc"]["throughput_rps"]
    single_rps = zipf_doc["systems"]["single"]["throughput_rps"]
    zipf_doc["throughput_speedup"] = (
        round(multi_rps / single_rps, 3) if single_rps else None
    )

    return {
        "analyze_fraction": analyze_fraction,
        "backend_workers": backend_workers,
        "backends": backends,
        "cold": {"levels": level_docs, "mean_speedup": cold_mean},
        "cpu_count": os.cpu_count(),
        "multiproc_wins": bool(cold_mean is not None and cold_mean > 1.0),
        "hot_shard_wins": bool(
            zipf_doc["p50_speedup"] is not None and zipf_doc["p50_speedup"] > 1.0
        ),
        "programs": programs,
        "replicas": replicas,
        "requests_per_level": requests_per_level,
        "seed": seed,
        "single_workers": single_workers,
        "zipf": zipf_doc,
    }


def serving_path(directory: str = ".") -> Path:
    return Path(directory) / "BENCH_serving.json"


def write_serving_bench(doc: dict, directory: str = ".") -> Path:
    """Serialize *doc* to BENCH_serving.json in canonical form."""
    path = serving_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(doc) + "\n")
    return path


def format_serving(doc: dict) -> str:
    """Human-readable summary of one serving-bench document."""
    lines = [
        f"serving bench: workers={doc['workers']} programs={doc['programs']} "
        f"analyze={doc['analyze_fraction']:.0%} "
        f"cache={doc['compile_cache_size']}/engine "
        f"requests/level={doc['requests_per_level']}"
    ]
    header = (
        f"{'clients':>7} {'pool':<8} {'rps':>9} {'p50_ms':>8} "
        f"{'p95_ms':>8} {'p99_ms':>8} {'warm':>6} {'err':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for level in doc["levels"]:
        for discipline in ("sharded", "shared"):
            entry = level["pools"][discipline]
            lat = entry["latency"]
            lines.append(
                f"{level['clients']:>7} {discipline:<8} "
                f"{entry['throughput_rps']:>9.1f} "
                f"{lat['p50_s'] * 1e3:>8.2f} {lat['p95_s'] * 1e3:>8.2f} "
                f"{lat['p99_s'] * 1e3:>8.2f} {entry['warm_hits']:>6} "
                f"{entry['errors']:>4}"
            )
        if level["speedup"] is not None:
            lines.append(f"{'':>7} sharded/shared speedup: {level['speedup']:.3f}x")
    verdict = "beats" if doc["sharded_wins"] else "does NOT beat"
    lines.append(
        f"digest-sharded pooling {verdict} the shared engine "
        f"(mean speedup {doc['mean_speedup']})"
    )
    if "multiproc" in doc:
        lines.append("")
        lines.append(format_multiproc(doc["multiproc"]))
    return "\n".join(lines)


def format_multiproc(doc: dict) -> str:
    """Human-readable summary of the multiproc bench section."""
    lines = [
        f"multiproc bench: {doc['backends']} backends x "
        f"{doc['backend_workers']} worker(s) (replicas={doc['replicas']}) "
        f"vs single process x {doc['single_workers']} workers "
        f"[cpu_count={doc['cpu_count']}]"
    ]
    header = (
        f"{'section':<8} {'clients':>7} {'system':<10} {'rps':>9} "
        f"{'p50_ms':>8} {'p95_ms':>8} {'err':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def row(section, clients, system, entry):
        lat = entry["latency"]
        return (
            f"{section:<8} {clients:>7} {system:<10} "
            f"{entry['throughput_rps']:>9.1f} "
            f"{lat['p50_s'] * 1e3:>8.2f} {lat['p95_s'] * 1e3:>8.2f} "
            f"{entry['errors']:>4}"
        )

    for level in doc["cold"]["levels"]:
        for system in ("single", "multiproc"):
            lines.append(row("cold", level["clients"], system,
                             level["systems"][system]))
        if level["speedup"] is not None:
            lines.append(
                f"{'':>16} multiproc/single throughput: {level['speedup']:.3f}x"
            )
    zipf = doc["zipf"]
    for system in ("single", "multiproc"):
        lines.append(row(f"zipf{zipf['zipf_s']}", zipf["clients"], system,
                         zipf["systems"][system]))
    lines.append(
        f"{'':>16} hot-shard p50 speedup {zipf['p50_speedup']}x, "
        f"p95 {zipf['p95_speedup']}x, throughput "
        f"{zipf['throughput_speedup']}x "
        f"(fanouts={zipf['systems']['multiproc'].get('fanouts', 0)})"
    )
    cold_verdict = "beats" if doc["multiproc_wins"] else "does NOT beat"
    hot_verdict = "isolates" if doc["hot_shard_wins"] else "does NOT isolate"
    lines.append(
        f"front tier {cold_verdict} the single process on the cold mix "
        f"(mean {doc['cold']['mean_speedup']}x) and {hot_verdict} "
        f"hot-shard latency under zipf skew"
    )
    return "\n".join(lines)
