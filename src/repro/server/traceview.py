"""``repro-eval trace``: waterfall rendering of stored request traces.

Fetches trace documents from a running server (either topology) over
the protocol v7 ``trace`` verb and renders each as a waterfall: one
line per span, indented by tree depth, with a bar positioned on the
root span's timeline.  On the multiproc topology the front tier has
already stitched each backend's child spans under the corresponding
``backend_rpc`` span, so the cross-process request reads as one tree.

Pure rendering (:func:`render_waterfall`, :func:`render_recent`) is
separated from the I/O (:func:`run_trace`) in the same style as
:mod:`repro.server.top`, so tests pin the output against synthetic
documents and ``repro-eval trace`` works headless in CI (plain text,
no terminal control codes, exit code 0/1).
"""

from __future__ import annotations

import sys
from typing import Optional

__all__ = ["render_recent", "render_waterfall", "run_trace"]

#: Width of the waterfall timeline, in characters.
_TIMELINE_WIDTH = 40
#: Width of the indented span-name column.
_NAME_WIDTH = 26


def _fmt_s(seconds: float) -> str:
    """Human latency: us/ms/s with 3 significant-ish digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_attrs(attrs: dict) -> str:
    """Compact ``k=v`` attribute tail; phase attribution renders as its
    own bracketed list so a compile span's breakdown reads at a
    glance."""
    parts = []
    for key in sorted(attrs):
        if key == "phases":
            continue
        parts.append(f"{key}={attrs[key]}")
    phases = attrs.get("phases")
    if isinstance(phases, dict) and phases:
        inner = ",".join(
            f"{name}={_fmt_s(value)}" for name, value in sorted(phases.items())
        )
        parts.append(f"phases[{inner}]")
    return " ".join(parts)


def render_waterfall(doc: dict, width: int = _TIMELINE_WIDTH) -> str:
    """One trace document as a plain-text waterfall (no ANSI)."""
    spans = list(doc.get("spans", []))
    header = (
        f"trace {doc.get('trace_id', '?')}  status={doc.get('status', '?')}"
        f"  sampled={bool(doc.get('sampled'))}"
        f"  duration={_fmt_s(doc.get('duration_s', 0.0))}"
        f"  spans={len(spans)}"
        + (f"  kept={doc['keep']}" if "keep" in doc else "")
        + (f"  truncated=+{doc['spans_truncated']}"
           if doc.get("spans_truncated") else "")
    )
    if not spans:
        return header + "\n  (no spans)"
    by_id = {span["span_id"]: span for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent_span_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda span: span["start_s"])
    roots.sort(key=lambda span: span["start_s"])

    base = min(span["start_s"] for span in spans)
    end = max(span.get("end_s", span["start_s"]) for span in spans)
    total = max(end - base, 1e-9)
    lines = [header]

    def emit(span: dict, depth: int) -> None:
        offset = int(width * (span["start_s"] - base) / total)
        offset = max(0, min(offset, width - 1))
        length = int(round(width * span.get("duration_s", 0.0) / total))
        length = max(1, min(length, width - offset))
        bar = " " * offset + "#" * length
        name = ("  " * depth + span.get("name", "?"))[:_NAME_WIDTH]
        status = span.get("status", "ok")
        tail = _fmt_attrs(span.get("attrs", {}))
        lines.append(
            f"  {name:<{_NAME_WIDTH}} |{bar:<{width}}| "
            f"{_fmt_s(span.get('duration_s', 0.0)):>7} "
            f"{status}{('  ' + tail) if tail else ''}"
        )
        for kid in children.get(span["span_id"], []):
            emit(kid, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_recent(traces: list, store: Optional[dict] = None) -> str:
    """The most-recent-traces table (``repro-eval trace`` without an
    id): one line per kept trace, newest first."""
    lines = []
    if store:
        lines.append(
            f"trace store: {store.get('traces', 0)}/{store.get('max_traces', 0)}"
            f" trace(s), {store.get('spans', 0)}/{store.get('max_spans', 0)}"
            f" span(s), offered={store.get('offered', 0)}"
            f" kept={store.get('kept', 0)}"
            f" sampled_out={store.get('sampled_out', 0)}"
            f" evicted={store.get('evicted', 0)}"
        )
    header = (
        f"{'trace_id':<32} {'status':<6} {'keep':<13} {'dur':>8} "
        f"{'spans':>5} verb"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for doc in traces:
        root_attrs = {}
        for span in doc.get("spans", []):
            if span.get("span_id") == doc.get("root_span_id"):
                root_attrs = span.get("attrs", {})
                break
        lines.append(
            f"{doc.get('trace_id', '?'):<32} {doc.get('status', '?'):<6} "
            f"{doc.get('keep', '?'):<13} "
            f"{_fmt_s(doc.get('duration_s', 0.0)):>8} "
            f"{len(doc.get('spans', [])):>5} {root_attrs.get('verb', '?')}"
        )
    if not traces:
        lines.append("(no traces kept)")
    return "\n".join(lines)


def run_trace(
    host: str,
    port: int,
    trace_id: Optional[str] = None,
    limit: int = 10,
    status: Optional[str] = None,
    waterfall: bool = False,
    out=None,
) -> int:
    """Fetch and render traces from a running server.  With *trace_id*
    renders that trace's waterfall (exit 1 if it is not in the store);
    without, lists the most recent kept traces (add *waterfall* to
    expand each).  Returns a process exit code."""
    out = out if out is not None else sys.stdout
    from .client import ServerClient  # local: keeps render pure-importable

    client = None
    try:
        client = ServerClient(host, port)
        response = client.trace(trace_id=trace_id, limit=limit, status=status)
        if hasattr(response, "code"):  # typed ErrorResponse
            print(
                f"repro-eval trace: {response.code}: {response.message}",
                file=sys.stderr,
            )
            return 1
        traces = response.traces
        if trace_id is not None:
            if not traces:
                print(
                    f"repro-eval trace: trace {trace_id!r} not found "
                    f"(evicted, sampled out, or never seen)",
                    file=sys.stderr,
                )
                return 1
            out.write(render_waterfall(traces[0]) + "\n")
            return 0
        out.write(render_recent(traces, response.store) + "\n")
        if waterfall:
            for doc in traces:
                out.write("\n" + render_waterfall(doc) + "\n")
        return 0
    except (ConnectionError, OSError, RuntimeError, ValueError) as exc:
        print(f"repro-eval trace: {exc}", file=sys.stderr)
        return 1
    finally:
        if client is not None:
            client.close()
