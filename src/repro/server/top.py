"""``repro-eval top``: a live terminal dashboard over the v6 stream.

Subscribes to a running server (either topology) and renders each
:class:`~repro.api.protocol.MetricsFrame` as one text screen: request/
shed/reroute rates computed from the frame's counter deltas, per-worker
queue depth (or per-backend in-flight) as bars, window latency
percentiles reconstructed from the sparse bucket deltas, tier and
speculation counters, and the hot-shard snapshot on the front tier.

Pure rendering (:func:`render_frame`) is separated from the I/O loop
(:func:`run_top`) so the tests can pin the dashboard against synthetic
frames without a terminal; ``--once`` requests exactly one frame and
prints it without ANSI control codes -- the headless/CI mode.
"""

from __future__ import annotations

import sys
from typing import Optional

from ..api.protocol import MetricsFrame
from .client import ServerClient
from .metrics import _BUCKET_EDGES, _interpolate_bucket

__all__ = ["render_frame", "run_top"]

_BAR_WIDTH = 24


def _bar(value: float, cap: float, width: int = _BAR_WIDTH) -> str:
    """A fixed-width utilization bar (cap <= 0 renders empty)."""
    if cap <= 0:
        filled = 0
    else:
        filled = min(width, int(round(width * min(1.0, value / cap))))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _rate(delta: float, elapsed_s: float) -> float:
    return delta / elapsed_s if elapsed_s > 0 else 0.0


def _window_quantile(buckets: dict, q: float) -> float:
    """Quantile over one frame's sparse bucket deltas, log-linearly
    interpolated within the winning bucket (the same estimator the
    cumulative histogram reports)."""
    total = sum(buckets.values())
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    for index in sorted(buckets, key=int):
        count = buckets[index]
        if count and seen + count >= rank:
            i = int(index)
            if 0 <= i < len(_BUCKET_EDGES):
                return _interpolate_bucket(i, rank - seen, count)
            return _BUCKET_EDGES[-1]
        seen += count
    return _BUCKET_EDGES[-1]


def _fmt_s(seconds: float) -> str:
    """Human latency: us/ms/s with 3 significant-ish digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_frame(frame: MetricsFrame, endpoint: str) -> str:
    """One dashboard screen (plain text, no ANSI) for one frame."""
    stream = frame.stream or {}
    counters = stream.get("counters", {})
    gauges = stream.get("gauges", {})
    latency = stream.get("latency", {})
    elapsed = frame.elapsed_s
    requests = counters.get("requests", {})
    errors = counters.get("errors", {})
    work_delta = requests.get("analyze", 0) + requests.get("execute", 0)

    lines = [
        f"repro-eval top -- {endpoint}  "
        f"topology={stream.get('topology', '?')}  "
        f"uptime={stream.get('uptime_s', 0.0):.1f}s  "
        f"frame={frame.seq}{'  (final)' if frame.final else ''}",
        "",
        f"  rates ({elapsed:.2f}s window)" if elapsed > 0
        else "  rates (first frame: no window yet)",
        f"    requests  {_rate(work_delta, elapsed):8.1f}/s"
        f"    completed {_rate(counters.get('completed', 0), elapsed):8.1f}/s",
        f"    shed      {_rate(counters.get('shed', 0), elapsed):8.1f}/s"
        f"    errors    {_rate(sum(errors.values()), elapsed):8.1f}/s",
    ]

    # tier-specific third rate row
    if "rerouted" in counters or "fanouts" in counters:
        lines.append(
            f"    rerouted  {_rate(counters.get('rerouted', 0), elapsed):8.1f}/s"
            f"    fanouts   {_rate(counters.get('fanouts', 0), elapsed):8.1f}/s"
        )
    else:
        lines.append(
            f"    coalesced {_rate(counters.get('coalesced', 0), elapsed):8.1f}/s"
            f"    warm hits {_rate(counters.get('warm_hits', 0), elapsed):8.1f}/s"
        )

    lines += [
        "",
        f"  gauges: inflight={gauges.get('inflight', 0)}"
        f"  connections={gauges.get('connections', 0)}"
        + (f"  max_inflight={gauges['max_inflight']}"
           if "max_inflight" in gauges else "")
        + (f"  backends_live={gauges['backends_live']}"
           if "backends_live" in gauges else ""),
    ]

    depths = gauges.get("queue_depth")
    if isinstance(depths, list) and depths:
        cap = max(max(depths), 1)
        lines.append("  worker queues:")
        for worker, depth in enumerate(depths):
            lines.append(f"    w{worker:<3d} {_bar(depth, cap)} {depth}")
    backend_inflight = gauges.get("backend_inflight")
    if isinstance(backend_inflight, list) and backend_inflight:
        cap = max(max(backend_inflight), 1)
        lines.append("  backend in-flight:")
        for backend, inflight in enumerate(backend_inflight):
            lines.append(f"    b{backend:<3d} {_bar(inflight, cap)} {inflight}")

    buckets = latency.get("buckets", {})
    lines += [
        "",
        f"  latency window: n={latency.get('count', 0)}"
        f"  p50={_fmt_s(_window_quantile(buckets, 0.50))}"
        f"  p95={_fmt_s(_window_quantile(buckets, 0.95))}"
        f"  max(cum)={_fmt_s(latency.get('max_s', 0.0))}"
        + (f"  invalid=+{latency['invalid']}"
           if latency.get("invalid") else ""),
    ]

    tiers = counters.get("tiers")
    speculation = counters.get("speculation")
    if tiers or speculation:
        tiers = tiers or {}
        speculation = speculation or {}
        lines.append(
            f"  tiers: +{tiers.get('tier0', 0)} tier0"
            f" / +{tiers.get('tier1', 0)} tier1"
            f"    speculation: +{speculation.get('commits', 0)} commit"
            f" / +{speculation.get('rollbacks', 0)} rollback"
        )

    hot = stream.get("hot_shards")
    if hot is not None:
        lines.append(
            f"  hot shards: {hot.get('hot_digests', 0)} hot"
            f" (>= {hot.get('hot_rps_threshold', 0)} rps,"
            f" max {hot.get('max_rate', 0.0)} rps,"
            f" tracking {hot.get('tracked', 0)})"
        )

    if frame.history:
        lines.append(
            f"  history: {len(frame.history)} ring sample(s), "
            f"seq {frame.history[0].get('seq', 0)}.."
            f"{frame.history[-1].get('seq', 0)}"
        )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval_s: float = 1.0,
    frames: int = 0,
    once: bool = False,
    history: int = 0,
    out=None,
) -> int:
    """Subscribe and render until the stream ends (Ctrl-C unsubscribes
    cleanly).  Returns a process exit code."""
    out = out if out is not None else sys.stdout
    # ANSI clear-screen only on a real terminal in live mode; --once and
    # redirected output stay plain append-only text
    live = bool(not once and hasattr(out, "isatty") and out.isatty())
    client = None
    try:
        client = ServerClient(host, port)
        stream = client.subscribe(
            interval_s=interval_s,
            frames=1 if once else frames,
            history=history,
        )
        try:
            for frame in stream:
                if live:
                    out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
                out.write(render_frame(frame, f"{host}:{port}") + "\n")
                if not live:
                    out.write("\n")
                out.flush()
        except KeyboardInterrupt:
            ack = client.unsubscribe()
            out.write(f"\nstream closed cleanly after {ack.frames} frame(s)\n")
            out.flush()
        return 0
    except (ConnectionError, OSError, RuntimeError) as exc:
        print(f"repro-eval top: {exc}", file=sys.stderr)
        return 1
    finally:
        if client is not None:
            client.close()
