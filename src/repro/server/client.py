"""A small blocking client for the JSON-lines protocol.

Used by the load generator, the CLI's loadgen subcommand and the
integration tests.  One instance owns one connection; because the
server answers **in request order per connection**, pipelined use is
just "N sends, then N receives".

``send_line`` transmits raw bytes verbatim -- that is how the error-
path tests deliver deliberately malformed payloads.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

from ..api import (
    ErrorResponse,
    MetricsFrame,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
    TraceRequest,
    TraceResponse,
    UnsubscribeRequest,
    UnsubscribeResponse,
    response_from_json,
    wire_json,
)

__all__ = ["ServerClient"]


class ServerClient:
    """One blocking connection to a :class:`~repro.server.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self.sock.makefile("rb")

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ------------------------------------------------------
    def send(self, request) -> None:
        """Serialize and send one protocol request (no wait)."""
        self.send_line(wire_json(request.to_json()))

    def send_line(self, text: str) -> None:
        """Send one raw line verbatim (appends the newline)."""
        self.sock.sendall(text.encode() + b"\n")

    def recv(self):
        """Block for the next response document (typed)."""
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return response_from_json(json.loads(line))

    def recv_raw(self) -> dict:
        """Block for the next response as a plain JSON object."""
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- conveniences ---------------------------------------------------
    def call(self, request):
        """One request/response round trip."""
        self.send(request)
        return self.recv()

    def stats(self) -> StatsResponse:
        """The server's observability snapshot (the ``stats`` verb)."""
        return self.call(StatsRequest())

    def trace(
        self,
        trace_id: Optional[str] = None,
        limit: int = 10,
        status: Optional[str] = None,
    ) -> TraceResponse:
        """Fetch one trace by id, or the most recent kept traces (the
        protocol v7 ``trace`` verb)."""
        return self.call(
            TraceRequest(trace_id=trace_id, limit=limit, status=status)
        )

    def subscribe(
        self,
        interval_s: float = 1.0,
        frames: int = 0,
        history: int = 0,
    ):
        """Start a protocol v6 metrics stream; yields each
        :class:`MetricsFrame` through the final one.

        With ``frames=0`` the stream runs until :meth:`unsubscribe` is
        called (from another thread, or pipelined before iterating).
        Raises :class:`RuntimeError` if the server answers the
        subscribe with a typed error.
        """
        self.send(SubscribeRequest(
            interval_s=interval_s, frames=frames, history=history,
        ))
        while True:
            response = self.recv()
            if isinstance(response, ErrorResponse):
                raise RuntimeError(
                    f"subscribe failed: {response.code}: {response.message}"
                )
            if not isinstance(response, MetricsFrame):
                raise RuntimeError(
                    f"unexpected response kind during stream: "
                    f"{type(response).__name__}"
                )
            yield response
            if response.final:
                return

    def unsubscribe(self) -> UnsubscribeResponse:
        """Stop the connection's active stream: sends the unsubscribe,
        drains any remaining frames (including the final one), and
        returns the server's ack with the exact frame count."""
        self.send(UnsubscribeRequest())
        while True:
            response = self.recv()
            if isinstance(response, UnsubscribeResponse):
                return response
            if isinstance(response, ErrorResponse):
                raise RuntimeError(
                    f"unsubscribe failed: {response.code}: {response.message}"
                )
            if not isinstance(response, MetricsFrame):
                raise RuntimeError(
                    f"unexpected response kind during unsubscribe: "
                    f"{type(response).__name__}"
                )

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
