"""Admission control and in-flight coalescing in front of the pool.

The dispatcher is the server's cheap half: it never parses, plans or
executes anything.  For each admitted request it

* enforces a global **max-in-flight budget** and the per-worker
  **bounded queues** (both violations shed the request with a typed,
  retryable ``overloaded`` error -- the server degrades by answering
  fast, not by buffering without bound);
* **coalesces** identical in-flight analyze work: all concurrently
  arriving analyze requests for the same (digest, loop, options) ride
  one compile/plan on the owning shard and fan the single response out
  -- micro-batching by content rather than by time window, so an
  uncontended request never waits for a batch to fill;
* maps every failure onto the typed error schema
  (:class:`~repro.api.protocol.ErrorResponse`) -- a future returned by
  :meth:`Dispatcher.submit` *always* resolves to a protocol response,
  never raises.

The in-flight budget is optionally **adaptive**: an
:class:`AdmissionController` (AIMD, the classic congestion-control
shape) shrinks the budget multiplicatively while the worker queues stay
saturated and grows it back additively once they drain, so a sustained
overload sheds at the door *before* queueing delay poisons every
latency percentile, and a recovered server re-opens without a restart.
The server's sampler loop drives it via :meth:`Dispatcher.adapt`.

Futures are :class:`concurrent.futures.Future` so the asyncio server
(``asyncio.wrap_future``) and plain threaded clients (the load
generator's in-process mode, the tests) can both consume them.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional

from ..api import AnalyzeRequest, ErrorResponse, ExecuteRequest, JsonDiskCache
from .metrics import ServerMetrics
from .pool import EnginePool, PoolClosed

__all__ = ["AdmissionController", "Dispatcher"]

#: Exception types that mean "your request, not the server, is wrong".
_BAD_REQUEST_ERRORS = (KeyError, ValueError, TypeError, SyntaxError)


def _analysis_key(digest: str, request: AnalyzeRequest) -> tuple:
    """Identity of one unit of analyze work: everything that can change
    the response (mirrors the engine's own cache key)."""
    options = tuple(
        (name, repr(value)) for name, value in sorted(request.options.items())
    )
    return (digest, request.loop, options)


class AdmissionController:
    """AIMD policy for the dispatcher's in-flight budget.

    Fed one observation per sampler tick (:meth:`observe`); pure state
    machine otherwise, deterministic under an injected ``clock``:

    * **multiplicative decrease** -- queue utilization at or above
      ``high_utilization`` *continuously* for ``sustain_s`` seconds
      halves the budget (down to ``floor``).  Sustained queueing is the
      signal, not an instantaneous spike: a burst that drains within
      the sustain window never shrinks the budget.
    * **additive increase** -- utilization at or below
      ``low_utilization`` while the budget is actually binding (sheds
      since the last tick, or in-flight near the budget) grows the
      budget one ``step`` (up to ``cap``).  A drained *and* idle server
      keeps its budget where it is -- there is no pressure to probe.
    """

    def __init__(
        self,
        base_budget: int,
        floor: Optional[int] = None,
        cap: Optional[int] = None,
        step: Optional[int] = None,
        high_utilization: float = 0.5,
        low_utilization: float = 0.05,
        sustain_s: float = 1.0,
        decrease: float = 0.5,
        clock=time.monotonic,
    ):
        if base_budget < 1:
            raise ValueError(f"base_budget must be >= 1 (got {base_budget})")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1) (got {decrease})")
        if not 0.0 <= low_utilization < high_utilization:
            raise ValueError(
                "need 0 <= low_utilization < high_utilization "
                f"(got {low_utilization}, {high_utilization})"
            )
        if sustain_s < 0:
            raise ValueError(f"sustain_s must be >= 0 (got {sustain_s})")
        self.base_budget = base_budget
        self.floor = max(1, base_budget // 8) if floor is None else max(1, floor)
        self.cap = base_budget * 4 if cap is None else cap
        self.step = max(1, base_budget // 8) if step is None else max(1, step)
        self.high_utilization = high_utilization
        self.low_utilization = low_utilization
        self.sustain_s = sustain_s
        self.decrease = decrease
        self.budget = min(self.cap, max(self.floor, base_budget))
        self._clock = clock
        self._pressure_since: Optional[float] = None
        self._decreases = 0
        self._increases = 0

    def observe(
        self,
        queue_depth: int,
        queue_capacity: int,
        inflight: int,
        shed_delta: int,
    ) -> int:
        """Fold one sampler tick in; returns the (possibly new) budget."""
        now = self._clock()
        utilization = (
            queue_depth / queue_capacity if queue_capacity > 0 else 0.0
        )
        if utilization >= self.high_utilization:
            if self._pressure_since is None:
                self._pressure_since = now
            elif now - self._pressure_since >= self.sustain_s:
                shrunk = max(self.floor, int(self.budget * self.decrease))
                if shrunk < self.budget:
                    self.budget = shrunk
                    self._decreases += 1
                self._pressure_since = now  # re-arm: shrink again only
                # after another full sustain window under pressure
            return self.budget
        self._pressure_since = None
        budget_bound = shed_delta > 0 or inflight >= 0.75 * self.budget
        if utilization <= self.low_utilization and budget_bound:
            grown = min(self.cap, self.budget + self.step)
            if grown > self.budget:
                self.budget = grown
                self._increases += 1
        return self.budget

    def snapshot(self) -> dict:
        """JSON-safe controller state for the stats document."""
        return {
            "budget": self.budget,
            "cap": self.cap,
            "decreases": self._decreases,
            "floor": self.floor,
            "increases": self._increases,
            "under_pressure": self._pressure_since is not None,
        }


class Dispatcher:
    """Admission control + coalescing between the server and the pool."""

    def __init__(
        self,
        pool: EnginePool,
        metrics: Optional[ServerMetrics] = None,
        max_inflight: int = 256,
        controller: Optional[AdmissionController] = None,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (got {max_inflight})")
        self.pool = pool
        self.metrics = metrics or pool.metrics
        self.base_max_inflight = max_inflight
        self.max_inflight = (
            controller.budget if controller is not None else max_inflight
        )
        self._controller = controller
        # reentrant: a pool future that completes before its done-
        # callback is attached runs that callback synchronously on this
        # thread, inside the admission critical section
        self._lock = threading.RLock()
        self._inflight = 0
        #: analysis key -> the primary in-flight pool future
        self._inflight_analyze: dict = {}
        # unlocked counter (single bytecode increment is atomic enough
        # for a control-loop signal; exactness doesn't matter, staleness
        # by one tick doesn't either)
        self._shed_count = 0
        self._shed_seen = 0

    # -- public ---------------------------------------------------------
    def submit(self, request, trace=None) -> Future:
        """Admit one analyze/execute request.  The returned future
        always resolves to a protocol response document (a result
        response or a typed :class:`ErrorResponse`).  *trace*, when
        given, is the request's :class:`~repro.server.tracing.
        RequestTrace`: the dispatcher records queue-wait/coalesce-join
        spans on it and finishes its root span when the response
        resolves."""
        started = time.monotonic()
        self.metrics.request_admitted()
        outer: Future = Future()
        if not isinstance(request, (AnalyzeRequest, ExecuteRequest)):
            self._finish(
                outer, started,
                ErrorResponse("bad_request",
                              f"not a servable request: {type(request).__name__}"),
                code="bad_request", timed=False, trace=trace,
            )
            return outer
        # shed BEFORE hashing: under overload the reject path must be
        # O(1), not O(len(source)) of event-loop time per rejection
        # (_admit re-checks under the lock; this unlocked read can only
        # be momentarily stale)
        if self._inflight >= self.max_inflight:
            self._shed_count += 1
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"server at max in-flight ({self.max_inflight}); "
                              "retry later", retryable=True),
                timed=False, trace=trace,
            )
            return outer
        digest = JsonDiskCache.digest(request.source)

        if isinstance(request, AnalyzeRequest):
            key = _analysis_key(digest, request)
            with self._lock:
                primary = self._inflight_analyze.get(key)
                if primary is not None:
                    # ride the in-flight computation: no budget charge,
                    # no queue slot -- this request adds zero work
                    self.metrics.coalesced()
                    join_span = (
                        trace.start_span("coalesce_join")
                        if trace is not None else None
                    )
                    primary.add_done_callback(
                        lambda inner: self._finish_from(
                            outer, started, inner,
                            trace=trace, join_span=join_span,
                        )
                    )
                    return outer
                inner = self._admit(digest, request, started, outer, trace)
                if inner is not None:
                    self._inflight_analyze[key] = inner
                    inner.add_done_callback(
                        lambda _done, key=key: self._forget(key)
                    )
            return outer

        with self._lock:
            self._admit(digest, request, started, outer, trace)
        return outer

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def adapt(self, queue_depth: int, queue_capacity: int) -> int:
        """One control-loop tick: feed the admission controller the
        current queue pressure and apply its budget.  No-op (returns
        the static budget) when the dispatcher was built without a
        controller.  Called from the server's sampler task.
        """
        if self._controller is None:
            return self.max_inflight
        shed_total = self._shed_count
        shed_delta = shed_total - self._shed_seen
        self._shed_seen = shed_total
        # read _inflight unlocked for the same reason as the fast-path
        # shed check: a momentarily stale value only skews one tick
        budget = self._controller.observe(
            queue_depth, queue_capacity, self._inflight, shed_delta
        )
        self.max_inflight = budget
        return budget

    def admission_snapshot(self) -> dict:
        """JSON-safe admission state for the extended stats document."""
        doc = {
            "adaptive": self._controller is not None,
            "base_max_inflight": self.base_max_inflight,
            "max_inflight": self.max_inflight,
            "shed_total": self._shed_count,
        }
        if self._controller is not None:
            doc["controller"] = self._controller.snapshot()
        return doc

    # -- internals ------------------------------------------------------
    def _admit(self, digest, request, started, outer, trace=None) -> Optional[Future]:
        """Budget-check and enqueue (caller holds the lock).  Returns
        the pool-side future, or None when the request was shed."""
        if self._inflight >= self.max_inflight:
            self._shed_count += 1
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"server at max in-flight ({self.max_inflight}); "
                              "retry later", retryable=True),
                timed=False, trace=trace,
            )
            return None
        shard = self.pool.shard_for(digest)
        inner: Future = Future()
        queue_span = (
            trace.start_span("queue_wait", shard=shard)
            if trace is not None else None
        )
        try:
            self.pool.submit(
                shard, digest, request, inner,
                trace=trace, queue_span=queue_span,
            )
        except queue.Full:
            self._shed_count += 1
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"worker {shard} queue full; retry later",
                              retryable=True),
                timed=False, trace=trace,
            )
            return None
        except PoolClosed:
            self._shed_count += 1
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded", "server shutting down",
                              retryable=True),
                timed=False, trace=trace,
            )
            return None
        self._inflight += 1
        inner.add_done_callback(
            lambda done: self._finish_from(
                outer, started, done, charged=True, trace=trace,
            )
        )
        return inner

    def _forget(self, key) -> None:
        with self._lock:
            self._inflight_analyze.pop(key, None)

    def _finish_from(
        self, outer, started, inner,
        charged=False, trace=None, join_span=None,
    ) -> None:
        """Resolve *outer* from the completed pool future *inner*."""
        if charged:
            with self._lock:
                self._inflight -= 1
        if trace is not None and join_span is not None:
            trace.end_span(join_span)
        try:
            response = inner.result()
            code = None
        except PoolClosed:
            response = ErrorResponse(
                "overloaded", "server shut down before serving",
                retryable=True)
            code = "overloaded"
        except _BAD_REQUEST_ERRORS as exc:
            response = ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc))
            code = "bad_request"
        except Exception as exc:  # noqa: BLE001 -- typed wire error, never a traceback
            response = ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}")
            code = "internal"
        self._finish(outer, started, response, code=code, trace=trace)

    def _finish(
        self, outer, started, response,
        code: Optional[str] = None, timed: bool = True, trace=None,
    ) -> None:
        if code is not None:
            self.metrics.error(code)
        # shed/rejected fast paths (timed=False) complete in
        # microseconds and would drag the latency percentiles down
        # exactly when the server is overloaded -- the histogram only
        # measures requests that reached the pool
        self.metrics.request_completed(
            time.monotonic() - started if timed else None
        )
        if trace is not None:
            # the tail-based keep/drop decision happens here, where the
            # outcome is known
            if isinstance(response, ErrorResponse):
                trace.finish(status="error", error_code=response.code)
            else:
                trace.finish(status="ok")
        # the consumer may have cancelled the wrapped future (connection
        # torn down mid-flight); the response is then simply dropped
        if outer.set_running_or_notify_cancel():
            outer.set_result(response)
