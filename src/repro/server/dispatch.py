"""Admission control and in-flight coalescing in front of the pool.

The dispatcher is the server's cheap half: it never parses, plans or
executes anything.  For each admitted request it

* enforces a global **max-in-flight budget** and the per-worker
  **bounded queues** (both violations shed the request with a typed,
  retryable ``overloaded`` error -- the server degrades by answering
  fast, not by buffering without bound);
* **coalesces** identical in-flight analyze work: all concurrently
  arriving analyze requests for the same (digest, loop, options) ride
  one compile/plan on the owning shard and fan the single response out
  -- micro-batching by content rather than by time window, so an
  uncontended request never waits for a batch to fill;
* maps every failure onto the typed error schema
  (:class:`~repro.api.protocol.ErrorResponse`) -- a future returned by
  :meth:`Dispatcher.submit` *always* resolves to a protocol response,
  never raises.

Futures are :class:`concurrent.futures.Future` so the asyncio server
(``asyncio.wrap_future``) and plain threaded clients (the load
generator's in-process mode, the tests) can both consume them.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional

from ..api import AnalyzeRequest, ErrorResponse, ExecuteRequest, JsonDiskCache
from .metrics import ServerMetrics
from .pool import EnginePool, PoolClosed

__all__ = ["Dispatcher"]

#: Exception types that mean "your request, not the server, is wrong".
_BAD_REQUEST_ERRORS = (KeyError, ValueError, TypeError, SyntaxError)


def _analysis_key(digest: str, request: AnalyzeRequest) -> tuple:
    """Identity of one unit of analyze work: everything that can change
    the response (mirrors the engine's own cache key)."""
    options = tuple(
        (name, repr(value)) for name, value in sorted(request.options.items())
    )
    return (digest, request.loop, options)


class Dispatcher:
    """Admission control + coalescing between the server and the pool."""

    def __init__(
        self,
        pool: EnginePool,
        metrics: Optional[ServerMetrics] = None,
        max_inflight: int = 256,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (got {max_inflight})")
        self.pool = pool
        self.metrics = metrics or pool.metrics
        self.max_inflight = max_inflight
        # reentrant: a pool future that completes before its done-
        # callback is attached runs that callback synchronously on this
        # thread, inside the admission critical section
        self._lock = threading.RLock()
        self._inflight = 0
        #: analysis key -> the primary in-flight pool future
        self._inflight_analyze: dict = {}

    # -- public ---------------------------------------------------------
    def submit(self, request) -> Future:
        """Admit one analyze/execute request.  The returned future
        always resolves to a protocol response document (a result
        response or a typed :class:`ErrorResponse`)."""
        started = time.monotonic()
        self.metrics.request_admitted()
        outer: Future = Future()
        if not isinstance(request, (AnalyzeRequest, ExecuteRequest)):
            self._finish(
                outer, started,
                ErrorResponse("bad_request",
                              f"not a servable request: {type(request).__name__}"),
                code="bad_request", timed=False,
            )
            return outer
        # shed BEFORE hashing: under overload the reject path must be
        # O(1), not O(len(source)) of event-loop time per rejection
        # (_admit re-checks under the lock; this unlocked read can only
        # be momentarily stale)
        if self._inflight >= self.max_inflight:
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"server at max in-flight ({self.max_inflight}); "
                              "retry later", retryable=True),
                timed=False,
            )
            return outer
        digest = JsonDiskCache.digest(request.source)

        if isinstance(request, AnalyzeRequest):
            key = _analysis_key(digest, request)
            with self._lock:
                primary = self._inflight_analyze.get(key)
                if primary is not None:
                    # ride the in-flight computation: no budget charge,
                    # no queue slot -- this request adds zero work
                    self.metrics.coalesced()
                    primary.add_done_callback(
                        lambda inner: self._finish_from(outer, started, inner)
                    )
                    return outer
                inner = self._admit(digest, request, started, outer)
                if inner is not None:
                    self._inflight_analyze[key] = inner
                    inner.add_done_callback(
                        lambda _done, key=key: self._forget(key)
                    )
            return outer

        with self._lock:
            self._admit(digest, request, started, outer)
        return outer

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # -- internals ------------------------------------------------------
    def _admit(self, digest, request, started, outer) -> Optional[Future]:
        """Budget-check and enqueue (caller holds the lock).  Returns
        the pool-side future, or None when the request was shed."""
        if self._inflight >= self.max_inflight:
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"server at max in-flight ({self.max_inflight}); "
                              "retry later", retryable=True),
                timed=False,
            )
            return None
        shard = self.pool.shard_for(digest)
        inner: Future = Future()
        try:
            self.pool.submit(shard, digest, request, inner)
        except queue.Full:
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded",
                              f"worker {shard} queue full; retry later",
                              retryable=True),
                timed=False,
            )
            return None
        except PoolClosed:
            self.metrics.shed()
            self._finish(
                outer, started,
                ErrorResponse("overloaded", "server shutting down",
                              retryable=True),
                timed=False,
            )
            return None
        self._inflight += 1
        inner.add_done_callback(
            lambda done: self._finish_from(outer, started, done, charged=True)
        )
        return inner

    def _forget(self, key) -> None:
        with self._lock:
            self._inflight_analyze.pop(key, None)

    def _finish_from(self, outer, started, inner, charged=False) -> None:
        """Resolve *outer* from the completed pool future *inner*."""
        if charged:
            with self._lock:
                self._inflight -= 1
        try:
            response = inner.result()
            code = None
        except PoolClosed:
            response = ErrorResponse(
                "overloaded", "server shut down before serving",
                retryable=True)
            code = "overloaded"
        except _BAD_REQUEST_ERRORS as exc:
            response = ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc))
            code = "bad_request"
        except Exception as exc:  # noqa: BLE001 -- typed wire error, never a traceback
            response = ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}")
            code = "internal"
        self._finish(outer, started, response, code=code)

    def _finish(
        self, outer, started, response,
        code: Optional[str] = None, timed: bool = True,
    ) -> None:
        if code is not None:
            self.metrics.error(code)
        # shed/rejected fast paths (timed=False) complete in
        # microseconds and would drag the latency percentiles down
        # exactly when the server is overloaded -- the histogram only
        # measures requests that reached the pool
        self.metrics.request_completed(
            time.monotonic() - started if timed else None
        )
        # the consumer may have cancelled the wrapped future (connection
        # torn down mid-flight); the response is then simply dropped
        if outer.set_running_or_notify_cancel():
            outer.set_result(response)
