"""Per-request distributed tracing with tail-based retention (v7).

Every analyze/execute request admitted by a serving tier gets a
:class:`RequestTrace`: a trace id, a root span covering the request's
whole lifetime, and child spans recorded at each layer it crosses
(admission + queue wait in the dispatcher, route decision and backend
RPC on the front tier, compile and execute inside the engine).  The
context travels over the wire as the additive protocol v7 ``trace``
field (:meth:`TraceContext.to_wire`); readers that predate it ignore
the field, readers that receive nothing mint their own context -- so
old clients and old backends keep working unchanged.

Retention is *tail-based*: spans are recorded for every request, and
the keep/drop decision happens when the root span finishes, when the
outcome is known.  Errors are always kept, slow-tail requests (root
duration >= ``slow_s``) are always kept, force-sampled requests
(``sampled`` in the wire context, set by ``loadgen --trace`` or by
head-sampling with ``--trace-sample``) are always kept, and everything
else survives with ``keep_probability``.  The store is bounded by both
a trace count and a total span count; eviction removes the lowest
retention class first (probabilistic < sampled < slow < error), oldest
first within a class, so sustained load can never grow the store past
its caps and an error trace is the last thing to go.

Phase attribution bridges the engine's compile span to the existing
:mod:`repro.profiling` counters (``ir.parse``, ``analyzer.summarize``,
``usr.build``, ``core.factor``, ``core.screen_static``).  The profiler
is process-global, so only one compile at a time may own it: a
non-blocking lock serializes attribution, and a compile that loses the
race simply records no phase breakdown (best effort by design, never a
stall).
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Optional

from .. import profiling as _profiling

__all__ = [
    "DEFAULT_KEEP_PROBABILITY",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_MAX_TRACES",
    "DEFAULT_SLOW_S",
    "PHASE_TIMERS",
    "RequestTrace",
    "Span",
    "TraceContext",
    "TraceStore",
    "maybe_span",
    "mint_span_id",
    "mint_trace_id",
]

#: Root-span duration at which a trace joins the always-keep slow tail.
DEFAULT_SLOW_S = 0.25
#: Tail-keep probability for traces that are neither errors, slow, nor
#: force-sampled.
DEFAULT_KEEP_PROBABILITY = 0.05
#: Store bounds: whichever cap is hit first triggers eviction.
DEFAULT_MAX_TRACES = 512
DEFAULT_MAX_SPANS = 8192

#: Compile-span phase attribution: phase label -> profiler timer name.
PHASE_TIMERS = {
    "parse": "ir.parse",
    "summarize": "analyzer.summarize",
    "usr_build": "usr.build",
    "cascade": "core.factor",
    "tier0_screen": "core.screen_static",
}

#: Retention classes in eviction order (lowest evicts first).
KEEP_PRIORITY = {"probabilistic": 0, "sampled": 1, "slow": 2, "error": 3}

# The profiler is process-global state; exactly one phase-attributed
# compile may own it at a time.  Losers skip attribution, never block.
_PHASE_LOCK = threading.Lock()


def mint_trace_id() -> str:
    return uuid.uuid4().hex


def mint_span_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceContext:
    """The wire form of a trace: what crosses a tier boundary.

    ``parent_span_id`` is the span on the *sending* tier that the
    receiving tier's root span should hang under (the front tier sets
    it to its backend-RPC span id, so stitching is pure concatenation).
    """

    __slots__ = ("trace_id", "parent_span_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        parent_span_id: Optional[str] = None,
        sampled: bool = False,
    ):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    def to_wire(self) -> dict:
        doc = {"trace_id": self.trace_id, "sampled": self.sampled}
        if self.parent_span_id is not None:
            doc["parent_span_id"] = self.parent_span_id
        return doc

    @classmethod
    def from_wire(cls, payload) -> Optional["TraceContext"]:
        """Default-tolerant reader: anything malformed reads as *no
        context* (the receiver mints its own) rather than an error."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = payload.get("parent_span_id")
        if parent is not None and not isinstance(parent, str):
            parent = None
        return cls(
            trace_id=trace_id,
            parent_span_id=parent,
            sampled=bool(payload.get("sampled", False)),
        )


class Span:
    """One timed operation inside a trace (wall-clock timestamps, so
    spans from different processes line up on one timeline)."""

    __slots__ = ("span_id", "parent_id", "name", "start_s", "end_s",
                 "status", "attrs")

    def __init__(self, name: str, parent_id: Optional[str], start_s: float):
        self.span_id = mint_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.attrs: dict = {}

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return max(0.0, end - self.start_s)

    def to_json(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_span_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s if self.end_s is not None else self.start_s,
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """No-op span: lets call sites ``span.set(...)`` unconditionally."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


@contextmanager
def maybe_span(tracer, name: str, phases: bool = False, **attrs):
    """``tracer.span(...)`` when a tracer is present, a no-op span
    otherwise -- the zero-overhead fast path for untraced requests."""
    if tracer is None:
        yield NULL_SPAN
    else:
        with tracer.span(name, phases=phases, **attrs) as span:
            yield span


class RequestTrace:
    """The spans of one request on one tier, rooted at admission.

    Thread-safe: the dispatcher's event loop, the pool worker thread
    and the engine all append spans to the same trace.  ``finish`` ends
    the root span and offers the completed trace to the tier's store
    (exactly once; later calls are ignored).
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        sampled: bool = False,
        parent_span_id: Optional[str] = None,
        name: str = "request",
        store: Optional["TraceStore"] = None,
        clock: Callable[[], float] = time.time,
        **root_attrs,
    ):
        self.trace_id = trace_id or mint_trace_id()
        self.sampled = sampled
        self._store = store
        self._clock = clock
        self._lock = threading.Lock()
        self._finished = False
        self.root = Span(name, parent_span_id, clock())
        self.root.attrs.update(root_attrs)
        self.spans = [self.root]

    @classmethod
    def adopt(
        cls,
        context: Optional[TraceContext],
        store: Optional["TraceStore"] = None,
        name: str = "request",
        clock: Callable[[], float] = time.time,
        **root_attrs,
    ) -> "RequestTrace":
        """Continue a wire context, or mint a fresh trace without one."""
        if context is None:
            return cls(store=store, name=name, clock=clock, **root_attrs)
        return cls(
            trace_id=context.trace_id,
            sampled=context.sampled,
            parent_span_id=context.parent_span_id,
            store=store,
            name=name,
            clock=clock,
            **root_attrs,
        )

    def child_context(self, parent_span_id: Optional[str] = None) -> TraceContext:
        """The wire context a downstream tier should adopt."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=parent_span_id or self.root.span_id,
            sampled=self.sampled,
        )

    def start_span(self, name: str, parent_id: Optional[str] = None,
                   **attrs) -> Span:
        span = Span(name, parent_id or self.root.span_id, self._clock())
        span.attrs.update(attrs)
        with self._lock:
            self.spans.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok") -> None:
        span.end_s = self._clock()
        span.status = status

    @contextmanager
    def span(self, name: str, phases: bool = False,
             parent_id: Optional[str] = None, **attrs):
        """Record one timed operation; ``phases=True`` additionally
        bridges the profiler for compile-phase attribution (sampled
        traces only, and only when no other compile holds the
        profiler)."""
        span = self.start_span(name, parent_id=parent_id, **attrs)
        capture = phases and self.sampled and _PHASE_LOCK.acquire(False)
        if capture:
            was_enabled = _profiling.is_enabled()
            before = _profiling.snapshot().times
            _profiling.enable()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            if capture:
                after = _profiling.snapshot().times
                if not was_enabled:
                    _profiling.disable()
                _PHASE_LOCK.release()
                span.attrs["phases"] = {
                    phase: round(delta, 9)
                    for phase, timer in PHASE_TIMERS.items()
                    for delta in [after.get(timer, 0.0) - before.get(timer, 0.0)]
                    if delta > 0.0
                }
            if span.end_s is None:
                self.end_span(span, status=span.status)

    def add_child_spans(self, spans: list) -> None:
        """Graft already-serialized spans (a stitched backend subtree)."""
        with self._lock:
            self.spans.extend(spans)

    def finish(self, status: str = "ok",
               error_code: Optional[str] = None) -> Optional[dict]:
        """End the root span and offer the trace to the store.  Returns
        the trace document (kept or not), or None on a repeat call."""
        with self._lock:
            if self._finished:
                return None
            self._finished = True
        self.root.end_s = self._clock()
        self.root.status = status
        if error_code:
            self.root.attrs["error_code"] = error_code
        doc = self.to_json()
        if self._store is not None:
            self._store.offer(doc)
        return doc

    def to_json(self) -> dict:
        with self._lock:
            spans = [
                s.to_json() if isinstance(s, Span) else dict(s)
                for s in self.spans
            ]
        return {
            "trace_id": self.trace_id,
            "root_span_id": self.root.span_id,
            "status": self.root.status,
            "sampled": self.sampled,
            "start_s": self.root.start_s,
            "duration_s": round(self.root.duration_s, 9),
            "spans": spans,
        }


class TraceStore:
    """Bounded in-memory trace retention with tail-based sampling.

    ``offer`` classifies a finished trace (error > slow > sampled >
    probabilistic), drops the probabilistic class with probability
    ``1 - keep_probability``, and then evicts -- lowest class first,
    oldest first within a class -- until both the trace-count and the
    total-span caps hold.  A new trace is itself dropped rather than
    evict a strictly higher class, so a store full of error traces
    never loses one to unremarkable traffic.
    """

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_spans: int = DEFAULT_MAX_SPANS,
        slow_s: float = DEFAULT_SLOW_S,
        keep_probability: float = DEFAULT_KEEP_PROBABILITY,
        rng: Optional[random.Random] = None,
    ):
        self.max_traces = max(1, int(max_traces))
        self.max_spans = max(1, int(max_spans))
        self.slow_s = slow_s
        self.keep_probability = keep_probability
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._traces: dict = {}  # trace_id -> doc, insertion-ordered
        self._span_total = 0
        self.offered = 0
        self.kept = 0
        self.sampled_out = 0
        self.evicted = 0

    def classify(self, doc: dict) -> str:
        if doc.get("status") == "error":
            return "error"
        if doc.get("duration_s", 0.0) >= self.slow_s:
            return "slow"
        if doc.get("sampled"):
            return "sampled"
        return "probabilistic"

    def offer(self, doc: dict) -> bool:
        keep_class = self.classify(doc)
        with self._lock:
            self.offered += 1
            if keep_class == "probabilistic":
                if self._rng.random() >= self.keep_probability:
                    self.sampled_out += 1
                    return False
            doc = dict(doc)
            doc["keep"] = keep_class
            spans = doc.get("spans", [])
            if len(spans) > self.max_spans:
                doc["spans"] = spans[: self.max_spans]
                doc["spans_truncated"] = len(spans) - self.max_spans
            trace_id = doc["trace_id"]
            evicted = self._traces.pop(trace_id, None)
            if evicted is not None:
                self._span_total -= len(evicted.get("spans", []))
            self._traces[trace_id] = doc
            self._span_total += len(doc.get("spans", []))
            admitted = self._evict_locked(trace_id, KEEP_PRIORITY[keep_class])
            if admitted:
                self.kept += 1
            else:
                self.sampled_out += 1
            return admitted

    def _evict_locked(self, new_id: str, new_priority: int) -> bool:
        while (len(self._traces) > self.max_traces
               or self._span_total > self.max_spans):
            victim_id, victim_priority = None, None
            for tid, doc in self._traces.items():  # oldest first
                priority = KEEP_PRIORITY.get(doc.get("keep"), 0)
                if tid == new_id:
                    continue
                if victim_priority is None or priority < victim_priority:
                    victim_id, victim_priority = tid, priority
                    if priority == 0:
                        break
            if victim_id is None or victim_priority > new_priority:
                # nothing evictable below the newcomer: drop it instead
                doc = self._traces.pop(new_id)
                self._span_total -= len(doc.get("spans", []))
                return False
            doc = self._traces.pop(victim_id)
            self._span_total -= len(doc.get("spans", []))
            self.evicted += 1
        return True

    def extend(self, trace_id: str, spans: list) -> None:
        """Append stitched child spans to a stored trace (front tier)."""
        with self._lock:
            doc = self._traces.get(trace_id)
            if doc is None:
                return
            budget = max(0, self.max_spans - len(doc["spans"]))
            doc["spans"] = doc["spans"] + list(spans)[:budget]
            self._span_total += min(len(spans), budget)
            # grafted spans count against the cap like any others
            self._evict_locked(trace_id, KEEP_PRIORITY.get(doc.get("keep"), 0))

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            doc = self._traces.get(trace_id)
            return dict(doc) if doc is not None else None

    def recent(self, limit: int = 10,
               status: Optional[str] = None) -> list:
        """Newest-first trace documents, optionally status-filtered."""
        with self._lock:
            docs = list(self._traces.values())
        if status:
            docs = [d for d in docs if d.get("status") == status]
        return [dict(d) for d in reversed(docs[-limit:] if limit else docs)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def span_total(self) -> int:
        with self._lock:
            return self._span_total

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": self._span_total,
                "max_traces": self.max_traces,
                "max_spans": self.max_spans,
                "slow_s": self.slow_s,
                "keep_probability": self.keep_probability,
                "offered": self.offered,
                "kept": self.kept,
                "sampled_out": self.sampled_out,
                "evicted": self.evicted,
            }
