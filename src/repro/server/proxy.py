"""The multi-process serving tier: a front-tier proxy over backend
engine processes.

The single-process tier (:mod:`repro.server.server`) shards analysis
across worker *threads*, so every concurrent cold analyze still
contends on one GIL.  :class:`FrontTier` removes that ceiling: it
speaks the same JSON-lines protocol to clients, but owns no engines --
it supervises N independent backend ``repro-eval serve`` *processes*
(:mod:`repro.server.supervisor`) and routes each request by source
digest across them on the process-level consistent-hash ring
(:mod:`repro.server.routing`).

Design rules, in routing order:

* **digest affinity** -- a program's requests land on the ring
  successor owning its digest, so each backend's compile/analysis
  caches see a stable slice of the keyspace (same property the thread
  pool has, promoted one level up);
* **liveness-aware rerouting** -- a dead backend's digests move to
  their next live successor (and only those digests move); in-flight
  requests lost to the death yield a typed *retryable* ``overloaded``
  error, never a dropped connection;
* **hot-shard replication** -- per-digest rate tracking
  (:class:`~repro.server.routing.HotShardTracker`) detects viral
  programs; their analyzes race across the digest's R-replica set
  (any-replica-wins -- the cache-warm replica answers first) and their
  executes rotate across it, so one hot program cannot pin one backend;
* **front-tier coalescing** -- identical concurrent analyzes collapse
  into one backend round-trip *before* fan-out, the same
  single-flight the backend dispatcher runs, applied fleet-wide;
* **byte transparency** -- response lines are returned verbatim, so a
  client cannot tell one backend from the fleet (tested literally:
  byte-equivalence against a direct single-process server); request
  lines are re-serialized only to inject the per-hop trace context
  (protocol v7), which default-tolerant backends ignore semantically.

The ``stats`` verb is answered by the front tier itself with a
topology-aware document: the front's own counters, the supervisor's
per-backend state (pid, restarts, last error) and each live backend's
engine-level stats, aggregated in one round.
"""

from __future__ import annotations

import asyncio
import collections
import json
import random
import time
from typing import Deque, Dict, List, Optional

from ..api import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ErrorResponse,
    StatsResponse,
    TraceRequest,
    TraceResponse,
    request_from_json,
    wire_json,
)
from ..api.cache import JsonDiskCache
from .lineserver import LineServer, ready
from .metrics import FrontTierMetrics
from .routing import HotShardTracker, Router
from .stream import Subscription
from .supervisor import BackendSupervisor, serve_backend_command
from .tracing import RequestTrace, TraceContext, TraceStore

__all__ = ["BackendDied", "FrontTier"]

#: StreamReader limit for backend connections: response lines (large
#: execute payloads echo arrays back) can far exceed request size.
MAX_RESPONSE_BYTES = 32 * 1024 * 1024

#: Pipelined TCP connections per backend.  Two keeps a slow response on
#: one connection from head-of-line-blocking everything else bound for
#: that backend, without fanning every backend into a connection herd.
CONNS_PER_BACKEND = 2

#: Per-backend timeout when aggregating the topology stats document.
STATS_TIMEOUT_S = 5.0


class BackendDied(Exception):
    """The backend handling a forwarded request went away before
    answering."""


def _died_error() -> ErrorResponse:
    return ErrorResponse(
        "overloaded",
        "backend process died mid-request; safe to retry",
        retryable=True,
    )


def _response_status(response) -> tuple:
    """(status, error_code) for a handler's return value: a raw backend
    response line, a typed :class:`ErrorResponse`, or ``None`` (the
    handler raised)."""
    if response is None:
        return "error", "internal"
    if isinstance(response, ErrorResponse):
        return "error", response.code
    if isinstance(response, (bytes, bytearray)) and (
        b'"kind": "error"' in response or b'"kind":"error"' in response
    ):
        try:
            doc = json.loads(response)
            if isinstance(doc, dict) and doc.get("kind") == "error":
                return "error", doc.get("code", "internal")
        except ValueError:
            pass
    return "ok", None


class _BackendConn:
    """One pipelined connection to one backend process.

    Requests go out in order; the backend answers in order; a FIFO of
    futures matches them back up.  EOF or a transport error fails every
    outstanding future with :class:`BackendDied`.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: Deque[asyncio.Future] = collections.deque()
        self.closed = False
        self._pump = asyncio.create_task(self._read_loop())

    @classmethod
    async def open(cls, host: str, port: int) -> "_BackendConn":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_RESPONSE_BYTES
        )
        return cls(reader, writer)

    @property
    def inflight(self) -> int:
        return len(self._pending)

    def send(self, raw_line: bytes) -> asyncio.Future:
        """Forward one request line; the returned future resolves to the
        backend's raw response line (no newline) or raises
        :class:`BackendDied`."""
        if self.closed:
            raise BackendDied("connection already closed")
        future = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        try:
            self._writer.write(raw_line + b"\n")
        except (ConnectionError, OSError, RuntimeError) as exc:
            self._pending.remove(future)
            self._fail(exc)
            raise BackendDied(str(exc)) from exc
        return future

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not self._pending:
                    continue  # backend spoke out of turn; nothing waits
                future = self._pending.popleft()
                if not future.done():
                    future.set_result(line.rstrip(b"\n"))
        except (ConnectionError, OSError, ValueError, asyncio.LimitOverrunError):
            pass
        finally:
            self._fail(BackendDied("backend connection lost"))

    def _fail(self, exc: Exception) -> None:
        self.closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                if isinstance(exc, BackendDied):
                    future.set_exception(exc)
                else:
                    future.set_exception(BackendDied(str(exc)))
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 -- teardown must not raise
            pass

    async def close(self) -> None:
        self._fail(BackendDied("connection closed"))
        self._pump.cancel()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _BackendLink:
    """The front tier's view of one supervised backend slot: its
    liveness, current address, and pipelined connection pool."""

    def __init__(self, index: int):
        self.index = index
        self.live = False
        self.address: Optional[tuple] = None
        self.conns: List[_BackendConn] = []

    def up(self, host: str, port: int) -> None:
        self.live = True
        self.address = (host, port)

    def down(self) -> List[_BackendConn]:
        """Mark dead; hand back the connections to fail/close."""
        self.live = False
        self.address = None
        conns, self.conns = self.conns, []
        return conns

    async def acquire(self) -> _BackendConn:
        """The least-loaded open connection, dialing up to
        ``CONNS_PER_BACKEND`` lazily."""
        if not self.live or self.address is None:
            raise BackendDied(f"backend {self.index} is not live")
        self.conns = [c for c in self.conns if not c.closed]
        idle = min(self.conns, key=lambda c: c.inflight, default=None)
        if idle is not None and (idle.inflight == 0 or len(self.conns) >= CONNS_PER_BACKEND):
            return idle
        host, port = self.address
        try:
            conn = await _BackendConn.open(host, port)
        except (ConnectionError, OSError) as exc:
            # supervisor says up but the dial failed: restart race
            raise BackendDied(f"backend {self.index} refused connection") from exc
        self.conns.append(conn)
        return conn


class FrontTier(LineServer):
    """The multi-process serving endpoint: proxy + supervisor + ring."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backends: int = 4,
        replicas: int = 2,
        backend_command=None,
        backend_workers: int = 2,
        sharding: str = "digest",
        cache_dir: Optional[str] = None,
        use_disk_cache: bool = True,
        hot_rps: float = 32.0,
        hot_window_s: float = 1.0,
        vnodes: int = 64,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        startup_timeout_s: float = 120.0,
        supervisor: Optional[BackendSupervisor] = None,
        sample_interval_s: float = 0.5,
        trace_sample: float = 0.0,
        trace_store: Optional[TraceStore] = None,
    ):
        super().__init__(host=host, port=port, max_request_bytes=max_request_bytes)
        if backends < 1:
            raise ValueError(f"backends must be >= 1 (got {backends})")
        if sample_interval_s <= 0:
            raise ValueError(
                f"sample_interval_s must be > 0 (got {sample_interval_s})"
            )
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1] (got {trace_sample})"
            )
        self.backends = backends
        self.sample_interval_s = sample_interval_s
        #: head-sampling probability at the front door; a sampled flag
        #: propagates to the backends over the wire, so one decision
        #: covers the whole distributed request
        self.trace_sample = trace_sample
        self.trace_store = trace_store if trace_store is not None else TraceStore()
        self._trace_rng = random.Random()
        self._sampler_task: Optional[asyncio.Task] = None
        self.replicas = max(1, min(replicas, backends))
        self.metrics = FrontTierMetrics()
        self.router = Router(backends, vnodes=vnodes)
        self.tracker = HotShardTracker(window_s=hot_window_s, hot_rps=hot_rps)
        self.startup_timeout_s = startup_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._links = [_BackendLink(i) for i in range(backends)]
        self._inflight_analyses: Dict[tuple, asyncio.Future] = {}
        self._rotation = 0
        if supervisor is not None:
            self.supervisor = supervisor
            self.supervisor.on_up = self._on_backend_up
            self.supervisor.on_down = self._on_backend_down
        else:
            if backend_command is None:
                backend_command = serve_backend_command(
                    workers=backend_workers,
                    sharding=sharding,
                    cache_dir=cache_dir,
                    use_disk_cache=use_disk_cache,
                )
            self.supervisor = BackendSupervisor(
                backends,
                backend_command,
                on_up=self._on_backend_up,
                on_down=self._on_backend_down,
            )

    # -- supervisor callbacks (arrive on monitor threads) ----------------
    def _on_backend_up(self, index: int, host: str, port: int) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._mark_up, index, host, port)

    def _on_backend_down(self, index: int) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._mark_down, index)

    def _mark_up(self, index: int, host: str, port: int) -> None:
        self._links[index].up(host, port)

    def _mark_down(self, index: int) -> None:
        self.metrics.backend_died()
        for conn in self._links[index].down():
            conn._fail(BackendDied(f"backend {index} exited"))

    def _live_set(self) -> frozenset:
        return frozenset(l.index for l in self._links if l.live)

    # -- lifecycle -------------------------------------------------------
    async def _on_start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.supervisor.start()
        up = await self._loop.run_in_executor(
            None, self.supervisor.wait_up, self.startup_timeout_s
        )
        if not up:
            await self._loop.run_in_executor(None, self.supervisor.stop)
            raise RuntimeError(
                f"backend fleet failed to start within "
                f"{self.startup_timeout_s:.0f}s "
                f"({[s.to_json() for s in self.supervisor.statuses()]})"
            )
        self._sampler_task = asyncio.ensure_future(self._sample_loop())

    async def _on_stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        for link in self._links:
            for conn in link.down():
                await conn.close()
        await asyncio.get_running_loop().run_in_executor(None, self.supervisor.stop)

    def _connection_opened(self) -> None:
        self.metrics.connection_opened()

    def _connection_closed(self) -> None:
        self.metrics.connection_closed()

    # -- sampling --------------------------------------------------------
    def _backend_inflight(self) -> list:
        """Requests in flight per backend slot, over its open pipelined
        connections (0 for a dead slot)."""
        return [
            sum(c.inflight for c in link.conns if not c.closed)
            for link in self._links
        ]

    def _stream_sample(self) -> dict:
        """One metrics ring sample with the proxy tier's gauges and the
        hot-shard snapshot attached."""
        return self.metrics.sample(
            gauges={
                "backend_inflight": self._backend_inflight(),
                "backends_live": len(self._live_set()),
            },
            extra={"hot_shards": self.tracker.snapshot()},
        )

    async def _sample_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sample_interval_s)
            self._stream_sample()

    # -- admission -------------------------------------------------------
    def _admit(self, line, oversized, context):
        if oversized:
            self.metrics.error("too_large")
            return ready(ErrorResponse(
                "too_large",
                f"request exceeds {self.max_request_bytes} bytes",
            ))
        try:
            payload = json.loads(line)
        except ValueError:
            self.metrics.error("malformed")
            return ready(ErrorResponse("malformed", "request is not valid JSON"))
        if not isinstance(payload, dict):
            self.metrics.error("malformed")
            return ready(ErrorResponse(
                "malformed", "request must be a JSON object"))
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            self.metrics.error("unsupported_version")
            return ready(ErrorResponse(
                "unsupported_version",
                f"unsupported protocol version {version!r} "
                f"(this server speaks {PROTOCOL_VERSION})",
            ))
        kind = payload.get("kind")
        if kind == "stats":
            self.metrics.request_received("stats")
            return asyncio.ensure_future(self._topology_stats())
        if kind == "subscribe":
            self.metrics.request_received("subscribe")
            return self._subscribe(payload, context)
        if kind == "unsubscribe":
            self.metrics.request_received("unsubscribe")
            return self._unsubscribe(context)
        if kind == "trace":
            self.metrics.request_received("trace")
            try:
                request = request_from_json(payload)
            except Exception as exc:  # noqa: BLE001 -- typed response, never a drop
                self.metrics.error("bad_request")
                return ready(ErrorResponse(
                    "bad_request", str(exc.args[0] if exc.args else exc)))
            return asyncio.ensure_future(self._trace_fetch(request))
        if kind not in ("analyze", "execute"):
            self.metrics.error("unknown_verb")
            return ready(ErrorResponse(
                "unknown_verb", f"unknown request kind {kind!r}"))
        self.metrics.request_received(kind)
        try:
            request_from_json(payload)  # validate here: same typed
            # bad_request a single-process server would produce, without
            # burning a backend round-trip on garbage
        except Exception as exc:  # noqa: BLE001 -- any decode failure is the
            # request's fault, and the contract is a typed response
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        trace = self._start_trace(kind, payload)
        return asyncio.ensure_future(self._handle(kind, payload, trace))

    # -- tracing ---------------------------------------------------------
    def _start_trace(self, kind: str, payload: dict) -> RequestTrace:
        """Adopt the client's wire trace context (or mint a fresh one)
        at the front door and apply head sampling; the sampled flag
        rides the injected per-hop context down to the backends."""
        context = TraceContext.from_wire(payload.get("trace"))
        trace = RequestTrace.adopt(
            context, store=self.trace_store, verb=kind, tier="front",
        )
        if (not trace.sampled and self.trace_sample > 0.0
                and self._trace_rng.random() < self.trace_sample):
            trace.sampled = True
        return trace

    async def _trace_fetch(self, request: TraceRequest) -> TraceResponse:
        """Answer ``trace`` from the front store, stitching in the child
        spans each live backend recorded for the same trace id."""
        if request.trace_id:
            doc = self.trace_store.get(request.trace_id)
            traces = [doc] if doc is not None else []
        else:
            traces = self.trace_store.recent(
                limit=request.limit, status=request.status
            )
        stitched = []
        for doc in traces:
            children = await self._backend_spans(doc["trace_id"])
            if children:
                have = {span["span_id"] for span in doc["spans"]}
                fresh = [s for s in children if s["span_id"] not in have]
                if fresh:
                    self.trace_store.extend(doc["trace_id"], fresh)
                    updated = self.trace_store.get(doc["trace_id"])
                    if updated is not None:
                        doc = updated
            stitched.append(doc)
        return TraceResponse(
            traces=stitched, store=self.trace_store.snapshot()
        )

    async def _backend_spans(self, trace_id: str) -> list:
        """Every live backend's spans for one trace id (best effort:
        dead/slow backends and evicted traces just contribute none)."""
        fetch_line = wire_json(
            TraceRequest(trace_id=trace_id).to_json()
        ).encode()

        async def one(index: int) -> list:
            try:
                line = await asyncio.wait_for(
                    self._forward(index, fetch_line), STATS_TIMEOUT_S
                )
                doc = json.loads(line)
                if doc.get("kind") == "trace":
                    spans = []
                    for trace_doc in doc.get("traces", []):
                        spans.extend(trace_doc.get("spans", []))
                    return spans
            except (BackendDied, asyncio.TimeoutError, ValueError):
                pass
            return []

        gathered = await asyncio.gather(
            *(one(i) for i in sorted(self._live_set()))
        )
        return [span for spans in gathered for span in spans]

    # -- streaming -------------------------------------------------------
    def _subscribe(self, payload, context):
        """Start this connection's metrics stream over the *front
        tier's* registry (backend engine stats stay poll-only via
        ``stats``; the stream's gauges carry per-backend in-flight and
        the live count, its ``hot_shards`` the tracker snapshot)."""
        try:
            request = request_from_json(payload)
        except Exception as exc:  # noqa: BLE001 -- typed response, never a drop
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        active = context.subscription
        if active is not None and not active.finished:
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request",
                "a metrics stream is already active on this connection"))
        subscription = Subscription(
            self._stream_sample,
            "multiproc",
            interval_s=request.interval_s,
            frames=request.frames,
            history=request.history,
            recent_fn=self.metrics.recent_samples,
        )
        context.subscription = subscription
        return subscription

    def _unsubscribe(self, context):
        subscription = context.subscription
        if subscription is None:
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", "no metrics stream on this connection"))
        subscription.stop()
        return subscription.ack()

    # -- request handling -------------------------------------------------
    async def _handle(self, kind: str, payload: dict, trace: RequestTrace):
        started = time.monotonic()
        self.metrics.request_admitted()
        response = None
        try:
            digest = JsonDiskCache.digest(payload["source"])
            self.tracker.observe(digest)
            if kind == "analyze":
                response = await self._handle_analyze(digest, payload, trace)
            else:
                response = await self._handle_execute(digest, payload, trace)
            return response
        finally:
            self.metrics.request_completed(time.monotonic() - started)
            status, code = _response_status(response)
            trace.finish(status=status, error_code=code)

    async def _handle_analyze(self, digest: str, payload: dict,
                              trace: RequestTrace):
        # fleet-wide single-flight: concurrent identical analyzes ride
        # one backend round-trip (same key the backend dispatcher uses)
        options = payload.get("options") or {}
        key = (
            digest,
            payload.get("loop"),
            tuple(sorted((str(n), repr(v)) for n, v in options.items())),
        )
        leader = self._inflight_analyses.get(key)
        if leader is not None:
            self.metrics.coalesced()
            join_span = trace.start_span("coalesce_join")
            try:
                return await asyncio.shield(leader)
            finally:
                trace.end_span(join_span)
        future = asyncio.ensure_future(
            self._route_analyze(digest, payload, trace)
        )
        self._inflight_analyses[key] = future
        try:
            return await asyncio.shield(future)
        finally:
            if self._inflight_analyses.get(key) is future:
                del self._inflight_analyses[key]

    def _route_span(self, trace: RequestTrace, digest: str, target,
                    hot: bool, fanout=None) -> None:
        """Record the routing decision as an (instant) span: the ring
        primary, the chosen target (or fan-out set) and whether the
        hot-shard path fired."""
        primary = self.router.primary(digest)
        span = trace.start_span(
            "route", primary=primary, hot=hot,
            rerouted=bool(target is not None and target != primary),
        )
        if target is not None:
            span.set("target", target)
        if fanout is not None:
            span.set("fanout", list(fanout))
        trace.end_span(span)

    async def _route_analyze(self, digest: str, payload: dict,
                             trace: RequestTrace):
        if self.replicas > 1 and self.tracker.is_hot(digest):
            live = self._live_set()
            targets = [b for b in self.router.replicas(digest, self.replicas)
                       if b in live]
            if len(targets) > 1:
                self.metrics.fanout()
                self._route_span(trace, digest, None, hot=True,
                                 fanout=targets)
                return await self._race(targets, payload, trace)
        return await self._forward_routed(digest, payload, trace)

    async def _handle_execute(self, digest: str, payload: dict,
                              trace: RequestTrace):
        # executes mutate nothing shared (engines are deterministic and
        # caches content-addressed), so a hot digest's executes rotate
        # across its replica set instead of pinning the primary
        if self.replicas > 1 and self.tracker.is_hot(digest):
            live = self._live_set()
            targets = [b for b in self.router.replicas(digest, self.replicas)
                       if b in live]
            if len(targets) > 1:
                self.metrics.fanout()
                self._rotation += 1
                index = targets[self._rotation % len(targets)]
                self._route_span(trace, digest, index, hot=True)
                try:
                    return await self._forward(
                        index, None, trace=trace, payload=payload
                    )
                except BackendDied:
                    pass  # fall through to the ring walk
        return await self._forward_routed(digest, payload, trace)

    async def _forward_routed(self, digest: str, payload: dict,
                              trace: RequestTrace):
        """Walk the digest's ring successors until a live backend
        answers; each hop only happens when the previous owner died."""
        tried = set()
        while True:
            live = self._live_set() - tried
            index = self.router.route(digest, live)
            if index is None:
                self.metrics.error("overloaded")
                return _died_error() if tried else ErrorResponse(
                    "overloaded", "no live backend", retryable=True)
            if index != self.router.primary(digest):
                self.metrics.rerouted()
            self._route_span(trace, digest, index, hot=False)
            tried.add(index)
            try:
                return await self._forward(
                    index, None, trace=trace, payload=payload
                )
            except BackendDied:
                continue

    async def _race(self, targets: List[int], payload: dict,
                    trace: RequestTrace):
        """Any-replica-wins: forward to every live replica, return the
        first successful response (the cache-warm replica answers in
        microseconds while a cold one compiles).  Falls back to the
        first typed error when no replica succeeds."""
        tasks = [
            asyncio.ensure_future(
                self._forward(i, None, trace=trace, payload=payload)
            )
            for i in targets
        ]
        first_error = None
        pending = set(tasks)
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is not None:
                        continue  # that replica died; others may answer
                    line = task.result()
                    if b'"kind": "error"' in line or b'"kind":"error"' in line:
                        try:
                            if json.loads(line).get("kind") == "error":
                                if first_error is None:
                                    first_error = line
                                continue
                        except ValueError:
                            pass
                    return line
            if first_error is not None:
                return first_error
            self.metrics.error("overloaded")
            return _died_error()
        finally:
            for task in pending:
                # losers keep draining on their connections' FIFOs; the
                # forward tasks just stop being awaited
                task.add_done_callback(lambda t: t.exception())

    async def _forward(self, index: int, raw: Optional[bytes],
                       trace: Optional[RequestTrace] = None,
                       payload: Optional[dict] = None) -> bytes:
        """One backend round-trip.  With a trace, the request is
        re-serialized per attempt with this hop's child context
        injected, and the RPC becomes a ``backend_rpc`` span whose
        error status survives the backend's death (the retryable-error
        span the SIGKILL tests pin)."""
        if trace is None or payload is None:
            conn = await self._links[index].acquire()
            return await conn.send(raw)
        span = trace.start_span("backend_rpc", backend=index)
        doc = dict(payload)
        doc["trace"] = trace.child_context(span.span_id).to_wire()
        try:
            conn = await self._links[index].acquire()
            line = await conn.send(wire_json(doc).encode())
        except BackendDied:
            span.set("error", "backend_died")
            span.set("retryable", True)
            trace.end_span(span, status="error")
            raise
        status, code = _response_status(line)
        if code is not None:
            span.set("error_code", code)
        trace.end_span(span, status=status)
        return line

    # -- topology stats ----------------------------------------------------
    async def _topology_stats(self) -> StatsResponse:
        """The front tier's own ``stats`` answer: front counters +
        supervisor view + every live backend's engine stats."""
        stats_line = json.dumps(
            {"kind": "stats", "version": PROTOCOL_VERSION}
        ).encode()

        async def one(index: int):
            try:
                line = await asyncio.wait_for(
                    self._forward(index, stats_line), STATS_TIMEOUT_S
                )
                payload = json.loads(line)
                if payload.get("kind") == "stats":
                    return payload.get("stats")
            except (BackendDied, asyncio.TimeoutError, ValueError):
                pass
            return None

        live = sorted(self._live_set())
        gathered = await asyncio.gather(*(one(i) for i in live))
        per_backend = dict(zip(live, gathered))
        backends_doc = []
        for status in self.supervisor.statuses():
            doc = status.to_json()
            doc["stats"] = per_backend.get(status.index)
            backends_doc.append(doc)
        front = self.metrics.snapshot()
        front["hot_shards"] = self.tracker.snapshot()
        front["backend_inflight"] = self._backend_inflight()
        return StatsResponse(stats={
            "backends": backends_doc,
            "front": front,
            "topology": {
                "backends": self.backends,
                "kind": "multiproc",
                "live": len(live),
                "replicas": self.replicas,
            },
        })
