"""The sharded engine pool: N worker threads, each owning an Engine.

Requests are routed by *source digest* on a consistent-hash ring, so a
given program always lands on the worker that already holds its compile
memo -- cache locality instead of lock contention.  This is the
serving-side mirror of the paper's inspector/executor split: the cheap
decision (which shard) happens up front on the event loop; the heavy
work (parse, summaries, planning, execution) happens on a worker that
has, with high probability, already paid for it.

Two routing modes exist so the win is measurable rather than asserted:

* ``sharding="digest"`` (the real mode): every worker owns a private
  :class:`~repro.api.Engine`; the ring maps digests to workers.
* ``sharding="shared"`` (the baseline the serving benchmark compares
  against): every worker serves from one shared engine and requests are
  routed round-robin, i.e. a conventional "one big cache + pool of
  threads" server.

Workers communicate through bounded :class:`queue.Queue`\\ s; the pool
itself never blocks a caller -- a full queue raises :class:`queue.Full`
and the dispatcher turns that into a typed ``overloaded`` response
(load shedding, not backpressure-by-hanging).
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from typing import Optional

from ..api import Engine, EngineConfig
from .metrics import ServerMetrics

__all__ = ["EnginePool", "PoolClosed", "consistent_ring"]

#: Virtual points per shard on the consistent-hash ring.  Enough to
#: keep the assignment spread within a few percent of uniform for the
#: worker counts a single host can run.
_VNODES = 64


class PoolClosed(RuntimeError):
    """Raised for work that was queued but never served because the
    pool shut down (the dispatcher reports it as retryable)."""


def consistent_ring(shards: int, vnodes: int = _VNODES) -> list:
    """The sorted ``(point, shard)`` ring for *shards* workers.

    Points are SHA-256 of ``"shard:vnode"`` -- stable across runs and
    platforms, so the same digest routes to the same shard on every
    server of the same width.
    """
    ring = []
    for shard in range(shards):
        for vnode in range(vnodes):
            token = hashlib.sha256(f"{shard}:{vnode}".encode()).hexdigest()
            ring.append((int(token[:16], 16), shard))
    ring.sort()
    return ring


class _Worker:
    """One shard: a thread, a bounded inbox and (usually) an engine."""

    def __init__(self, index: int, engine: Engine, depth: int, pool: "EnginePool"):
        self.index = index
        self.engine = engine
        self.inbox: queue.Queue = queue.Queue(maxsize=depth)
        self.pool = pool
        self.thread = threading.Thread(
            target=self._run, name=f"repro-pool-{index}", daemon=True
        )

    def _run(self) -> None:
        while True:
            item = self.inbox.get()
            if item is None:
                self.inbox.task_done()
                return
            digest, request, future, trace, queue_span = item
            try:
                if trace is not None and queue_span is not None:
                    trace.end_span(queue_span)
                # the cache-locality signal: is the compiled program
                # actually resident right now (not merely seen once and
                # since evicted)?
                warm = bool(digest) and self.engine.holds(digest)
                if warm:
                    self.pool.metrics.warm_hit()
                if trace is not None:
                    trace.root.set("worker", self.index)
                    trace.root.set("warm", warm)
                if not future.set_running_or_notify_cancel():
                    continue
                result = self.engine.serve(
                    request, digest=digest or None, tracer=trace
                )
            except BaseException as exc:  # delivered, never swallowed
                future.set_exception(exc)
            else:
                commits = getattr(result, "speculation_commits", 0)
                rollbacks = getattr(result, "speculation_rollbacks", 0)
                if commits or rollbacks:
                    self.pool.metrics.speculation(commits, rollbacks)
                tier_used = getattr(result, "tier_used", "")
                if tier_used:
                    self.pool.metrics.tier(tier_used)
                future.set_result(result)
            finally:
                self.inbox.task_done()


class EnginePool:
    """N worker threads with digest-sharded (or shared) engines."""

    def __init__(
        self,
        workers: int = 4,
        engine_config: Optional[EngineConfig] = None,
        queue_depth: int = 128,
        sharding: str = "digest",
        metrics: Optional[ServerMetrics] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1 (got {queue_depth})")
        if sharding not in ("digest", "shared"):
            raise ValueError(
                f"sharding must be 'digest' or 'shared' (got {sharding!r})"
            )
        self.sharding = sharding
        self.queue_depth = queue_depth  # per-worker capacity (for
        # utilization math in the adaptive-admission control loop)
        self.metrics = metrics or ServerMetrics()
        config = engine_config or EngineConfig()
        if sharding == "shared":
            shared = Engine(config)
            engines = [shared] * workers
        else:
            engines = [Engine(config) for _ in range(workers)]
        self._workers = [
            _Worker(i, engines[i], queue_depth, self) for i in range(workers)
        ]
        self._ring = consistent_ring(workers)
        self._points = [point for point, _ in self._ring]
        self._round_robin = 0
        self._lock = threading.Lock()
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "EnginePool":
        with self._lock:
            if self._closed:
                # fail fast: a restarted pool would bind and then shed
                # every request forever (threads are joined, engines
                # retired) -- pools are single-use by design
                raise PoolClosed("pool was stopped; create a new one")
            if not self._started:
                for worker in self._workers:
                    worker.thread.start()
                self._started = True
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop every worker.  With ``drain`` (the default) queued work
        is served first; otherwise pending futures fail with
        :class:`PoolClosed`."""
        abandoned = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # a never-started pool has no workers to drain the queues,
            # so queued futures must be failed, not stranded
            if not drain or not self._started:
                for worker in self._workers:
                    try:
                        while True:
                            item = worker.inbox.get_nowait()
                            worker.inbox.task_done()
                            if item is not None:
                                abandoned.append(item)
                    except queue.Empty:
                        pass
        # failing the futures runs their done-callbacks synchronously
        # (which may take the dispatcher's lock) -- never under ours
        for item in abandoned:
            item[2].set_exception(PoolClosed("pool shut down"))
        # Sentinels go in AFTER releasing the lock: _closed was set
        # under the same lock submit() takes, so every in-flight submit
        # has already enqueued and later ones raise PoolClosed -- no
        # item can slip in behind a sentinel.  And a blocking put on a
        # full inbox must not happen while holding the lock (a worker's
        # done-callback can be waiting on the dispatcher lock whose
        # holder is waiting on ours -- a cycle).
        if self._started:
            for worker in self._workers:
                worker.inbox.put(None)
            for worker in self._workers:
                worker.thread.join()
        # release the engines' global cache-registry entries so retired
        # pools (benchmarks and tests create them routinely) don't pin
        # their compiled programs for the process lifetime
        for engine in {id(w.engine): w.engine for w in self._workers}.values():
            engine.close()

    # -- routing --------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._workers)

    def shard_for(self, digest: str) -> int:
        """The shard that owns *digest* (consistent hashing), or the
        next round-robin shard in ``shared`` mode / for digest-less
        work."""
        if self.sharding == "shared" or not digest:
            with self._lock:
                shard = self._round_robin % len(self._workers)
                self._round_robin += 1
            return shard
        point = int(digest[:16], 16)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]

    def engine_for(self, shard: int) -> Engine:
        return self._workers[shard].engine

    def queue_size(self, shard: int) -> int:
        return self._workers[shard].inbox.qsize()

    def analysis_cache_counts(self) -> list:
        """Per-worker engine analysis-cache outcomes (``shared``
        sharding reports the one engine once per worker, mirroring the
        per-worker queue-depth listing)."""
        return [w.engine.analysis_cache_counts() for w in self._workers]

    # -- submission ------------------------------------------------------
    def submit(
        self, shard: int, digest: str, request, future,
        trace=None, queue_span=None,
    ) -> None:
        """Enqueue one request on *shard*.  Raises :class:`queue.Full`
        when the shard's inbox is at depth (the caller sheds) and
        :class:`PoolClosed` after shutdown began.  *trace* (a
        :class:`~repro.server.tracing.RequestTrace`) rides along to the
        worker, which closes *queue_span* on dequeue and hands the
        trace to the engine for compile/execute spans."""
        with self._lock:
            if self._closed:
                raise PoolClosed("pool shut down")
            self._workers[shard].inbox.put_nowait(
                (digest, request, future, trace, queue_span)
            )
