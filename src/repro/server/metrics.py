"""Serving observability: counters and a latency histogram.

One :class:`ServerMetrics` instance is shared by the admission layer,
the dispatcher and the engine pool.  Everything is guarded by a single
lock -- the touched state is a handful of integers, so contention is
negligible next to the work being measured -- and :meth:`snapshot`
returns a *schema-stable* JSON-safe document: every counter (including
every error code of :data:`repro.api.protocol.ERROR_CODES`) is always
present, so ``stats`` responses diff cleanly across time and versions.

Latency percentiles come from a fixed logarithmic bucket ladder rather
than a reservoir of raw samples: memory stays constant under millions
of requests.  The reported p50/p95/p99 interpolate log-linearly within
the bucket holding that quantile (assuming ranks spread uniformly in
log-space across the bucket, the natural prior for a geometric ladder),
so the estimate sits inside the winning bucket instead of pinning to
its upper edge -- worst-case error is one bucket ratio (~1.55x), versus
the systematic upper-edge overstatement the old report carried.

Both registries also keep a bounded ring of recent samples
(:meth:`ServerMetrics.sample` / :meth:`ServerMetrics.recent_samples`)
-- the history a late protocol v6 ``subscribe`` stream subscriber sees
without the server holding unbounded state.
"""

from __future__ import annotations

import collections
import math
import threading
import time
from typing import Optional

from ..api.protocol import ERROR_CODES

__all__ = ["FrontTierMetrics", "LatencyHistogram", "ServerMetrics"]

#: Histogram bucket upper bounds in seconds: 43 log-spaced edges from
#: 10us to ~1000s (ratio ~1.55), plus a catch-all overflow bucket.
_BUCKET_RATIO = 1.55
_BUCKET_EDGES = tuple(1e-5 * (_BUCKET_RATIO ** i) for i in range(43))


def _interpolate_bucket(index: int, rank_in_bucket: float, count: int) -> float:
    """Log-linear position of a rank within bucket *index* of the
    ladder: ranks are assumed uniform in log-space between the bucket's
    edges (bucket 0's lower edge extends the geometric ladder one step
    down).  Shared by the cumulative histogram and the streaming
    dashboard's windowed quantiles."""
    hi = _BUCKET_EDGES[index]
    lo = _BUCKET_EDGES[index - 1] if index > 0 else hi / _BUCKET_RATIO
    frac = min(1.0, max(0.0, rank_in_bucket / count)) if count else 1.0
    return lo * (hi / lo) ** frac

#: Request verbs the serving layer counts (the protocol's "kind" tags).
VERBS = ("analyze", "execute", "stats", "subscribe", "trace", "unsubscribe")

#: Bounded history of metrics samples kept for late stream subscribers.
RING_CAPACITY = 256


class LatencyHistogram:
    """Fixed-bucket latency accounting with quantile upper bounds."""

    __slots__ = ("counts", "overflow", "total", "sum_s", "max_s", "invalid")

    def __init__(self):
        self.counts = [0] * len(_BUCKET_EDGES)
        self.overflow = 0
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0
        self.invalid = 0

    def observe(self, seconds: float) -> None:
        # a NaN/inf duration (a broken clock, a subtraction against a
        # poisoned timestamp) must not reach sum_s/max_s: NaN propagates
        # through every later mean and max(0.0, nan) is nan
        if not isinstance(seconds, (int, float)) or not math.isfinite(seconds):
            self.invalid += 1
            return
        seconds = max(0.0, seconds)
        self.total += 1
        self.sum_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        # linear scan is fine: 43 edges, and observe() sits next to a
        # network round-trip
        for i, edge in enumerate(_BUCKET_EDGES):
            if seconds <= edge:
                self.counts[i] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Quantile *q* estimated by log-linear interpolation within the
        bucket containing it (0 when the histogram is empty).  Never
        exceeds the observed maximum, never leaves the winning bucket."""
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, edge in enumerate(_BUCKET_EDGES):
            count = self.counts[i]
            if count and seen + count >= rank:
                value = _interpolate_bucket(i, rank - seen, count)
                return min(value, self.max_s) if self.max_s > 0 else value
            seen += count
        return self.max_s

    def snapshot(self) -> dict:
        mean = (self.sum_s / self.total) if self.total else 0.0
        return {
            "count": self.total,
            "invalid": self.invalid,
            "mean_s": round(mean, 6),
            "p50_s": round(self.quantile(0.50), 6),
            "p95_s": round(self.quantile(0.95), 6),
            "p99_s": round(self.quantile(0.99), 6),
            "max_s": round(self.max_s, 6),
        }

    def state(self) -> dict:
        """Cumulative bucket state for streaming delta computation
        (:mod:`repro.server.stream`): sparse non-zero counts keyed by
        the stringified bucket index, plus the raw totals."""
        return {
            "counts": {str(i): c for i, c in enumerate(self.counts) if c},
            "invalid": self.invalid,
            "max_s": self.max_s,
            "overflow": self.overflow,
            "sum_s": self.sum_s,
            "total": self.total,
        }


class _SampleRing:
    """Shared sampling surface for the two metrics registries: a
    bounded ring of recent ``(seq, snapshot, gauges, latency state)``
    samples feeding the protocol v6 metrics stream.  Subclasses provide
    ``_lock``, ``_latency`` and ``_snapshot_locked()``.
    """

    def _init_ring(self, ring_capacity: int) -> None:
        self._ring: collections.deque = collections.deque(
            maxlen=max(1, ring_capacity)
        )
        self._sample_seq = 0

    def sample(self, gauges: Optional[dict] = None,
               extra: Optional[dict] = None) -> dict:
        """Take one sample: the full snapshot plus caller-provided
        gauges (per-worker queue depths, the live admission budget, ...)
        and opaque extras (the hot-shard snapshot), appended to the
        bounded ring and returned."""
        with self._lock:
            stats = self._snapshot_locked()
            entry = {
                "seq": self._sample_seq,
                "uptime_s": stats["uptime_s"],
                "stats": stats,
                "gauges": dict(gauges or {}),
                "extra": dict(extra or {}),
                "latency_state": self._latency.state(),
            }
            self._sample_seq += 1
            self._ring.append(entry)
            return entry

    def recent_samples(self, limit: Optional[int] = None) -> list:
        """The most recent ring samples, oldest first (at most *limit*
        when given)."""
        with self._lock:
            samples = list(self._ring)
        if limit is None:
            return samples
        if limit <= 0:
            return []
        return samples[-limit:]


class ServerMetrics(_SampleRing):
    """Thread-safe counters + latency for one serving endpoint."""

    def __init__(self, clock=time.monotonic, ring_capacity: int = RING_CAPACITY):
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self._requests = {verb: 0 for verb in VERBS}
        self._completed = 0
        self._errors = {code: 0 for code in sorted(ERROR_CODES)}
        self._shed = 0
        self._coalesced = 0
        self._warm_hits = 0
        self._inflight = 0
        self._connections = 0
        self._speculation_commits = 0
        self._speculation_rollbacks = 0
        self._tiers = {"tier0": 0, "tier1": 0}
        self._latency = LatencyHistogram()
        self._init_ring(ring_capacity)

    # -- recording ------------------------------------------------------
    def connection_opened(self) -> None:
        with self._lock:
            self._connections += 1

    def connection_closed(self) -> None:
        with self._lock:
            # clamped like the inflight gauge: an unmatched close (a
            # connection torn down before its open was recorded) must
            # not drive the gauge negative forever
            self._connections = max(0, self._connections - 1)

    def request_received(self, verb: str) -> None:
        with self._lock:
            if verb in self._requests:
                self._requests[verb] += 1

    def request_admitted(self) -> None:
        with self._lock:
            self._inflight += 1

    def request_completed(self, wall_s: Optional[float] = None) -> None:
        with self._lock:
            self._completed += 1
            self._inflight = max(0, self._inflight - 1)
            if wall_s is not None:
                self._latency.observe(wall_s)

    def error(self, code: str) -> None:
        with self._lock:
            if code in self._errors:
                self._errors[code] += 1

    def shed(self) -> None:
        with self._lock:
            self._shed += 1
            self._errors["overloaded"] += 1

    def coalesced(self) -> None:
        with self._lock:
            self._coalesced += 1

    def warm_hit(self) -> None:
        with self._lock:
            self._warm_hits += 1

    def speculation(self, commits: int, rollbacks: int) -> None:
        """Fold one execute response's speculative-backend outcome in."""
        with self._lock:
            self._speculation_commits += commits
            self._speculation_rollbacks += rollbacks

    def tier(self, tier_used: str) -> None:
        """Fold one analyze response's tier provenance in ('tier0' =
        resolved entirely by the Tier-0 screen)."""
        with self._lock:
            if tier_used in self._tiers:
                self._tiers[tier_used] += 1

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """The stats document served for the protocol's ``stats`` verb.

        Key set is fixed (see the module docstring); only values vary.
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        return {
            "coalesced": self._coalesced,
            "completed": self._completed,
            "connections": self._connections,
            "errors": dict(self._errors),
            "inflight": self._inflight,
            "latency": self._latency.snapshot(),
            "requests": dict(self._requests),
            "shed": self._shed,
            "speculation": {
                "commits": self._speculation_commits,
                "rollbacks": self._speculation_rollbacks,
            },
            "tiers": dict(self._tiers),
            "uptime_s": round(self._clock() - self._started, 3),
            "warm_hits": self._warm_hits,
        }


class FrontTierMetrics(_SampleRing):
    """Thread-safe counters + latency for the multi-process front tier.

    Same design rules as :class:`ServerMetrics` (one lock, schema-stable
    :meth:`snapshot`), but the counted events are proxy events: routing,
    replica fan-out, backend deaths and reroutes -- the front tier has
    no engines, so pool/speculation/tier counters live on the backends
    and surface through the aggregated topology stats instead.
    """

    def __init__(self, clock=time.monotonic, ring_capacity: int = RING_CAPACITY):
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self._requests = {verb: 0 for verb in VERBS}
        self._completed = 0
        self._errors = {code: 0 for code in sorted(ERROR_CODES)}
        self._coalesced = 0
        self._fanouts = 0
        self._rerouted = 0
        self._backend_died = 0
        self._inflight = 0
        self._connections = 0
        self._latency = LatencyHistogram()
        self._init_ring(ring_capacity)

    # -- recording ------------------------------------------------------
    def connection_opened(self) -> None:
        with self._lock:
            self._connections += 1

    def connection_closed(self) -> None:
        with self._lock:
            # same clamp as ServerMetrics: never negative
            self._connections = max(0, self._connections - 1)

    def request_received(self, verb: str) -> None:
        with self._lock:
            if verb in self._requests:
                self._requests[verb] += 1

    def request_admitted(self) -> None:
        with self._lock:
            self._inflight += 1

    def request_completed(self, wall_s: Optional[float] = None) -> None:
        with self._lock:
            self._completed += 1
            self._inflight = max(0, self._inflight - 1)
            if wall_s is not None:
                self._latency.observe(wall_s)

    def error(self, code: str) -> None:
        with self._lock:
            if code in self._errors:
                self._errors[code] += 1

    def coalesced(self) -> None:
        with self._lock:
            self._coalesced += 1

    def fanout(self) -> None:
        """One hot-digest request fanned out across its replica set."""
        with self._lock:
            self._fanouts += 1

    def rerouted(self) -> None:
        """One request routed past a dead primary to a live successor."""
        with self._lock:
            self._rerouted += 1

    def backend_died(self) -> None:
        """One backend death observed by the proxy (requests in flight
        on it each receive a retryable ``overloaded`` error)."""
        with self._lock:
            self._backend_died += 1

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """Front-tier half of the topology stats document.  Key set is
        fixed; only values vary."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        return {
            "backend_died": self._backend_died,
            "coalesced": self._coalesced,
            "completed": self._completed,
            "connections": self._connections,
            "errors": dict(self._errors),
            "fanouts": self._fanouts,
            "inflight": self._inflight,
            "latency": self._latency.snapshot(),
            "requests": dict(self._requests),
            "rerouted": self._rerouted,
            "uptime_s": round(self._clock() - self._started, 3),
        }
