"""repro.server: the network serving subsystem.

Puts the :mod:`repro.api` protocol on a socket and keeps it healthy
under concurrent load.  The layering mirrors the paper's
inspector/executor split -- a cheap admission/dispatch front and a
heavy analysis back end:

* :class:`ReproServer` (``server.py``) -- asyncio JSON-lines-over-TCP:
  one request per line, one response per line, responses in request
  order per connection, typed error documents for everything that goes
  wrong, graceful shutdown;
* :class:`EnginePool` (``pool.py``) -- N worker threads, each owning an
  :class:`~repro.api.Engine`; requests routed by source digest on a
  consistent-hash ring for cache locality;
* :class:`Dispatcher` (``dispatch.py``) -- admission control: a global
  max-in-flight budget, bounded per-worker queues with typed
  ``overloaded`` shedding, and in-flight coalescing of identical
  analyze work;
* :class:`ServerMetrics` (``metrics.py``) -- counters + latency
  histogram served through the protocol's ``stats`` verb, plus a
  bounded ring of recent samples;
* :class:`Subscription` (``stream.py``) -- the protocol v6
  ``subscribe`` verb: live incremental metrics frames pushed over the
  same connection, rendered by ``repro-eval top`` (``top.py``);
* :class:`RequestTrace` / :class:`TraceStore` (``tracing.py``) -- the
  protocol v7 per-request distributed tracing: spans at every layer,
  tail-based retention (errors and the slow tail always kept), served
  by the ``trace`` verb and rendered as a waterfall by ``repro-eval
  trace`` (``traceview.py``);
* :class:`ServerClient` (``client.py``) -- a small blocking client;
* :mod:`repro.server.loadgen` -- open-/closed-loop load generation
  (uniform or zipf-skewed) and the ``BENCH_serving.json`` benchmarks.

The multi-process tier (``--topology multiproc``) stacks three more
modules on the same transport (``lineserver.py``):

* :class:`FrontTier` (``proxy.py``) -- a front-tier proxy speaking the
  identical protocol, routing requests by source digest across backend
  *processes*, racing hot digests across replicas, and answering
  ``stats`` with an aggregated topology document;
* :class:`BackendSupervisor` (``supervisor.py``) -- spawns/monitors N
  backend ``repro-eval serve`` processes, restarts crashes with
  exponential backoff, drains on shutdown;
* :class:`Router` / :class:`HotShardTracker` (``routing.py``) -- the
  consistent-hash ring promoted to process level plus sliding-window
  hot-shard detection.

Quickstart::

    repro-eval serve --port 7070 --workers 4          # terminal 1
    repro-eval loadgen --port 7070 --clients 8 --requests 200

or in-process::

    from repro.server import ServerThread, ServerClient
    from repro.api import AnalyzeRequest

    hosted = ServerThread(workers=4).start()
    host, port = hosted.address
    with ServerClient(host, port) as client:
        response = client.call(AnalyzeRequest(source=SOURCE, loop="my_loop"))
        print(client.stats().stats["latency"])
    hosted.stop()

See ``docs/SERVER.md`` for the architecture and wire examples.
"""

from .client import ServerClient
from .dispatch import AdmissionController, Dispatcher
from .loadgen import (
    SERVING_VERSION,
    MixItem,
    ZipfSampler,
    build_mix,
    format_serving,
    make_request,
    run_load,
    run_multiproc_bench,
    run_serving_bench,
    serving_path,
    write_serving_bench,
)
from .metrics import FrontTierMetrics, LatencyHistogram, ServerMetrics
from .pool import EnginePool, PoolClosed, consistent_ring
from .proxy import BackendDied, FrontTier
from .routing import HotShardTracker, Router
from .server import ReproServer, ServerThread
from .stream import ResponseStream, Subscription
from .supervisor import BackendSupervisor, serve_backend_command
from .top import render_frame, run_top
from .tracing import RequestTrace, Span, TraceContext, TraceStore
from .traceview import render_recent, render_waterfall, run_trace

__all__ = [
    "ReproServer",
    "ServerThread",
    "ServerClient",
    "EnginePool",
    "PoolClosed",
    "consistent_ring",
    "AdmissionController",
    "Dispatcher",
    "ResponseStream",
    "Subscription",
    "render_frame",
    "run_top",
    "RequestTrace",
    "Span",
    "TraceContext",
    "TraceStore",
    "render_recent",
    "render_waterfall",
    "run_trace",
    "ServerMetrics",
    "FrontTierMetrics",
    "LatencyHistogram",
    "FrontTier",
    "BackendDied",
    "BackendSupervisor",
    "serve_backend_command",
    "Router",
    "HotShardTracker",
    "SERVING_VERSION",
    "MixItem",
    "ZipfSampler",
    "build_mix",
    "make_request",
    "run_load",
    "run_serving_bench",
    "run_multiproc_bench",
    "write_serving_bench",
    "format_serving",
    "serving_path",
]
