"""The single-process serving tier: asyncio front end over the
sharded engine pool.

Wire format and transport guarantees (one request per line, responses
in request order per connection, bounded framing and pipelining,
graceful drain) live in :mod:`repro.server.lineserver`; this module
implements the *admission* half for the ``threads`` topology.

Everything that can go wrong with a payload yields a typed
:class:`~repro.api.protocol.ErrorResponse` *on the same connection*
(malformed JSON, wrong protocol version, unknown verb, oversized
request, overload shedding, analysis errors) -- the connection is never
silently dropped and a traceback never crosses the wire.

Admission (this module, on the event loop) is deliberately cheap:
decode, validate, route.  All heavy work happens on the sharded engine
pool behind the :class:`~repro.server.dispatch.Dispatcher` -- the same
inspector/executor separation the paper applies to loops, applied to
the service.

:class:`ServerThread` (re-exported from the transport module) hosts a
server on a background thread with its own event loop -- what the load
generator's self-hosted benchmark mode and the integration tests use.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Optional

from ..api import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    EngineConfig,
    ErrorResponse,
    StatsResponse,
    TraceResponse,
    request_from_json,
)
from .dispatch import AdmissionController, Dispatcher
from .lineserver import LineServer, ServerThread, ready
from .metrics import ServerMetrics
from .pool import EnginePool
from .stream import Subscription
from .tracing import RequestTrace, TraceContext, TraceStore

__all__ = ["ReproServer", "ServerThread"]


class ReproServer(LineServer):
    """One serving endpoint: listener + dispatcher + engine pool.

    With ``adaptive_admission=True`` the dispatcher's in-flight budget
    is driven by an AIMD :class:`AdmissionController` fed from the
    sampler task (which also fills the metrics ring that backs protocol
    v6 ``subscribe`` streams): sustained worker-queue saturation shrinks
    the budget so overload is shed at the door, drained queues grow it
    back.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        engine_config: Optional[EngineConfig] = None,
        queue_depth: int = 128,
        max_inflight: int = 256,
        sharding: str = "digest",
        max_request_bytes: int = MAX_REQUEST_BYTES,
        adaptive_admission: bool = False,
        sample_interval_s: float = 0.5,
        trace_sample: float = 0.0,
        trace_store: Optional[TraceStore] = None,
    ):
        super().__init__(host=host, port=port, max_request_bytes=max_request_bytes)
        if sample_interval_s <= 0:
            raise ValueError(
                f"sample_interval_s must be > 0 (got {sample_interval_s})"
            )
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1] (got {trace_sample})"
            )
        self.sample_interval_s = sample_interval_s
        #: head-sampling probability: a request arriving without a wire
        #: trace context (or with an unsampled one) is force-sampled at
        #: this rate, which turns on phase attribution and guaranteed
        #: retention for it
        self.trace_sample = trace_sample
        self.trace_store = trace_store if trace_store is not None else TraceStore()
        self._trace_rng = random.Random()
        self.metrics = ServerMetrics()
        self.pool = EnginePool(
            workers=workers,
            engine_config=engine_config,
            queue_depth=queue_depth,
            sharding=sharding,
            metrics=self.metrics,
        )
        controller = (
            AdmissionController(max_inflight) if adaptive_admission else None
        )
        self.dispatcher = Dispatcher(
            self.pool, metrics=self.metrics, max_inflight=max_inflight,
            controller=controller,
        )
        self._sampler_task: Optional[asyncio.Task] = None

    # -- lifecycle hooks -------------------------------------------------
    async def _on_start(self) -> None:
        self.pool.start()
        self._sampler_task = asyncio.ensure_future(self._sample_loop())

    async def _on_stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        # pool queues are empty by now (handlers awaited their futures);
        # drain=True also covers requests admitted but unawaited
        await asyncio.get_running_loop().run_in_executor(None, self.pool.stop)

    # -- sampling / control loop -----------------------------------------
    def _queue_depths(self) -> list:
        return [self.pool.queue_size(i) for i in range(self.pool.workers)]

    def _stream_sample(self) -> dict:
        """One metrics ring sample with this tier's gauges attached."""
        return self.metrics.sample(gauges={
            "max_inflight": self.dispatcher.max_inflight,
            "queue_depth": self._queue_depths(),
        })

    async def _sample_loop(self) -> None:
        """Fill the metrics ring and tick the admission control loop."""
        while True:
            await asyncio.sleep(self.sample_interval_s)
            sample = self._stream_sample()
            depths = sample["gauges"]["queue_depth"]
            self.dispatcher.adapt(
                sum(depths), self.pool.workers * self.pool.queue_depth
            )

    def _connection_opened(self) -> None:
        self.metrics.connection_opened()

    def _connection_closed(self) -> None:
        self.metrics.connection_closed()

    # -- admission -------------------------------------------------------
    def _admit(self, line, oversized, context):
        """Cheap per-request validation and routing; returns an
        awaitable resolving to a response document (or a frame stream
        for ``subscribe``)."""
        if oversized:
            self.metrics.error("too_large")
            return ready(ErrorResponse(
                "too_large",
                f"request exceeds {self.max_request_bytes} bytes",
            ))
        try:
            payload = json.loads(line)
        except ValueError:
            self.metrics.error("malformed")
            return ready(ErrorResponse("malformed", "request is not valid JSON"))
        if not isinstance(payload, dict):
            self.metrics.error("malformed")
            return ready(ErrorResponse(
                "malformed", "request must be a JSON object"))
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            self.metrics.error("unsupported_version")
            return ready(ErrorResponse(
                "unsupported_version",
                f"unsupported protocol version {version!r} "
                f"(this server speaks {PROTOCOL_VERSION})",
            ))
        kind = payload.get("kind")
        if kind == "stats":
            self.metrics.request_received("stats")
            stats = self.metrics.snapshot()
            # live admission + queue state ride along (extension keys;
            # the registry's own key set stays schema-stable)
            stats["admission"] = self.dispatcher.admission_snapshot()
            stats["queue_depths"] = self._queue_depths()
            stats["analysis_cache"] = self.pool.analysis_cache_counts()
            stats["trace_store"] = self.trace_store.snapshot()
            return ready(StatsResponse(stats=stats))
        if kind == "subscribe":
            self.metrics.request_received("subscribe")
            return self._subscribe(payload, context)
        if kind == "unsubscribe":
            self.metrics.request_received("unsubscribe")
            return self._unsubscribe(context)
        if kind == "trace":
            self.metrics.request_received("trace")
            try:
                request = request_from_json(payload)
            except Exception as exc:  # noqa: BLE001 -- typed response, never a drop
                self.metrics.error("bad_request")
                return ready(ErrorResponse(
                    "bad_request", str(exc.args[0] if exc.args else exc)))
            return ready(self._trace_response(request))
        if kind not in ("analyze", "execute"):
            self.metrics.error("unknown_verb")
            return ready(ErrorResponse(
                "unknown_verb", f"unknown request kind {kind!r}"))
        self.metrics.request_received(kind)
        try:
            request = request_from_json(payload)
        except Exception as exc:  # noqa: BLE001 -- any decode failure is the
            # request's fault, and the contract is a typed response, never
            # a dropped connection
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        trace = self._start_trace(kind, request)
        try:
            return asyncio.wrap_future(
                self.dispatcher.submit(request, trace=trace)
            )
        except Exception as exc:  # noqa: BLE001 -- the contract: never drop the connection
            self.metrics.error("internal")
            trace.finish(status="error", error_code="internal")
            return ready(ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}"))

    # -- tracing ---------------------------------------------------------
    def _start_trace(self, kind: str, request) -> RequestTrace:
        """Adopt the request's wire trace context (or mint a fresh one)
        and apply head sampling."""
        context = TraceContext.from_wire(getattr(request, "trace", None))
        trace = RequestTrace.adopt(
            context, store=self.trace_store, verb=kind, tier="threads",
        )
        if (not trace.sampled and self.trace_sample > 0.0
                and self._trace_rng.random() < self.trace_sample):
            trace.sampled = True
        return trace

    def _trace_response(self, request) -> TraceResponse:
        if request.trace_id:
            doc = self.trace_store.get(request.trace_id)
            traces = [doc] if doc is not None else []
        else:
            traces = self.trace_store.recent(
                limit=request.limit, status=request.status
            )
        return TraceResponse(traces=traces, store=self.trace_store.snapshot())

    # -- streaming -------------------------------------------------------
    def _subscribe(self, payload, context):
        """Start this connection's metrics stream (one live stream per
        connection; re-subscribing is fine once the previous finished)."""
        try:
            request = request_from_json(payload)
        except Exception as exc:  # noqa: BLE001 -- typed response, never a drop
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        active = context.subscription
        if active is not None and not active.finished:
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request",
                "a metrics stream is already active on this connection"))
        subscription = Subscription(
            self._stream_sample,
            "threads",
            interval_s=request.interval_s,
            frames=request.frames,
            history=request.history,
            recent_fn=self.metrics.recent_samples,
        )
        context.subscription = subscription
        return subscription

    def _unsubscribe(self, context):
        """Stop the connection's stream; the ack (with the exact frame
        count) resolves once the final frame is out, which keeps the
        in-order response contract: frames..., final frame, ack."""
        subscription = context.subscription
        if subscription is None:
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", "no metrics stream on this connection"))
        subscription.stop()
        return subscription.ack()
