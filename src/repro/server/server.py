"""The asyncio JSON-lines-over-TCP front end.

Wire format: one request document per line (compact single-line JSON,
:func:`repro.api.protocol.wire_json`), one response document per line.
Responses come back **in request order per connection** -- that is the
correlation contract -- while the server is free to work on many
requests from the same connection concurrently (pipelining): the
handler admits each line immediately and a per-connection writer
coroutine awaits the resulting futures in arrival order.

Everything that can go wrong with a payload yields a typed
:class:`~repro.api.protocol.ErrorResponse` *on the same connection*
(malformed JSON, wrong protocol version, unknown verb, oversized
request, overload shedding, analysis errors) -- the connection is never
silently dropped and a traceback never crosses the wire.

Admission (this module, on the event loop) is deliberately cheap:
decode, validate, route.  All heavy work happens on the sharded engine
pool behind the :class:`~repro.server.dispatch.Dispatcher` -- the same
inspector/executor separation the paper applies to loops, applied to
the service.

:class:`ServerThread` hosts a server on a background thread with its
own event loop -- what the load generator's self-hosted benchmark mode
and the integration tests use.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional

from ..api import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    EngineConfig,
    ErrorResponse,
    StatsResponse,
    request_from_json,
    wire_json,
)
from .dispatch import Dispatcher
from .metrics import ServerMetrics
from .pool import EnginePool

__all__ = ["ReproServer", "ServerThread"]

#: Upper bound on responses admitted-but-unwritten per connection.  A
#: client that pipelines without reading fills this queue, which stops
#: the server reading its connection -- TCP backpressure instead of
#: unbounded buffering.
_MAX_PIPELINED = 256

#: How long one response write may wait for the peer to read before the
#: connection is treated as broken and its remaining output dropped.
_DRAIN_TIMEOUT_S = 60.0


class _LineReader:
    """Bounded line framing over an asyncio stream.

    ``next()`` returns ``(line_bytes, None)`` for each complete line,
    ``(None, "too_large")`` once per oversized line (whose remaining
    bytes are then discarded up to its newline, resynchronizing the
    stream), and ``None`` at EOF.
    """

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int):
        self.reader = reader
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._discarding = False
        self._eof = False

    async def next(self):
        while True:
            line = self._take_line()
            if line is not None:
                return line
            if self._eof:
                if self._buffer and not self._discarding:
                    # lenient: serve a trailing unterminated line
                    tail = bytes(self._buffer)
                    self._buffer.clear()
                    return (tail, None)
                return None
            chunk = await self.reader.read(65536)
            if not chunk:
                self._eof = True
            else:
                self._buffer += chunk
                if self._discarding:
                    newline = self._buffer.find(b"\n")
                    if newline < 0:
                        self._buffer.clear()
                    else:
                        del self._buffer[: newline + 1]
                        self._discarding = False
                elif self._buffer.find(b"\n") < 0 and len(self._buffer) > self.max_bytes:
                    self._buffer.clear()
                    self._discarding = True
                    return (None, "too_large")

    def _take_line(self):
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[:newline])
        del self._buffer[: newline + 1]
        if len(line) > self.max_bytes:
            return (None, "too_large")
        return (line, None)


class ReproServer:
    """One serving endpoint: listener + dispatcher + engine pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        engine_config: Optional[EngineConfig] = None,
        queue_depth: int = 128,
        max_inflight: int = 256,
        sharding: str = "digest",
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port replaces it on start
        self.max_request_bytes = max_request_bytes
        self.metrics = ServerMetrics()
        self.pool = EnginePool(
            workers=workers,
            engine_config=engine_config,
            queue_depth=queue_depth,
            sharding=sharding,
            metrics=self.metrics,
        )
        self.dispatcher = Dispatcher(
            self.pool, metrics=self.metrics, max_inflight=max_inflight
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ReproServer":
        self._stop_event = asyncio.Event()
        self._stopped = asyncio.Event()
        self.pool.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except BaseException:
            # a failed bind (port in use, bad host) must not leak the
            # idle worker threads and their engines
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.stop
            )
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, stop reading, let every
        admitted request finish and its response flush, then stop the
        pool."""
        if self._stop_event is None or self._stop_event.is_set():
            return
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        # pool queues are empty by now (handlers awaited their futures);
        # drain=True also covers requests admitted but unawaited
        await asyncio.get_running_loop().run_in_executor(None, self.pool.stop)
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until a :meth:`stop` call (from a signal handler or
        another task) has *completed* the graceful shutdown."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    # -- connection handling --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.metrics.connection_opened()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        order: asyncio.Queue = asyncio.Queue(maxsize=_MAX_PIPELINED)
        writer_task = asyncio.create_task(self._write_responses(order, writer))
        liner = _LineReader(reader, self.max_request_bytes)
        stop_wait = asyncio.create_task(self._stop_event.wait())
        try:
            while not self._stop_event.is_set():
                next_line = asyncio.create_task(liner.next())
                done, _pending = await asyncio.wait(
                    {next_line, stop_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if next_line not in done:
                    next_line.cancel()
                    break
                try:
                    item = next_line.result()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if item is None:  # client closed its half
                    break
                line, oversized = item
                if line is not None and not line.strip():
                    continue  # blank keepalive line
                await order.put(self._admit(line, oversized))
        finally:
            stop_wait.cancel()
            try:
                # the writer keeps draining concurrently, so this
                # terminates even when the pipeline is full; a peer that
                # stopped reading is bounded by the drain timeout
                await order.put(None)
                await writer_task
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                self._conn_tasks.discard(task)
                self.metrics.connection_closed()

    async def _write_responses(self, order: asyncio.Queue, writer) -> None:
        """Await pipelined responses in arrival order and write them."""
        broken = False
        while True:
            pending = await order.get()
            if pending is None:
                return
            response = await pending
            if broken:
                continue  # keep consuming futures; peer is gone
            try:
                writer.write(wire_json(response.to_json()).encode() + b"\n")
                await asyncio.wait_for(writer.drain(), _DRAIN_TIMEOUT_S)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                broken = True

    # -- admission -------------------------------------------------------
    def _admit(self, line, oversized):
        """Cheap per-request validation and routing; returns an
        awaitable resolving to a response document."""
        if oversized:
            self.metrics.error("too_large")
            return _ready(ErrorResponse(
                "too_large",
                f"request exceeds {self.max_request_bytes} bytes",
            ))
        try:
            payload = json.loads(line)
        except ValueError:
            self.metrics.error("malformed")
            return _ready(ErrorResponse("malformed", "request is not valid JSON"))
        if not isinstance(payload, dict):
            self.metrics.error("malformed")
            return _ready(ErrorResponse(
                "malformed", "request must be a JSON object"))
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            self.metrics.error("unsupported_version")
            return _ready(ErrorResponse(
                "unsupported_version",
                f"unsupported protocol version {version!r} "
                f"(this server speaks {PROTOCOL_VERSION})",
            ))
        kind = payload.get("kind")
        if kind == "stats":
            self.metrics.request_received("stats")
            return _ready(StatsResponse(stats=self.metrics.snapshot()))
        if kind not in ("analyze", "execute"):
            self.metrics.error("unknown_verb")
            return _ready(ErrorResponse(
                "unknown_verb", f"unknown request kind {kind!r}"))
        self.metrics.request_received(kind)
        try:
            request = request_from_json(payload)
        except Exception as exc:  # noqa: BLE001 -- any decode failure is the
            # request's fault, and the contract is a typed response, never
            # a dropped connection
            self.metrics.error("bad_request")
            return _ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        try:
            return asyncio.wrap_future(self.dispatcher.submit(request))
        except Exception as exc:  # noqa: BLE001 -- the contract: never drop the connection
            self.metrics.error("internal")
            return _ready(ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}"))


def _ready(response):
    future = asyncio.get_running_loop().create_future()
    future.set_result(response)
    return future


class ServerThread:
    """Host a :class:`ReproServer` on a dedicated event-loop thread.

    ``start()`` blocks until the port is bound (so callers can connect
    immediately); ``stop()`` performs the graceful shutdown and joins
    the thread.  Used by the self-hosted load-generation benchmark and
    the integration tests; the CLI runs the server on the main thread
    instead.
    """

    def __init__(self, **server_kwargs):
        self.server = ReproServer(**server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._bound = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._bound.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> tuple:
        return (self.server.host, self.server.port)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._bound.set()
            self._loop.run_until_complete(self.server.serve_forever())
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.run_until_complete(self._loop.shutdown_default_executor())
        finally:
            asyncio.set_event_loop(None)
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=60)
        self._thread.join(timeout=60)
