"""The single-process serving tier: asyncio front end over the
sharded engine pool.

Wire format and transport guarantees (one request per line, responses
in request order per connection, bounded framing and pipelining,
graceful drain) live in :mod:`repro.server.lineserver`; this module
implements the *admission* half for the ``threads`` topology.

Everything that can go wrong with a payload yields a typed
:class:`~repro.api.protocol.ErrorResponse` *on the same connection*
(malformed JSON, wrong protocol version, unknown verb, oversized
request, overload shedding, analysis errors) -- the connection is never
silently dropped and a traceback never crosses the wire.

Admission (this module, on the event loop) is deliberately cheap:
decode, validate, route.  All heavy work happens on the sharded engine
pool behind the :class:`~repro.server.dispatch.Dispatcher` -- the same
inspector/executor separation the paper applies to loops, applied to
the service.

:class:`ServerThread` (re-exported from the transport module) hosts a
server on a background thread with its own event loop -- what the load
generator's self-hosted benchmark mode and the integration tests use.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..api import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    EngineConfig,
    ErrorResponse,
    StatsResponse,
    request_from_json,
)
from .dispatch import Dispatcher
from .lineserver import LineServer, ServerThread, ready
from .metrics import ServerMetrics
from .pool import EnginePool

__all__ = ["ReproServer", "ServerThread"]


class ReproServer(LineServer):
    """One serving endpoint: listener + dispatcher + engine pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        engine_config: Optional[EngineConfig] = None,
        queue_depth: int = 128,
        max_inflight: int = 256,
        sharding: str = "digest",
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ):
        super().__init__(host=host, port=port, max_request_bytes=max_request_bytes)
        self.metrics = ServerMetrics()
        self.pool = EnginePool(
            workers=workers,
            engine_config=engine_config,
            queue_depth=queue_depth,
            sharding=sharding,
            metrics=self.metrics,
        )
        self.dispatcher = Dispatcher(
            self.pool, metrics=self.metrics, max_inflight=max_inflight
        )

    # -- lifecycle hooks -------------------------------------------------
    async def _on_start(self) -> None:
        self.pool.start()

    async def _on_stop(self) -> None:
        # pool queues are empty by now (handlers awaited their futures);
        # drain=True also covers requests admitted but unawaited
        await asyncio.get_running_loop().run_in_executor(None, self.pool.stop)

    def _connection_opened(self) -> None:
        self.metrics.connection_opened()

    def _connection_closed(self) -> None:
        self.metrics.connection_closed()

    # -- admission -------------------------------------------------------
    def _admit(self, line, oversized):
        """Cheap per-request validation and routing; returns an
        awaitable resolving to a response document."""
        if oversized:
            self.metrics.error("too_large")
            return ready(ErrorResponse(
                "too_large",
                f"request exceeds {self.max_request_bytes} bytes",
            ))
        try:
            payload = json.loads(line)
        except ValueError:
            self.metrics.error("malformed")
            return ready(ErrorResponse("malformed", "request is not valid JSON"))
        if not isinstance(payload, dict):
            self.metrics.error("malformed")
            return ready(ErrorResponse(
                "malformed", "request must be a JSON object"))
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            self.metrics.error("unsupported_version")
            return ready(ErrorResponse(
                "unsupported_version",
                f"unsupported protocol version {version!r} "
                f"(this server speaks {PROTOCOL_VERSION})",
            ))
        kind = payload.get("kind")
        if kind == "stats":
            self.metrics.request_received("stats")
            return ready(StatsResponse(stats=self.metrics.snapshot()))
        if kind not in ("analyze", "execute"):
            self.metrics.error("unknown_verb")
            return ready(ErrorResponse(
                "unknown_verb", f"unknown request kind {kind!r}"))
        self.metrics.request_received(kind)
        try:
            request = request_from_json(payload)
        except Exception as exc:  # noqa: BLE001 -- any decode failure is the
            # request's fault, and the contract is a typed response, never
            # a dropped connection
            self.metrics.error("bad_request")
            return ready(ErrorResponse(
                "bad_request", str(exc.args[0] if exc.args else exc)))
        try:
            return asyncio.wrap_future(self.dispatcher.submit(request))
        except Exception as exc:  # noqa: BLE001 -- the contract: never drop the connection
            self.metrics.error("internal")
            return ready(ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}"))
