"""Backend process supervision for the multi-process serving tier.

The front tier does not *contain* engines -- it proxies to N
independent backend server processes (each a full ``repro-eval serve``
with its own interpreter, GIL, engine pool and caches).  This module
owns their lifecycle:

* **spawn**: each backend is launched from a command factory (the
  production factory runs ``python -m repro.evaluation serve --port 0``
  and parses the bound ephemeral port from the backend's own
  "listening on host:port" line -- no port-picking race);
* **crash detection + restart with exponential backoff**: a monitor
  thread per backend waits for the process to exit; an unexpected exit
  re-spawns it after ``backoff_base * 2^k`` seconds (capped), and the
  attempt counter resets once a backend has stayed up ``stable_s``
  seconds, so a one-off crash does not penalize the next month of
  uptime;
* **draining shutdown**: ``stop()`` signals every backend (SIGINT --
  the backend's own graceful drain), waits ``grace_s``, then escalates
  to SIGKILL; monitors are joined before return;
* **chaos hooks**: ``kill(index)`` SIGKILLs one backend -- what the
  chaos test and the CI kill-one-backend step use.

The supervisor is deliberately asyncio-free (plain threads + Popen) so
it can be driven from the front tier's event loop (via thread-safe
callbacks), from tests, and from the CLI identically.
"""

from __future__ import annotations

import os
import re
import selectors
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, List, Optional

__all__ = ["BackendStatus", "BackendSupervisor", "serve_backend_command"]

#: Pattern the production backend prints once its port is bound.
READY_PATTERN = re.compile(r"listening on ([0-9.]+):([0-9]+)")


def serve_backend_command(
    workers: int = 2,
    sharding: str = "digest",
    cache_dir: Optional[str] = None,
    use_disk_cache: bool = True,
    trace_sample: float = 0.0,
) -> Callable[[int], List[str]]:
    """The production command factory: one single-process
    ``repro-eval serve`` per backend, ephemeral port, inherited
    environment.

    ``trace_sample`` head-samples at the *backend* door; it is normally
    left at 0 because the front tier's own sampling decision propagates
    to the backends in the wire trace context.
    """
    def command(index: int) -> List[str]:
        argv = [
            sys.executable, "-m", "repro.evaluation", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(workers), "--sharding", sharding,
        ]
        if cache_dir is not None:
            argv += ["--cache-dir", cache_dir]
        if not use_disk_cache:
            argv.append("--no-cache")
        if trace_sample > 0.0:
            argv += ["--trace-sample", str(trace_sample)]
        return argv

    return command


class BackendStatus:
    """A point-in-time snapshot of one supervised backend."""

    __slots__ = ("index", "state", "host", "port", "pid", "restarts", "last_error")

    def __init__(self, index, state, host, port, pid, restarts, last_error):
        self.index = index
        self.state = state  # 'starting' | 'up' | 'backoff' | 'stopped'
        self.host = host
        self.port = port
        self.pid = pid
        self.restarts = restarts
        self.last_error = last_error

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "state": self.state,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "restarts": self.restarts,
            "last_error": self.last_error,
        }


class _Backend:
    """Mutable supervised state of one backend (guarded by the
    supervisor lock)."""

    def __init__(self, index: int):
        self.index = index
        self.state = "starting"
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.process: Optional[subprocess.Popen] = None
        self.restarts = 0
        self.last_error = ""
        self.thread: Optional[threading.Thread] = None


class BackendSupervisor:
    """Spawn, monitor, restart and drain N backend server processes."""

    def __init__(
        self,
        count: int,
        command: Callable[[int], List[str]],
        ready_pattern=READY_PATTERN,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        stable_s: float = 10.0,
        spawn_timeout_s: float = 60.0,
        on_up: Optional[Callable[[int, str, int], None]] = None,
        on_down: Optional[Callable[[int], None]] = None,
    ):
        if count < 1:
            raise ValueError(f"count must be >= 1 (got {count})")
        self.count = count
        self.command = command
        self.ready_pattern = ready_pattern
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stable_s = stable_s
        self.spawn_timeout_s = spawn_timeout_s
        self.on_up = on_up
        self.on_down = on_down
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._backends = [_Backend(i) for i in range(count)]
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "BackendSupervisor":
        with self._lock:
            if self._started:
                return self
            self._started = True
        for backend in self._backends:
            backend.thread = threading.Thread(
                target=self._monitor, args=(backend,),
                name=f"repro-backend-{backend.index}", daemon=True,
            )
            backend.thread.start()
        return self

    def stop(self, grace_s: float = 10.0) -> None:
        """Drain every backend: SIGINT (graceful), wait *grace_s*,
        SIGKILL stragglers, join the monitors."""
        self._stopping.set()
        with self._lock:
            procs = [b.process for b in self._backends if b.process is not None]
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGINT)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + grace_s
        for proc in procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                except (ProcessLookupError, OSError):
                    pass
                proc.wait()
        for backend in self._backends:
            if backend.thread is not None:
                backend.thread.join(timeout=grace_s + 10.0)

    def wait_up(self, timeout_s: float = 60.0, need: Optional[int] = None) -> bool:
        """Block until *need* backends (default: all) are up, or the
        timeout passes.  Returns whether the condition was met."""
        need = self.count if need is None else need
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if sum(1 for s in self.statuses() if s.state == "up") >= need:
                return True
            if self._stopping.is_set():
                return False
            time.sleep(0.02)
        return sum(1 for s in self.statuses() if s.state == "up") >= need

    # -- chaos / introspection ------------------------------------------
    def kill(self, index: int, sig: int = signal.SIGKILL) -> Optional[int]:
        """Send *sig* to one backend (chaos testing).  Returns the pid
        signalled, or ``None`` when the backend has no live process."""
        with self._lock:
            proc = self._backends[index].process
        if proc is None or proc.poll() is not None:
            return None
        try:
            os.kill(proc.pid, sig)
        except (ProcessLookupError, OSError):
            return None
        return proc.pid

    def statuses(self) -> List[BackendStatus]:
        with self._lock:
            return [
                BackendStatus(
                    b.index, b.state, b.host, b.port,
                    b.process.pid if b.process is not None else None,
                    b.restarts, b.last_error,
                )
                for b in self._backends
            ]

    def address(self, index: int) -> Optional[tuple]:
        with self._lock:
            backend = self._backends[index]
            if backend.state == "up" and backend.port is not None:
                return (backend.host, backend.port)
        return None

    # -- monitor loop ---------------------------------------------------
    def _monitor(self, backend: _Backend) -> None:
        attempt = 0
        while not self._stopping.is_set():
            try:
                process = subprocess.Popen(
                    self.command(backend.index),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                )
            except OSError as exc:
                with self._lock:
                    backend.state = "backoff"
                    backend.last_error = f"spawn failed: {exc}"
                attempt += 1
                self._sleep_backoff(attempt)
                continue
            with self._lock:
                backend.process = process
                backend.state = "starting"
                backend.host = backend.port = None
            up_at = None
            address = self._await_ready(process)
            if address is not None:
                with self._lock:
                    backend.host, backend.port = address
                    backend.state = "up"
                    backend.last_error = ""
                up_at = time.monotonic()
                if self.on_up is not None:
                    self.on_up(backend.index, address[0], address[1])
            # drain remaining output until the process exits (keeps the
            # pipe from filling; retains nothing -- backends do their
            # own logging)
            self._drain(process)
            returncode = process.wait()
            was_up = address is not None
            # a drained exit during shutdown is not a death
            if was_up and self.on_down is not None and not self._stopping.is_set():
                self.on_down(backend.index)
            if self._stopping.is_set():
                break
            with self._lock:
                backend.state = "backoff"
                backend.restarts += 1
                if not was_up:
                    backend.last_error = (
                        f"exited with code {returncode} before binding"
                    )
                else:
                    backend.last_error = f"exited with code {returncode}"
            # a backend that stayed up long enough earns a fresh backoff
            if up_at is not None and time.monotonic() - up_at >= self.stable_s:
                attempt = 0
            attempt += 1
            self._sleep_backoff(attempt)
        with self._lock:
            backend.state = "stopped"

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        self._stopping.wait(delay)

    def _await_ready(self, process: subprocess.Popen) -> Optional[tuple]:
        """Read the backend's stdout until the ready line appears
        (returning its (host, port)), the process exits, or the spawn
        timeout passes (then the hung backend is killed)."""
        deadline = time.monotonic() + self.spawn_timeout_s
        buffer = b""
        selector = selectors.DefaultSelector()
        selector.register(process.stdout, selectors.EVENT_READ)
        try:
            while time.monotonic() < deadline and not self._stopping.is_set():
                if not selector.select(timeout=0.1):
                    if process.poll() is not None:
                        return None
                    continue
                chunk = os.read(process.stdout.fileno(), 65536)
                if not chunk:  # EOF: process died before binding
                    return None
                buffer += chunk
                match = self.ready_pattern.search(buffer.decode(errors="replace"))
                if match:
                    return (match.group(1), int(match.group(2)))
        finally:
            selector.close()
        # hung before binding (or the supervisor is stopping): reap it
        if process.poll() is None:
            try:
                process.kill()
            except (ProcessLookupError, OSError):
                pass
        return None

    def _drain(self, process: subprocess.Popen) -> None:
        selector = selectors.DefaultSelector()
        try:
            selector.register(process.stdout, selectors.EVENT_READ)
        except (ValueError, OSError):
            return
        try:
            while True:
                if not selector.select(timeout=0.2):
                    if process.poll() is not None:
                        return
                    continue
                try:
                    chunk = os.read(process.stdout.fileno(), 65536)
                except OSError:
                    return
                if not chunk:
                    return
        finally:
            selector.close()
