"""Process-level request routing: the consistent-hash ring promoted
from thread shards to backend processes, plus hot-shard detection.

The single-process pool (:mod:`repro.server.pool`) already routes
source digests across worker *threads* on a consistent-hash ring; this
module promotes the same ring to route across backend *processes* for
the multi-process front tier, and adds the two things a fleet needs
that a thread pool does not:

* **liveness-aware routing** -- a backend that crashed (and is being
  restarted by the supervisor) drops out of the live set; its keys move
  to their next ring successor and *only* its keys move (the classic
  bounded-movement property, tested at process level in
  ``tests/unit/test_server_routing.py``);
* **hot-shard detection** -- per-digest request-rate counters over a
  sliding window identify "viral" programs whose traffic would
  otherwise pin one backend; the front tier fans those out to the
  digest's first R distinct ring successors (its *replica set*, a pure
  function of the digest, so every front-tier process agrees on it).
"""

from __future__ import annotations

import bisect
import time
from typing import Dict, FrozenSet, Iterator, List, Optional

from .pool import consistent_ring

__all__ = ["Router", "HotShardTracker"]


class Router:
    """Digest -> backend routing on a consistent-hash ring.

    The ring construction is shared with the thread-level pool
    (:func:`repro.server.pool.consistent_ring`), so a digest's process-
    level primary is as stable across runs and hosts as its thread-level
    shard: SHA-256 ring points, no RNG, no process state.
    """

    def __init__(self, backends: int, vnodes: int = 64):
        if backends < 1:
            raise ValueError(f"backends must be >= 1 (got {backends})")
        self.backends = backends
        self._ring = consistent_ring(backends, vnodes)
        self._points = [point for point, _ in self._ring]

    def successors(self, digest: str) -> Iterator[int]:
        """Distinct backends in ring order starting at *digest*'s
        primary.  Yields each backend exactly once."""
        point = int(digest[:16], 16)
        start = bisect.bisect_right(self._points, point)
        seen = set()
        for offset in range(len(self._ring)):
            index = (start + offset) % len(self._ring)
            backend = self._ring[index][1]
            if backend not in seen:
                seen.add(backend)
                yield backend
                if len(seen) == self.backends:
                    return

    def primary(self, digest: str) -> int:
        """The backend that owns *digest* when every backend is live."""
        return next(self.successors(digest))

    def replicas(self, digest: str, count: int) -> List[int]:
        """The digest's replica set: its first min(*count*, backends)
        distinct ring successors.  Deterministic -- a pure function of
        (digest, ring) -- so hot-shard fan-out is reproducible."""
        if count < 1:
            raise ValueError(f"count must be >= 1 (got {count})")
        result = []
        for backend in self.successors(digest):
            result.append(backend)
            if len(result) == count:
                break
        return result

    def route(self, digest: str, live: FrozenSet[int]) -> Optional[int]:
        """The first *live* backend on the digest's successor walk, or
        ``None`` when no backend is live.  When a backend dies, exactly
        the digests it owned move (to their next live successor);
        everything else keeps its assignment."""
        for backend in self.successors(digest):
            if backend in live:
                return backend
        return None


class HotShardTracker:
    """Sliding-window per-digest request rates for hot-shard detection.

    Two-bucket sliding window (the standard approximation): counts land
    in the current window bucket; the rate estimate blends the previous
    bucket proportionally to how much of the sliding window still
    overlaps it.  Memory is bounded by ``max_tracked`` digests per
    bucket -- once the current bucket is full, *new* digests are not
    tracked (a digest hot enough to matter appears long before the
    bound is hit, and an untracked digest simply stays on its primary).

    Deterministic under an injected ``clock`` -- what the unit tests
    use.
    """

    def __init__(
        self,
        window_s: float = 1.0,
        hot_rps: float = 32.0,
        max_tracked: int = 4096,
        clock=time.monotonic,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0 (got {window_s})")
        if hot_rps <= 0:
            raise ValueError(f"hot_rps must be > 0 (got {hot_rps})")
        self.window_s = window_s
        self.hot_rps = hot_rps
        self.max_tracked = max_tracked
        self._clock = clock
        self._window_start = clock()
        self._current: Dict[str, int] = {}
        self._previous: Dict[str, int] = {}

    def _rotate(self, now: float) -> None:
        elapsed = now - self._window_start
        if elapsed < self.window_s:
            return
        if elapsed < 2 * self.window_s:
            self._previous = self._current
        else:  # idle gap longer than a full window: nothing carries over
            self._previous = {}
        self._current = {}
        # snap the window start forward so rates stay aligned to real time
        windows = int(elapsed / self.window_s)
        self._window_start += windows * self.window_s

    def observe(self, digest: str, count: int = 1) -> None:
        """Record *count* request(s) for *digest* now."""
        now = self._clock()
        self._rotate(now)
        if digest in self._current or len(self._current) < self.max_tracked:
            self._current[digest] = self._current.get(digest, 0) + count

    def _previous_weight(self, now: float) -> float:
        """How much of the sliding window still overlaps the previous
        bucket (caller already rotated to *now*)."""
        into_window = (now - self._window_start) / self.window_s
        return max(0.0, 1.0 - into_window)

    def _blended_rate(self, digest: str, previous_weight: float) -> float:
        blended = (
            self._previous.get(digest, 0) * previous_weight
            + self._current.get(digest, 0)
        )
        return blended / self.window_s

    def rate(self, digest: str) -> float:
        """The digest's estimated requests/second over the sliding
        window ending now."""
        now = self._clock()
        self._rotate(now)
        return self._blended_rate(digest, self._previous_weight(now))

    def is_hot(self, digest: str) -> bool:
        return self.rate(digest) >= self.hot_rps

    def hot_digests(self) -> Dict[str, float]:
        """Every currently-hot digest with its estimated rate.

        One clock read and one rotation for the whole snapshot: every
        rate is computed from the same window state, so digests with
        equal counts report equal rates even when the call straddles a
        window boundary (re-reading the clock per digest could rotate
        mid-iteration and mix pre- and post-rotation rates).
        """
        now = self._clock()
        self._rotate(now)
        previous_weight = self._previous_weight(now)
        result = {}
        for digest in set(self._previous) | set(self._current):
            rate = self._blended_rate(digest, previous_weight)
            if rate >= self.hot_rps:
                result[digest] = rate
        return result

    def snapshot(self) -> dict:
        """JSON-safe summary for the front tier's stats document."""
        hot = self.hot_digests()
        return {
            "hot_digests": len(hot),
            "hot_rps_threshold": self.hot_rps,
            "max_rate": round(max(hot.values()), 3) if hot else 0.0,
            "tracked": len(self._current),
            "window_s": self.window_s,
        }
