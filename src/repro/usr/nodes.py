"""USR (uniform set representation) -- Section 2 of the paper.

A USR is a DAG whose leaves are sets of LMADs and whose interior nodes are
the operations that the LMAD abstraction cannot close over:

* irreducible set operations: union, intersection, subtraction;
* control flow: *gates* (``cond # S`` -- the summary exists only when the
  gate holds) and *call sites* (``S ./ callsite`` -- a barrier across
  which the summary could not be translated);
* *recurrences*: total (``U_{i=lo..hi} S_i``) and partial
  (``U_{k=lo..i-1} S_k``) loop unions that failed exact LMAD aggregation.

Every node evaluates to a concrete index set under a runtime environment;
this is the (expensive) exact evaluation that the predicate-language
translation of Section 3 exists to avoid.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..lmad import LMAD
from ..symbolic import BoolExpr, EvalEnv, Expr, ExprLike, as_expr
from ..symbolic.intern import Interner

__all__ = [
    "USR",
    "Leaf",
    "Union",
    "Intersect",
    "Subtract",
    "Gate",
    "CallSite",
    "Recurrence",
    "EMPTY",
    "intern_usr",
]

#: Interning table for USR nodes: (type name, structural key) -> node.
#: The smart constructors of :mod:`repro.usr.build` intern their results,
#: so summaries built independently for different arrays/loops share
#: structure and the estimate/factor memo tables key on cheap identities.
_USR_INTERN = Interner("usr.nodes", max_size=500_000)


def intern_usr(node: "USR") -> "USR":
    """Return the canonical instance of *node* (hash-consing)."""
    return _USR_INTERN.intern((type(node).__name__,) + node.key(), node)


class USR:
    """Base class of USR nodes.  Immutable and hashable (hash cached)."""

    __slots__ = ("_hash_cache",)

    def key(self) -> tuple:
        raise NotImplementedError

    def children(self) -> tuple["USR", ...]:
        raise NotImplementedError

    def evaluate(self, env: EvalEnv) -> set[int]:
        """The concrete index set denoted under *env* (exact, expensive)."""
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, Expr]) -> "USR":
        raise NotImplementedError

    def is_empty_leaf(self) -> bool:
        return isinstance(self, Leaf) and not self.lmads

    # -- size/complexity metrics used by cost estimation ------------------
    def node_count(self) -> int:
        return 1 + sum(c.node_count() for c in self.children())

    def loop_depth(self) -> int:
        """Maximum nesting of recurrence nodes (drives runtime complexity)."""
        inner = max((c.loop_depth() for c in self.children()), default=0)
        return inner + (1 if isinstance(self, Recurrence) else 0)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.key() == other.key()

    def __hash__(self) -> int:
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((type(self).__name__,) + self.key())
            self._hash_cache = cached
        return cached


class Leaf(USR):
    """A set of LMADs (the array-abstraction domain)."""

    __slots__ = ("lmads",)

    def __init__(self, lmads: Iterable[LMAD] = ()):
        self.lmads = tuple(dict.fromkeys(lmads))  # dedupe, keep order

    def key(self) -> tuple:
        return (frozenset(self.lmads),)

    def children(self) -> tuple[USR, ...]:
        return ()

    def evaluate(self, env: EvalEnv) -> set[int]:
        out: set[int] = set()
        for lmad in self.lmads:
            out |= lmad.enumerate(env)
        return out

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for lmad in self.lmads:
            out |= lmad.free_symbols()
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        return Leaf(lmad.substitute(mapping) for lmad in self.lmads)

    def __repr__(self) -> str:
        if not self.lmads:
            return "{}"
        return "{" + ", ".join(repr(x) for x in self.lmads) + "}"


EMPTY = Leaf(())


class _Nary(USR):
    """Shared implementation of union/intersection nodes."""

    __slots__ = ("args",)
    _symbol: str

    def __init__(self, args: Iterable[USR]):
        self.args = tuple(args)
        if len(self.args) < 2:
            raise ValueError(f"{type(self).__name__} needs >= 2 operands")

    def key(self) -> tuple:
        return (frozenset(self.args),)

    def children(self) -> tuple[USR, ...]:
        return self.args

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out

    def __repr__(self) -> str:
        return "(" + f" {self._symbol} ".join(repr(a) for a in self.args) + ")"


class Union(_Nary):
    """Irreducible set union."""

    __slots__ = ()
    _symbol = "U"

    def evaluate(self, env: EvalEnv) -> set[int]:
        out: set[int] = set()
        for a in self.args:
            out |= a.evaluate(env)
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        from .build import usr_union

        return usr_union(*(a.substitute(mapping) for a in self.args))


class Intersect(_Nary):
    """Irreducible set intersection."""

    __slots__ = ()
    _symbol = "^"

    def evaluate(self, env: EvalEnv) -> set[int]:
        out = self.args[0].evaluate(env)
        for a in self.args[1:]:
            if not out:
                break
            out &= a.evaluate(env)
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        from .build import usr_intersect

        return usr_intersect(*(a.substitute(mapping) for a in self.args))


class Subtract(USR):
    """Irreducible set subtraction ``left - right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: USR, right: USR):
        self.left = left
        self.right = right

    def key(self) -> tuple:
        return (self.left, self.right)

    def children(self) -> tuple[USR, ...]:
        return (self.left, self.right)

    def evaluate(self, env: EvalEnv) -> set[int]:
        return self.left.evaluate(env) - self.right.evaluate(env)

    def free_symbols(self) -> frozenset[str]:
        return self.left.free_symbols() | self.right.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        from .build import usr_subtract

        return usr_subtract(self.left.substitute(mapping), self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


class Gate(USR):
    """``cond # body``: the summary exists only when *cond* holds."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: BoolExpr, body: USR):
        self.cond = cond
        self.body = body

    def key(self) -> tuple:
        return (self.cond, self.body)

    def children(self) -> tuple[USR, ...]:
        return (self.body,)

    def evaluate(self, env: EvalEnv) -> set[int]:
        if self.cond.evaluate(env):
            return self.body.evaluate(env)
        return set()

    def free_symbols(self) -> frozenset[str]:
        return self.cond.free_symbols() | self.body.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        from .build import usr_gate

        return usr_gate(self.cond.substitute(mapping), self.body.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.cond!r} # {self.body!r})"


class CallSite(USR):
    """``body ./ callee``: a barrier marking an untranslatable call site.

    The body is already expressed in the caller's index space; the node
    exists to block reshaping/simplification across the call boundary, as
    in the paper's Fig. 5 (``S1 ./ CallSite`` translation rule).
    """

    __slots__ = ("callee", "body")

    def __init__(self, callee: str, body: USR):
        self.callee = callee
        self.body = body

    def key(self) -> tuple:
        return (self.callee, self.body)

    def children(self) -> tuple[USR, ...]:
        return (self.body,)

    def evaluate(self, env: EvalEnv) -> set[int]:
        return self.body.evaluate(env)

    def free_symbols(self) -> frozenset[str]:
        return self.body.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        return CallSite(self.callee, self.body.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.body!r} ./ {self.callee})"


class Recurrence(USR):
    """``U_{index=lower..upper} body``: a loop union that failed exact
    LMAD aggregation.

    ``partial=True`` marks the paper's dotted partial-recurrence nodes
    ``U_{k=1..i-1}`` whose upper bound references an enclosing loop index
    (used by the output-independence equation and the monotonicity rule).
    """

    __slots__ = ("index", "lower", "upper", "body", "partial")

    def __init__(
        self,
        index: str,
        lower: ExprLike,
        upper: ExprLike,
        body: USR,
        partial: bool = False,
    ):
        self.index = index
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.body = body
        self.partial = partial

    def key(self) -> tuple:
        return (self.index, self.lower, self.upper, self.body, self.partial)

    def children(self) -> tuple[USR, ...]:
        return (self.body,)

    def evaluate(self, env: EvalEnv) -> set[int]:
        lo = self.lower.evaluate(env)
        hi = self.upper.evaluate(env)
        out: set[int] = set()
        child_env = dict(env)
        for i in range(lo, hi + 1):
            child_env[self.index] = i
            out |= self.body.evaluate(child_env)
        return out

    def free_symbols(self) -> frozenset[str]:
        out = self.lower.free_symbols() | self.upper.free_symbols()
        out |= self.body.free_symbols() - {self.index}
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> USR:
        clean = {k: v for k, v in mapping.items() if k != self.index}
        from .build import usr_recurrence

        return usr_recurrence(
            self.index,
            self.lower.substitute(clean),
            self.upper.substitute(clean),
            self.body.substitute(clean),
            partial=self.partial,
        )

    def __repr__(self) -> str:
        mark = "u" if self.partial else "U"
        return (
            f"({mark}_{{{self.index}={self.lower!r}..{self.upper!r}}} {self.body!r})"
        )
