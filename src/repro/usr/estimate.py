"""Conditional LMAD-set over/under-estimates of USRs (Section 3.2).

When the factorization algorithm runs out of structural rules it flattens
the problem into the LMAD domain.  Summaries are approximated as pairs:

* an **overestimate** ``(P_C, [C])``: ``P_C`` is a predicate under which
  ``C`` is empty, and ``[C]`` a set of LMADs covering ``C``;
* an **underestimate** ``(P_D, [D])``: when ``P_D`` holds, every index in
  ``[D]`` belongs to ``D``.

The overestimate operator disregards the right operand of subtractions
and all but one operand of intersections on the way down, and translates
/ aggregates / unions LMAD leaves over call-site, recurrence and union
nodes on the way up -- exactly the recursive operator the paper
describes.  A ``None`` LMAD set means the estimate failed (e.g. a
recurrence that cannot be aggregated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..lmad import LMAD
from ..symbolic import FALSE, TRUE, BoolExpr, b_and, b_or, cmp_gt, sym
from ..symbolic.intern import Memo
from .nodes import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union, USR

__all__ = ["CondEstimate", "overestimate", "underestimate"]

_NO_MONOTONE: FrozenSet[str] = frozenset()

#: Memos for the conditional estimates.  The FACTOR rules re-estimate the
#: same (interned) sub-summaries once per inference rule that fires, and
#: the analyzer re-estimates whole-loop RW regions per array; results are
#: immutable ``CondEstimate`` pairs, so sharing them is free.
_OVER_MEMO = Memo("usr.overestimate", max_size=200_000)
_UNDER_MEMO = Memo("usr.underestimate", max_size=200_000)


@dataclass(frozen=True)
class CondEstimate:
    """A conditional LMAD-set estimate: ``pred`` + optional LMAD set."""

    pred: BoolExpr
    lmads: Optional[tuple[LMAD, ...]]

    @property
    def failed(self) -> bool:
        return self.lmads is None


def _leaf_empty_pred(leaf: Leaf) -> BoolExpr:
    """Each LMAD empty (some span negative) -> the leaf is empty."""
    preds = []
    for lmad in leaf.lmads:
        span_neg = [cmp_gt(0, s) for s in lmad.spans]
        preds.append(b_or(*span_neg) if span_neg else FALSE)
    return b_and(*preds) if preds else TRUE


def _aggregate_set(
    lmads: tuple[LMAD, ...], index: str, lower, upper
) -> Optional[tuple[LMAD, ...]]:
    out = []
    for lmad in lmads:
        agg = lmad.aggregated(index, lower, upper)
        if agg is None:
            return None
        out.append(agg)
    return tuple(out)


def overestimate(
    usr: USR, monotone: FrozenSet[str] = _NO_MONOTONE
) -> CondEstimate:
    """``(P_C, [C])``: emptiness predicate + LMAD overestimate of *usr*.

    *monotone* names opaque arrays known to be non-decreasing (CIV prefix
    arrays); recurrences whose per-iteration intervals have monotone
    endpoints are overestimated by their interval hull even when exact
    LMAD aggregation fails (the ``[Q+1, CIV@5]`` hull of Fig. 7(b)).
    Memoized on (node, monotone-fact set).
    """
    key = (usr, monotone)
    cached = _OVER_MEMO.get(key)
    if cached is not None:
        return cached
    return _OVER_MEMO.put(key, _overestimate(usr, monotone))


def _overestimate(usr: USR, monotone: FrozenSet[str]) -> CondEstimate:
    if isinstance(usr, Leaf):
        return CondEstimate(_leaf_empty_pred(usr), usr.lmads)
    if isinstance(usr, Gate):
        inner = overestimate(usr.body, monotone)
        from ..symbolic import b_not

        return CondEstimate(b_or(b_not(usr.cond), inner.pred), inner.lmads)
    if isinstance(usr, Union):
        parts = [overestimate(a, monotone) for a in usr.args]
        pred = b_and(*(p.pred for p in parts))
        if any(p.failed for p in parts):
            return CondEstimate(pred, None)
        lmads: tuple[LMAD, ...] = ()
        for p in parts:
            lmads += p.lmads  # type: ignore[operator]
        return CondEstimate(pred, lmads)
    if isinstance(usr, Subtract):
        # Disregard the subtrahend: left covers the difference, and an
        # empty left makes the difference empty.
        return overestimate(usr.left, monotone)
    if isinstance(usr, Intersect):
        # Any operand covers the intersection; any empty operand empties
        # it.  Prefer an operand whose estimate succeeds.
        parts = [overestimate(a, monotone) for a in usr.args]
        pred = b_or(*(p.pred for p in parts))
        for p in parts:
            if not p.failed:
                return CondEstimate(pred, p.lmads)
        return CondEstimate(pred, None)
    if isinstance(usr, CallSite):
        return overestimate(usr.body, monotone)
    if isinstance(usr, Recurrence):
        inner = overestimate(usr.body, monotone)
        empty = cmp_gt(usr.lower, usr.upper)
        if usr.index in inner.pred.free_symbols():
            pred: BoolExpr = empty
        else:
            pred = b_or(empty, inner.pred)
        if inner.failed:
            return CondEstimate(pred, None)
        agg = _aggregate_set(inner.lmads, usr.index, usr.lower, usr.upper)
        if agg is None and monotone:
            agg = _monotone_hull(
                inner.lmads, usr.index, usr.lower, usr.upper, monotone
            )
        return CondEstimate(pred, agg)
    raise TypeError(f"unknown USR node {usr!r}")


def underestimate(usr: USR) -> CondEstimate:
    """``(P_D, [D])``: validity predicate + LMAD underestimate of *usr*.

    Memoized on the (interned) node identity.
    """
    cached = _UNDER_MEMO.get(usr)
    if cached is not None:
        return cached
    return _UNDER_MEMO.put(usr, _underestimate(usr))


def _underestimate(usr: USR) -> CondEstimate:
    if isinstance(usr, Leaf):
        return CondEstimate(TRUE, usr.lmads)
    if isinstance(usr, Gate):
        inner = underestimate(usr.body)
        return CondEstimate(b_and(usr.cond, inner.pred), inner.lmads)
    if isinstance(usr, Union):
        parts = [underestimate(a) for a in usr.args]
        ok = [p for p in parts if not p.failed]
        if not ok:
            return CondEstimate(FALSE, None)
        # Any subset of the union's parts is a valid underestimate; take
        # every part whose own validity predicate can be conjoined.
        pred = b_and(*(p.pred for p in ok))
        lmads: tuple[LMAD, ...] = ()
        for p in ok:
            lmads += p.lmads  # type: ignore[operator]
        return CondEstimate(pred, lmads)
    if isinstance(usr, Subtract):
        # left - right >= left only when right is empty: require the
        # subtrahend's emptiness predicate.
        left = underestimate(usr.left)
        right_empty = overestimate(usr.right).pred
        if left.failed or right_empty.is_false():
            return CondEstimate(FALSE, None)
        return CondEstimate(b_and(left.pred, right_empty), left.lmads)
    if isinstance(usr, Intersect):
        return CondEstimate(FALSE, None)
    if isinstance(usr, CallSite):
        return underestimate(usr.body)
    if isinstance(usr, Recurrence):
        inner = underestimate(usr.body)
        if inner.failed or usr.index in inner.pred.free_symbols():
            return CondEstimate(FALSE, None)
        agg = _aggregate_set(inner.lmads, usr.index, usr.lower, usr.upper)
        if agg is None:
            return CondEstimate(FALSE, None)
        from ..symbolic import cmp_ge

        return CondEstimate(
            b_and(inner.pred, cmp_ge(usr.upper, usr.lower)), agg
        )
    raise TypeError(f"unknown USR node {usr!r}")


def _monotone_hull(
    lmads: tuple[LMAD, ...],
    index: str,
    lower,
    upper,
    monotone: FrozenSet[str],
) -> Optional[tuple[LMAD, ...]]:
    """Interval hull of per-iteration intervals with monotone endpoints.

    Each LMAD must be a 1D stride-1 interval ``[lo(i), hi(i)]`` whose
    endpoints are non-decreasing in the loop index given the monotone
    facts; the union over the loop is then covered by
    ``[lo(lower), hi(upper)]``.
    """
    from ..symbolic.monotone import provably_nonneg

    out = []
    for lmad in lmads:
        live = lmad.normalized()
        if live.ndims > 1 or (live.ndims == 1 and live.strides[0] != 1):
            return None
        lo, hi = live.interval_overestimate()
        shift = {index: sym(index) + 1}
        lo_step = lo.substitute(shift) - lo
        hi_step = hi.substitute(shift) - hi
        if provably_nonneg(lo_step, monotone) and provably_nonneg(hi_step, monotone):
            hull_lo = lo.substitute({index: lower})
            hull_hi = hi.substitute({index: upper})
        elif provably_nonneg(-lo_step, monotone) and provably_nonneg(
            -hi_step, monotone
        ):
            hull_lo = lo.substitute({index: upper})
            hull_hi = hi.substitute({index: lower})
        else:
            return None
        from .build import usr_leaf
        from ..lmad import interval

        out.append(interval(hull_lo, hull_hi))
    return tuple(out)
