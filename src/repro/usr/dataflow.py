"""Summary triples and the data-flow equations of Fig. 2.

Accesses of one array within a program region are summarized as three
abstract sets:

* **WF** (write-first): locations whose first access in the region is a
  write (privatizable),
* **RO** (read-only): locations only ever read,
* **RW** (read-write): locations read before written, or both.

``compose`` implements Fig. 2(a) -- sequencing two consecutive regions --
and ``aggregate_loop`` implements Fig. 2(b) -- folding per-iteration
summaries across a loop -- including the partial-recurrence prefixes that
the independence equations of Section 2.2 need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..symbolic import BoolExpr, Expr, ExprLike
from .build import EMPTY, usr_gate, usr_intersect, usr_recurrence, usr_subtract, usr_union
from .nodes import USR

__all__ = ["Summary", "compose", "merge_branches", "aggregate_loop"]


@dataclass(frozen=True)
class Summary:
    """Per-region (WF, RO, RW) summary of one array's accesses.

    ``exposed`` refines the classification for the reduction transform:
    locations whose *first* access in the region is a plain read.  RW
    conflates delta-merge-licensed update accesses with read-before-
    write locations; the latter carry a real flow dependence against any
    other iteration's write, so the EXT-RRED enabling equation needs
    them separately (``exposed`` is a subset of ``ro U rw``; an update's
    self-read is deliberately *not* exposed -- the delta merge licenses
    exactly that read).
    """

    wf: USR = EMPTY
    ro: USR = EMPTY
    rw: USR = EMPTY
    exposed: USR = EMPTY

    @staticmethod
    def read(usr: USR) -> "Summary":
        """Statement-level summary of a read access."""
        return Summary(wf=EMPTY, ro=usr, rw=EMPTY, exposed=usr)

    @staticmethod
    def write(usr: USR) -> "Summary":
        """Statement-level summary of a write access."""
        return Summary(wf=usr, ro=EMPTY, rw=EMPTY)

    @staticmethod
    def read_write(usr: USR) -> "Summary":
        """Statement-level summary of an update access (e.g. ``A(i)+=``)."""
        return Summary(wf=EMPTY, ro=EMPTY, rw=usr)

    def is_empty(self) -> bool:
        return (
            self.wf.is_empty_leaf()
            and self.ro.is_empty_leaf()
            and self.rw.is_empty_leaf()
        )

    def all_accessed(self) -> USR:
        """Union of every location the region touches."""
        return usr_union(self.wf, self.ro, self.rw)

    def writes(self) -> USR:
        """Union of locations the region may write (WF + RW)."""
        return usr_union(self.wf, self.rw)

    def gated(self, cond: BoolExpr) -> "Summary":
        return Summary(
            wf=usr_gate(cond, self.wf),
            ro=usr_gate(cond, self.ro),
            rw=usr_gate(cond, self.rw),
            exposed=usr_gate(cond, self.exposed),
        )

    def substitute(self, mapping: Mapping[str, Expr]) -> "Summary":
        return Summary(
            wf=self.wf.substitute(mapping),
            ro=self.ro.substitute(mapping),
            rw=self.rw.substitute(mapping),
            exposed=self.exposed.substitute(mapping),
        )


def compose(first: Summary, second: Summary) -> Summary:
    """Fig. 2(a): summary of region 1 followed by region 2.

    A location is write-first if region 1 writes it first, or region 2
    does and region 1 never read it first; read-only accesses survive only
    if the other region never writes them; everything else is read-write.
    """
    wf1, ro1, rw1 = first.wf, first.ro, first.rw
    wf2, ro2, rw2 = second.wf, second.ro, second.rw
    wf = usr_union(wf1, usr_subtract(wf2, usr_union(ro1, rw1)))
    ro = usr_union(
        usr_subtract(ro1, usr_union(wf2, rw2)),
        usr_subtract(ro2, usr_union(wf1, rw1)),
    )
    rw = usr_union(
        rw1,
        usr_subtract(rw2, wf1),
        usr_intersect(ro1, wf2),
    )
    # Delta-merge-unlicensed reads: region 1's stay exposed; region 2's
    # are covered only by region 1's *write-first* locations (a read
    # after a full write observes the same locally-computed value under
    # isolated and sequential execution).  Region 1's RW does NOT cover
    # them: a read after an update observes pre-loop + own delta under
    # the reduction transform but the running sum sequentially, so it
    # still carries a flow dependence against other iterations' updates.
    exposed = usr_union(
        first.exposed, usr_subtract(second.exposed, first.wf)
    )
    return Summary(wf=wf, ro=ro, rw=rw, exposed=exposed)


def merge_branches(cond: BoolExpr, then: Summary, other: Summary) -> Summary:
    """IF-statement merge: both sides gated by mutually exclusive gates.

    When both branches carry the *same* summary the gate cancels -- the
    related-work example of Section 7 (scalar assigned on both branches)
    -- which :func:`repro.usr.build.usr_union` realizes by deduplication
    after the UMEG-preserving constructors fire.
    """
    from ..symbolic import b_not

    neg = b_not(cond)
    return Summary(
        wf=_merge_gated(cond, then.wf, neg, other.wf),
        ro=_merge_gated(cond, then.ro, neg, other.ro),
        rw=_merge_gated(cond, then.rw, neg, other.rw),
        exposed=_merge_gated(cond, then.exposed, neg, other.exposed),
    )


def _merge_gated(cond: BoolExpr, a: USR, neg: BoolExpr, b: USR) -> USR:
    if a == b:
        return a  # identical on both mutually exclusive branches
    return usr_union(usr_gate(cond, a), usr_gate(neg, b))


@dataclass(frozen=True)
class LoopSummaries:
    """Everything :mod:`repro.core.independence` needs about one loop.

    ``per_iteration`` is the body summary as a function of the loop index;
    ``aggregate`` the whole-loop summary (Fig. 2(b)); ``prefix`` a summary
    of all iterations *before* the current one (partial recurrences), used
    by the output-independence equation.
    """

    index: str
    lower: Expr
    upper: Expr
    per_iteration: Summary
    aggregate: Summary
    prefix_writes: USR
    prefix_rw: USR


def aggregate_loop(
    index: str, lower: ExprLike, upper: ExprLike, body: Summary
) -> "LoopSummaries":
    """Fig. 2(b): aggregate per-iteration summaries across a loop.

    WF: locations written first by some iteration and not read earlier by
    any preceding iteration; RO: read-only in every iteration and never
    written; RW: the rest of the accessed locations.
    """
    from ..symbolic import as_expr, sym

    lower_e, upper_e = as_expr(lower), as_expr(upper)
    wf_i, ro_i, rw_i = body.wf, body.ro, body.rw

    prev = _fresh_prefix_index(index, body)
    body_prev = body.substitute({index: sym(prev)})
    # U_{k=lo..i-1} (RO_k u RW_k): earlier-iteration reads that demote WF.
    earlier_reads = usr_recurrence(
        prev,
        lower_e,
        sym(index) - 1,
        usr_union(body_prev.ro, body_prev.rw),
        partial=True,
    )
    wf = usr_recurrence(
        index, lower_e, upper_e, usr_subtract(wf_i, earlier_reads)
    )
    all_wf = usr_recurrence(index, lower_e, upper_e, wf_i)
    all_ro = usr_recurrence(index, lower_e, upper_e, ro_i)
    all_rw = usr_recurrence(index, lower_e, upper_e, rw_i)
    ro = usr_subtract(all_ro, usr_union(all_wf, all_rw))
    accessed = usr_union(all_ro, all_rw, all_wf)
    rw = usr_subtract(accessed, usr_union(wf, ro))
    prefix_writes = usr_recurrence(
        prev, lower_e, sym(index) - 1, body_prev.wf, partial=True
    )
    prefix_rw = usr_recurrence(
        prev, lower_e, sym(index) - 1, body_prev.rw, partial=True
    )
    # A read stays exposed at loop level unless an *earlier* iteration
    # write-first covered its location (same-iteration coverage was
    # already subtracted when the body summary was composed; earlier
    # updates do NOT cover -- see compose()).
    exposed = usr_recurrence(
        index, lower_e, upper_e, usr_subtract(body.exposed, prefix_writes)
    )
    return LoopSummaries(
        index=index,
        lower=lower_e,
        upper=upper_e,
        per_iteration=body,
        aggregate=Summary(wf=wf, ro=ro, rw=rw, exposed=exposed),
        prefix_writes=prefix_writes,
        prefix_rw=prefix_rw,
    )


def _fresh_prefix_index(index: str, body: Summary) -> str:
    """A fresh index name for partial recurrences (paper: dotted U with a
    fresh variable ranging to i-1)."""
    used = (
        body.wf.free_symbols() | body.ro.free_symbols() | body.rw.free_symbols()
    )
    candidate = index + "$p"
    while candidate in used:
        candidate += "p"
    return candidate
