"""USR reshaping transformations (Section 3.4).

Predicates are extracted by pattern matching the *shape* of a summary, so
semantically equal summaries can translate to predicates of different
accuracy.  Two shape-normalizing rewrites fix the important cases:

1. **Repeated subtraction regrouping**: ``(A - B) - C -> A - (B u C)``.
   Performed eagerly by :func:`repro.usr.build.usr_subtract`; the pass
   here re-establishes it after substitutions.
2. **UMEG preservation**: operations between unions of mutually exclusive
   gates distribute *inside* each gate, so each branch is compared
   against the matching branch instead of an opaque mixture.  This was
   the transformation that unlocked ZEUSMP and CALCULIX in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import profiling as _profiling
from ..symbolic import BoolExpr, Cmp, b_not
from ..symbolic.intern import Memo
from .build import usr_gate, usr_intersect, usr_subtract, usr_union
from .nodes import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union, USR

__all__ = ["mutually_exclusive", "reshape", "umeg_parts"]


def mutually_exclusive(c1: BoolExpr, c2: BoolExpr) -> bool:
    """Syntactic proof that two gate conditions cannot hold together.

    Recognizes negation pairs (``SYM.NE.1`` vs ``SYM.EQ.1``) and equality
    gates on the same expression with different constants.
    """
    if c1 == b_not(c2):
        return True
    if isinstance(c1, Cmp) and isinstance(c2, Cmp):
        if c1.op == "==" and c2.op == "==":
            diff = c1.expr - c2.expr
            if diff.is_constant() and diff.constant_value() != 0:
                return True
    return False


def _pairwise_exclusive(conds: Sequence[BoolExpr]) -> bool:
    for i, a in enumerate(conds):
        for b in conds[i + 1:]:
            if not mutually_exclusive(a, b):
                return False
    return True


def umeg_parts(usr: USR) -> Optional[list[tuple[BoolExpr, USR]]]:
    """Decompose a union-of-mutually-exclusive-gates, or return None.

    A single gate counts as a UMEG of one part; a bare union of gates
    qualifies when all gate conditions are pairwise exclusive.
    """
    if isinstance(usr, Gate):
        return [(usr.cond, usr.body)]
    if isinstance(usr, Union) and all(isinstance(a, Gate) for a in usr.args):
        parts = [(a.cond, a.body) for a in usr.args]  # type: ignore[union-attr]
        if _pairwise_exclusive([c for c, _ in parts]):
            return parts
    return None


def _compatible(
    x_parts: list[tuple[BoolExpr, USR]], y: USR
) -> Optional[list[tuple[BoolExpr, USR, USR]]]:
    """Match Y's content against X's gates.

    Returns ``(cond, x_body, y_body_under_cond)`` triples when every gated
    part of Y reuses one of X's conditions (compatible shapes); ungated
    parts of Y are live under every condition.  None when incompatible.
    """
    x_conds = [c for c, _ in x_parts]
    per_cond: dict[BoolExpr, list[USR]] = {c: [] for c in x_conds}
    common: list[USR] = []
    y_items = list(y.args) if isinstance(y, Union) else [y]
    for item in y_items:
        if isinstance(item, Gate):
            if item.cond in per_cond:
                per_cond[item.cond].append(item.body)
                continue
            if all(mutually_exclusive(item.cond, c) for c in x_conds):
                # Dead under every X gate: contributes nothing.
                continue
            return None
        common.append(item)
    out = []
    for cond, x_body in x_parts:
        y_under = usr_union(*per_cond[cond], *common) if (per_cond[cond] or common) else None
        from .build import EMPTY

        out.append((cond, x_body, y_under if y_under is not None else EMPTY))
    return out


def _reshape_subtract(node: Subtract) -> USR:
    left = reshape(node.left)
    right = reshape(node.right)
    x_parts = umeg_parts(left)
    if x_parts is not None and len(x_parts) >= 1:
        matched = _compatible(x_parts, right)
        if matched is not None:
            return usr_union(
                *(usr_gate(c, usr_subtract(xb, yb)) for c, xb, yb in matched)
            )
    return usr_subtract(left, right)


def _reshape_intersect(node: Intersect) -> USR:
    args = [reshape(a) for a in node.args]
    if len(args) == 2:
        for x, y in ((args[0], args[1]), (args[1], args[0])):
            x_parts = umeg_parts(x)
            if x_parts is not None:
                matched = _compatible(x_parts, y)
                if matched is not None:
                    from .build import EMPTY

                    pieces = []
                    for c, xb, yb in matched:
                        if yb.is_empty_leaf():
                            continue  # Ci # (Si ^ {}) = {}
                        pieces.append(usr_gate(c, usr_intersect(xb, yb)))
                    return usr_union(*pieces) if pieces else EMPTY
    return usr_intersect(*args)


#: Reshape is a pure function of one hash-consed node, and both the
#: Tier-0 screen and the Tier-1 factoring reshape the same equation
#: summaries, so memoizing globally halves the work on escalated loops.
_RESHAPE_MEMO = Memo("usr.reshape", max_size=200_000)


@_profiling.timed("usr.reshape")
def reshape(usr: USR) -> USR:
    """Bottom-up application of the Section 3.4 reshaping rules."""
    if isinstance(usr, Leaf):
        return usr
    cached = _RESHAPE_MEMO.get(usr)
    if cached is not None:
        return cached
    return _RESHAPE_MEMO.put(usr, _reshape_uncached(usr))


def _reshape_uncached(usr: USR) -> USR:
    if isinstance(usr, Subtract):
        return _reshape_subtract(usr)
    if isinstance(usr, Intersect):
        return _reshape_intersect(usr)
    if isinstance(usr, Union):
        return usr_union(*(reshape(a) for a in usr.args))
    if isinstance(usr, Gate):
        return usr_gate(usr.cond, reshape(usr.body))
    if isinstance(usr, CallSite):
        from .build import usr_call

        return usr_call(usr.callee, reshape(usr.body))
    if isinstance(usr, Recurrence):
        from .build import usr_recurrence

        return usr_recurrence(
            usr.index, usr.lower, usr.upper, reshape(usr.body), partial=usr.partial
        )
    raise TypeError(f"unknown USR node {usr!r}")
