"""Smart constructors for USR nodes.

These apply the cheap, always-valid algebraic simplifications during
summary construction (empty-set propagation, flattening, idempotence,
constant-gate folding, exact LMAD aggregation over loops), keeping the
DAGs small before the expensive inference of Section 3 runs.

Every constructed node is hash-consed (:func:`repro.usr.nodes.intern_usr`):
structurally equal summaries built for different arrays or loops are
pointer-equal, so the estimate/factor memo tables key on cheap
identities and DAG sharing survives across analysis runs.  See
``src/repro/usr/README.md`` for the node algebra itself.
"""

from __future__ import annotations

from ..lmad import LMAD
from ..symbolic import BoolExpr, ExprLike, as_expr
from .nodes import (
    EMPTY,
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Union,
    USR,
    intern_usr,
)

__all__ = [
    "usr_leaf",
    "usr_union",
    "usr_intersect",
    "usr_subtract",
    "usr_gate",
    "usr_call",
    "usr_recurrence",
    "EMPTY",
]


def usr_leaf(*lmads: LMAD) -> Leaf:
    """A leaf from LMADs, dropping provably empty descriptors."""
    return intern_usr(Leaf(x for x in lmads if not x.is_definitely_empty()))


def usr_union(*args: USR) -> USR:
    """Union with flattening, deduplication and empty elimination.

    Adjacent leaves merge into one leaf (a leaf already denotes a set of
    LMADs), which keeps summary growth linear during construction.
    """
    flat: list[USR] = []
    for a in args:
        if isinstance(a, Union):
            flat.extend(a.args)
        elif not a.is_empty_leaf():
            flat.append(a)
    leaves = [a for a in flat if isinstance(a, Leaf)]
    others: list[USR] = []
    seen: set[USR] = set()
    for a in flat:
        if isinstance(a, Leaf):
            continue
        if a not in seen:
            seen.add(a)
            others.append(a)
    merged: list[USR] = []
    if leaves:
        lmads: list[LMAD] = []
        for leaf in leaves:
            lmads.extend(leaf.lmads)
        merged.append(intern_usr(Leaf(lmads)))
    merged.extend(others)
    if not merged:
        return EMPTY
    if len(merged) == 1:
        return merged[0]
    return intern_usr(Union(merged))


def usr_intersect(*args: USR) -> USR:
    """Intersection with flattening, idempotence and empty propagation."""
    flat: list[USR] = []
    seen: set[USR] = set()
    for a in args:
        parts = a.args if isinstance(a, Intersect) else (a,)
        for p in parts:
            if p.is_empty_leaf():
                return EMPTY
            if p not in seen:
                seen.add(p)
                flat.append(p)
    if not flat:
        raise ValueError("intersection of no operands")
    if len(flat) == 1:
        return flat[0]
    return intern_usr(Intersect(flat))


def usr_subtract(left: USR, right: USR) -> USR:
    """Subtraction with the paper's repeated-subtraction regrouping.

    ``(A - B) - C`` is rebuilt as ``A - (B u C)`` (Section 3.4, first
    reshaping rule): keeping subtracted terms together lets later union
    simplification produce a larger, more easily compared subtrahend.
    """
    if left.is_empty_leaf() or right.is_empty_leaf():
        return left
    if left == right:
        return EMPTY
    if isinstance(left, Subtract):
        return intern_usr(Subtract(left.left, usr_union(left.right, right)))
    return intern_usr(Subtract(left, right))


def usr_gate(cond: BoolExpr, body: USR) -> USR:
    """Gate with constant folding and nested-gate fusion."""
    from ..symbolic import b_and

    if body.is_empty_leaf() or cond.is_false():
        return EMPTY
    if cond.is_true():
        return body
    if isinstance(body, Gate):
        return intern_usr(Gate(b_and(cond, body.cond), body.body))
    return intern_usr(Gate(cond, body))


def usr_call(callee: str, body: USR) -> USR:
    """Call-site barrier; empty bodies stay empty."""
    if body.is_empty_leaf():
        return EMPTY
    return intern_usr(CallSite(callee, body))


def usr_recurrence(
    index: str,
    lower: ExprLike,
    upper: ExprLike,
    body: USR,
    partial: bool = False,
) -> USR:
    """A loop union, attempting exact LMAD aggregation first.

    When the body is a leaf whose LMADs all aggregate exactly over the
    loop (affine base in the index, invariant geometry), the result stays
    in the leaf domain -- this is the Section 2.1 aggregation.  Otherwise
    an irreducible recurrence node is built.  Bodies that do not mention
    the index at all collapse to a single iteration guarded by loop entry.
    """
    lower, upper = as_expr(lower), as_expr(upper)
    if body.is_empty_leaf():
        return EMPTY
    if index not in body.free_symbols():
        from ..symbolic import cmp_ge

        return usr_gate(cmp_ge(upper, lower), body)
    if isinstance(body, Leaf):
        aggregated = []
        for lmad in body.lmads:
            agg = lmad.aggregated(index, lower, upper)
            if agg is None:
                break
            aggregated.append(agg)
        else:
            from ..symbolic import cmp_ge

            return usr_gate(cmp_ge(upper, lower), intern_usr(Leaf(aggregated)))
    if isinstance(body, Union):
        # Distribute the union over the recurrence: each part may still
        # aggregate exactly on its own.
        parts = [
            usr_recurrence(index, lower, upper, part, partial=partial)
            for part in body.args
        ]
        if any(not isinstance(p, Recurrence) for p in parts):
            return usr_union(*parts)
    return intern_usr(Recurrence(index, lower, upper, body, partial=partial))
