"""The USR (uniform set representation) language -- Section 2 of the paper.

Nodes and exact evaluation (:mod:`.nodes`), smart constructors
(:mod:`.build`), the Fig. 2 data-flow summary equations (:mod:`.dataflow`),
the Section 3.4 reshaping transformations (:mod:`.reshape`), conditional
LMAD estimates (:mod:`.estimate`) and BOUNDS-COMP (:mod:`.bounds`).
"""

from .bounds import BoundsResult, bounds_overestimate, estimate_bounds
from .build import (
    EMPTY,
    usr_call,
    usr_gate,
    usr_intersect,
    usr_leaf,
    usr_recurrence,
    usr_subtract,
    usr_union,
)
from .dataflow import LoopSummaries, Summary, aggregate_loop, compose, merge_branches
from .estimate import CondEstimate, overestimate, underestimate
from .nodes import (
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Union,
    USR,
    intern_usr,
)
from .reshape import mutually_exclusive, reshape, umeg_parts

__all__ = [
    "USR", "Leaf", "Union", "Intersect", "Subtract", "Gate", "CallSite",
    "Recurrence", "EMPTY", "intern_usr",
    "usr_leaf", "usr_union", "usr_intersect", "usr_subtract", "usr_gate",
    "usr_call", "usr_recurrence",
    "Summary", "LoopSummaries", "compose", "merge_branches", "aggregate_loop",
    "reshape", "umeg_parts", "mutually_exclusive",
    "CondEstimate", "overestimate", "underestimate",
    "BoundsResult", "bounds_overestimate", "estimate_bounds",
]
