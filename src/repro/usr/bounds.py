"""BOUNDS-COMP: lightweight runtime array-bounds estimation (Section 4).

For reductions over arrays whose bounds are unknown at compile time (e.g.
assumed-size Fortran parameters allocated in C, as in gromacs/calculix),
the paper computes at run time the smallest and largest index touched by
the loop.  The summary is first *overestimated* into a USR containing only
union, call-site and recurrence nodes (subtrahends and gate conditions
dropped); its bounds are then MIN/MAX-reduced across iterations -- a
parallel-friendly O(iterations) computation, far cheaper than exact USR
evaluation which is O(accesses).
"""

from __future__ import annotations

from typing import Optional

from ..symbolic import EvalEnv
from .build import usr_union
from .nodes import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union, USR

__all__ = ["bounds_overestimate", "estimate_bounds", "BoundsResult"]


def bounds_overestimate(usr: USR) -> USR:
    """Strip *usr* down to union/call-site/recurrence/leaf nodes.

    Drops subtrahends, keeps a single intersection operand, and discards
    gate conditions -- every transformation only grows the denoted set, so
    bounds of the result bound the original.
    """
    if isinstance(usr, Leaf):
        return usr
    if isinstance(usr, Gate):
        return bounds_overestimate(usr.body)
    if isinstance(usr, Subtract):
        return bounds_overestimate(usr.left)
    if isinstance(usr, Intersect):
        return bounds_overestimate(usr.args[0])
    if isinstance(usr, Union):
        return usr_union(*(bounds_overestimate(a) for a in usr.args))
    if isinstance(usr, CallSite):
        from .build import usr_call

        return usr_call(usr.callee, bounds_overestimate(usr.body))
    if isinstance(usr, Recurrence):
        from .build import usr_recurrence

        return usr_recurrence(
            usr.index,
            usr.lower,
            usr.upper,
            bounds_overestimate(usr.body),
            partial=usr.partial,
        )
    raise TypeError(f"unknown USR node {usr!r}")


class BoundsResult:
    """Outcome of a BOUNDS-COMP evaluation.

    ``lower``/``upper`` bound every index the overestimated summary may
    touch (``None`` for an empty summary); ``iterations`` counts the
    recurrence steps executed, which models the run-time overhead of the
    MIN/MAX reduction loop of Fig. 7(a).
    """

    __slots__ = ("lower", "upper", "iterations")

    def __init__(self, lower: Optional[int], upper: Optional[int], iterations: int):
        self.lower = lower
        self.upper = upper
        self.iterations = iterations

    def is_empty(self) -> bool:
        return self.lower is None

    def merge(self, other: "BoundsResult") -> "BoundsResult":
        iters = self.iterations + other.iterations
        if self.is_empty():
            return BoundsResult(other.lower, other.upper, iters)
        if other.is_empty():
            return BoundsResult(self.lower, self.upper, iters)
        return BoundsResult(
            min(self.lower, other.lower), max(self.upper, other.upper), iters
        )

    def __repr__(self) -> str:
        return f"BoundsResult([{self.lower}, {self.upper}], iters={self.iterations})"


def _leaf_bounds(leaf: Leaf, env: EvalEnv) -> BoundsResult:
    lower: Optional[int] = None
    upper: Optional[int] = None
    for lmad in leaf.lmads:
        base = lmad.base.evaluate(env)
        extent = 0
        empty = False
        for stride, span in zip(lmad.strides, lmad.spans):
            s = span.evaluate(env)
            if s < 0:
                empty = True
                break
            d = stride.evaluate(env)
            # A negative stride walks downward from the base.
            extent += s if d >= 0 else 0
            if d < 0:
                base -= abs(s)
        if empty:
            continue
        lo, hi = base, base + extent
        lower = lo if lower is None else min(lower, lo)
        upper = hi if upper is None else max(upper, hi)
    return BoundsResult(lower, upper, 0)


def estimate_bounds(usr: USR, env: EvalEnv) -> BoundsResult:
    """Evaluate min/max index bounds of the *overestimated* summary.

    Accepts any USR: non-conforming nodes are overestimated on the fly.
    Recurrences iterate and MIN/MAX-reduce, counting iterations as the
    modelled runtime cost.
    """
    if isinstance(usr, Leaf):
        return _leaf_bounds(usr, env)
    if isinstance(usr, (Gate, Subtract, Intersect)):
        return estimate_bounds(bounds_overestimate(usr), env)
    if isinstance(usr, Union):
        out = BoundsResult(None, None, 0)
        for a in usr.args:
            out = out.merge(estimate_bounds(a, env))
        return out
    if isinstance(usr, CallSite):
        return estimate_bounds(usr.body, env)
    if isinstance(usr, Recurrence):
        lo = usr.lower.evaluate(env)
        hi = usr.upper.evaluate(env)
        out = BoundsResult(None, None, 0)
        child_env = dict(env)
        for i in range(lo, hi + 1):
            child_env[usr.index] = i
            step = estimate_bounds(usr.body, child_env)
            out = out.merge(step)
            out = BoundsResult(out.lower, out.upper, out.iterations + 1)
        return out
    raise TypeError(f"unknown USR node {usr!r}")
