"""Benchmark-model infrastructure.

Each of the paper's 26 benchmarks is modelled by a :class:`BenchmarkSpec`:
an IR program whose labelled loops exhibit the *access-pattern classes*
the corresponding Fortran loops exhibit (quadratic indexing, index
arrays, CIVs, UMEG gates, assumed-size reductions, ...), plus the
metadata of Tables 1-3 (sequential coverage, per-loop coverage and
granularity, the paper's classification and techniques) and the paper's
headline numbers from Figures 10-13 for shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ir.ast import Program

__all__ = ["LoopSpec", "BenchmarkSpec", "Dataset"]

#: (params, arrays) inputs for a program run.
Dataset = tuple[dict, dict]


@dataclass(frozen=True)
class LoopSpec:
    """Metadata of one measured loop (a row of Tables 1-3)."""

    label: str
    #: fraction of the benchmark's sequential time spent in this loop (LSC)
    lsc: float
    #: granularity: milliseconds per loop invocation (the GR column)
    gr_ms: float
    #: the paper's classification string for this loop, normalized to our
    #: vocabulary: 'STATIC-PAR', 'STATIC-SEQ', 'FI O(1)', 'OI O(N)',
    #: 'F/OI O(1)', 'TLS', 'HOIST-USR', 'CIV-COMP', 'BOUNDS-COMP'
    paper_class: str
    #: does the paper's system run this loop in parallel?
    paper_parallel: bool = True


@dataclass
class BenchmarkSpec:
    """One benchmark model: program + Tables 1-3 metadata."""

    name: str
    suite: str  # 'perfect' | 'spec92' | 'spec2000'
    #: sequential coverage of the measured loops (SC column, fraction)
    sc: float
    #: coverage of loops that need runtime tests (SCrt, fraction)
    scrt: float
    #: the paper's runtime-overhead figure (RTov, fraction of parallel time)
    rtov_paper: float
    source: str
    loops: list[LoopSpec]
    #: techniques listed in the table for this benchmark
    techniques_paper: list[str]
    dataset: Callable[[int], Dataset] = field(repr=False, default=None)  # type: ignore[assignment]
    #: paper's normalized parallel time (Figures 10-12; sequential = 1)
    paper_norm_time: Optional[float] = None
    #: paper's 16-processor speedup (Figure 13, SPEC2000/2006 only)
    paper_speedup16: Optional[float] = None
    _program: Optional[Program] = field(default=None, repr=False)

    @property
    def program(self) -> Program:
        """The parsed program, compiled through the default engine so
        every consumer of this spec shares one handle (and its memoized
        summaries and plans)."""
        if self._program is None:
            from ..api import default_engine

            self._program = default_engine().compile(self.source).program
        return self._program

    def loop(self, label: str) -> LoopSpec:
        for spec in self.loops:
            if spec.label == label:
                return spec
        raise KeyError(f"{self.name}: no loop {label!r}")

    def measured_coverage(self) -> float:
        return sum(spec.lsc for spec in self.loops)
