"""SPEC89/SPEC92 benchmark models (Table 2 of the paper)."""

from __future__ import annotations

from .base import BenchmarkSpec, Dataset, LoopSpec

__all__ = ["SPEC92"]


def _matrix300() -> BenchmarkSpec:
    source = """
program matrix300
param N, LDA, LDB, LDC
array A(8192), B(8192), C(16384)

main
  do i = 1, N @ sgemm_do160
    do j = 1, 8
      C[(i-1)*8 + j] = A[(i-1)*8 + j] * B[j]
    end
  end
  do i = 1, N @ sgemm_do120
    do j = 1, 8
      C[8192 + (i-1)*8 + j] = A[(i-1)*8 + j] + B[j]
    end
  end
  do i = 1, N @ sgemm_do20
    C[LDA + i] = A[i] * 2
    C[LDB + i] = A[i] * 3
  end
  do i = 1, N @ sgemm_do60
    C[LDA + 2*i] = B[i] + 1
    C[LDC + 2*i] = B[i] + 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 40 * scale
        return (
            # LDC differs from LDA in parity: the interleaved-access
            # (gcd) O(1) predicate disambiguates sgemm_do60.
            {"N": n, "LDA": 0, "LDB": 8192, "LDC": 1},
            {"A": [i % 5 for i in range(1, 8193)],
             "B": [i % 7 for i in range(1, 8193)]},
        )

    return BenchmarkSpec(
        name="matrix300",
        suite="spec92",
        sc=1.0,
        scrt=0.26,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("sgemm_do160", 0.302, 160.0, "STATIC-PAR"),
            LoopSpec("sgemm_do120", 0.300, 159.0, "STATIC-PAR"),
            LoopSpec("sgemm_do20", 0.128, 34.0, "OI O(1)"),
            LoopSpec("sgemm_do60", 0.128, 34.0, "OI O(1)"),
        ],
        techniques_paper=["PRIV", "RRED"],
        dataset=dataset,
        paper_norm_time=0.28,
    )


def _swm256() -> BenchmarkSpec:
    source = """
program swm256
param N
array U(8448), V(8448), P(8448), UNEW(8448), VNEW(8448), PNEW(8448)

main
  do i = 1, N @ calc1_do100
    UNEW[i] = U[i] + P[i+1] - P[i]
  end
  do i = 1, N @ calc2_do200
    VNEW[i] = V[i] - P[i+1] + P[i]
  end
  do i = 1, N @ calc3_do300
    PNEW[i] = P[i] + UNEW[i] - VNEW[i]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n},
            {"U": [i % 4 for i in range(1, 8449)],
             "V": [i % 6 for i in range(1, 8449)],
             "P": [i % 9 for i in range(1, 8449)]},
        )

    return BenchmarkSpec(
        name="swm256",
        suite="spec92",
        sc=0.99,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("calc2_do200", 0.406, 0.7, "STATIC-PAR"),
            LoopSpec("calc3_do300", 0.297, 0.5, "STATIC-PAR"),
            LoopSpec("calc1_do100", 0.278, 0.5, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SRED"],
        dataset=dataset,
        paper_norm_time=0.22,
    )


def _ora() -> BenchmarkSpec:
    source = """
program ora
param N
array RAYS(8192), IMG(8192), T(64)

main
  do i = 1, N @ main_do9999
    do j = 1, 8
      T[j] = RAYS[(i-1)*8 + j] * j
    end
    do j = 1, 8
      IMG[(i-1)*8 + j] = T[j] + T[1]
    end
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 48 * scale
        return ({"N": n}, {"RAYS": [i % 11 for i in range(1, 8193)]})

    return BenchmarkSpec(
        name="ora",
        suite="spec92",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[LoopSpec("main_do9999", 0.999, 999.0, "STATIC-PAR")],
        techniques_paper=["PRIV", "SLV", "SRED"],
        dataset=dataset,
        paper_norm_time=0.25,
    )


def _nasa7() -> BenchmarkSpec:
    source = """
program nasa7
param N, LDW, LDR
array PSI(16384), NWALL(4096), WORK(16384), EM(16384)

subroutine fill(W[], base, i)
  W[base + i] = i * 2
end

main
  do i = 1, N @ gmttst_do120
    call fill(EM[], LDW, i)
    EM[LDR + i] = EM[LDW + i] + 1
  end
  civ = 0
  do i = 1, N @ emit_do5
    do j = 1, NWALL[i]
      PSI[civ + j] = i + j
    end
    civ = civ + NWALL[i]
  end
  do i = 1, N @ btrtst_do120
    EM[8192 + i] = EM[i] * 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 10 * scale
        nwall = [3] * 4096
        return (
            {"N": n, "LDW": 0, "LDR": 8192},
            {"NWALL": nwall},
        )

    return BenchmarkSpec(
        name="nasa7",
        suite="spec92",
        sc=0.90,
        scrt=0.436,
        rtov_paper=0.0003,
        source=source,
        loops=[
            LoopSpec("gmttst_do120", 0.211, 980.0, "FI O(1)"),
            LoopSpec("emit_do5", 0.132, 61.0, "SLV O(N)"),
            LoopSpec("btrtst_do120", 0.094, 436.0, "FI O(1)"),
        ],
        techniques_paper=["PRIV", "SLV", "SRED", "CIVagg", "CIV-COMP"],
        dataset=dataset,
        paper_norm_time=0.40,
    )


def _tomcatv() -> BenchmarkSpec:
    source = """
program tomcatv
param N
array X(8448), Y(8448), RX(8448), RY(8448)

main
  do i = 1, N @ main_do60
    RX[i] = X[i+1] - X[i]
    RY[i] = Y[i+1] - Y[i]
  end
  do i = 1, N @ main_do100
    X[i] = X[i] + RX[i]
  end
  do i = 1, N @ main_do120
    Y[i] = Y[i] + RY[i]
  end
  do i = 1, N @ main_do80
    RX[i] = RX[i] * 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n},
            {"X": [i % 13 for i in range(1, 8449)],
             "Y": [i % 5 for i in range(1, 8449)]},
        )

    return BenchmarkSpec(
        name="tomcatv",
        suite="spec92",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("main_do60", 0.378, 7.0, "STATIC-PAR"),
            LoopSpec("main_do100", 0.266, 0.01, "STATIC-PAR"),
            LoopSpec("main_do120", 0.109, 0.01, "STATIC-PAR"),
            LoopSpec("main_do80", 0.108, 2.0, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SLV", "SRED"],
        dataset=dataset,
        paper_norm_time=0.99,
    )


def _mdljdp2() -> BenchmarkSpec:
    source = """
program mdljdp2
param N
array XF(8192), VF(8192), EK(64)

main
  do i = 1, N @ frcuse_do20
    XF[i] = VF[i] * 2 + VF[i+1]
  end
  do i = 1, N @ postfr_do20
    VF[i] = VF[i] + XF[i]
  end
  do i = 1, N @ prefor_do60
    XF[i] = XF[i] * 3
  end
  do i = 1, N @ postfr_do60
    EK[1] = EK[1] + VF[i]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 56 * scale
        return ({"N": n}, {"VF": [i % 7 for i in range(1, 8193)]})

    return BenchmarkSpec(
        name="mdljdp2",
        suite="spec92",
        sc=0.87,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("frcuse_do20", 0.824, 0.9, "STATIC-PAR"),
            LoopSpec("postfr_do20", 0.016, 0.02, "STATIC-PAR"),
            LoopSpec("prefor_do60", 0.015, 0.02, "STATIC-PAR"),
            LoopSpec("postfr_do60", 0.011, 0.01, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SRED", "RRED"],
        dataset=dataset,
        paper_norm_time=0.69,
    )


def _hydro2d() -> BenchmarkSpec:
    source = """
program hydro2d
param N
array RO(8448), EN(8448), ZA(8448)

main
  do i = 1, N @ tistep_do400
    ZA[i] = RO[i] + EN[i]
  end
  do i = 1, N @ filter_do300
    RO[i] = ZA[i] * 2 - ZA[i+1]
  end
  do i = 1, N @ t1_do10
    EN[i] = ZA[i] + RO[i]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n},
            {"RO": [i % 3 for i in range(1, 8449)],
             "EN": [i % 8 for i in range(1, 8449)]},
        )

    return BenchmarkSpec(
        name="hydro2d",
        suite="spec92",
        sc=0.92,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("tistep_do400", 0.176, 1.2, "STATIC-PAR"),
            LoopSpec("filter_do300", 0.142, 0.1, "STATIC-PAR"),
            LoopSpec("t1_do10", 0.075, 0.07, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV"],
        dataset=dataset,
        paper_norm_time=0.62,
    )


SPEC92: list[BenchmarkSpec] = [
    _matrix300(),
    _swm256(),
    _ora(),
    _nasa7(),
    _tomcatv(),
    _mdljdp2(),
    _hydro2d(),
]
