"""SPEC2000/SPEC2006 benchmark models (Table 3 of the paper)."""

from __future__ import annotations

from .base import BenchmarkSpec, Dataset, LoopSpec

__all__ = ["SPEC2000"]


def _wupwise() -> BenchmarkSpec:
    source = """
program wupwise
param N, OFFE, OFFO, LDU
array U(16384), RESULT(16384)

subroutine zgemm(R[], U[], OFF, N)
  do j = 1, 4
    R[OFF + j] = U[OFF + j] * 2 + j
  end
end

main
  do i = 1, N @ muldeo_do100
    call zgemm(RESULT[], U[], OFFE + (i-1)*LDU, N)
  end
  do i = 1, N @ muldeo_do200
    call zgemm(RESULT[], U[], OFFO + (i-1)*LDU, N)
  end
  do i = 1, N @ muldoe_do100
    RESULT[OFFE + (i-1)*LDU + 5] = U[OFFE + (i-1)*LDU + 5] + 1
  end
  do i = 1, N @ muldoe_do200
    RESULT[OFFO + (i-1)*LDU + 5] = U[OFFO + (i-1)*LDU + 5] + 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 32 * scale
        return (
            {"N": n, "OFFE": 0, "OFFO": 8192, "LDU": 8},
            {"U": [i % 9 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="wupwise",
        suite="spec2000",
        sc=0.93,
        scrt=0.93,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("muldeo_do100", 0.206, 206.0, "F/OI O(1)"),
            LoopSpec("muldeo_do200", 0.258, 258.0, "F/OI O(1)"),
            LoopSpec("muldoe_do100", 0.207, 207.0, "F/OI O(1)"),
            LoopSpec("muldoe_do200", 0.259, 259.0, "F/OI O(1)"),
        ],
        techniques_paper=["PRIV", "RRED", "SLV"],
        dataset=dataset,
        paper_norm_time=0.20,
        paper_speedup16=5.83,
    )


def _apsi() -> BenchmarkSpec:
    source = """
program apsi
param N, NZ
array T(16384), H(16384), IDZ(4096), W(16384)

main
  do i = 1, N @ run_do20
    do j = 1, 4
      T[IDZ[i] + j] = H[8192 + IDZ[i] + j] + j
    end
  end
  do i = 1, N @ wcont_do40
    W[i] = T[i] * 2
  end
  do i = 1, N @ dvdtz_do40
    do j = 1, 4
      W[8192 + (i-1)*4 + j] = T[(i-1)*4 + j] + H[j]
    end
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 24 * scale
        # Scrambled but collision-free: the monotonicity predicate fails
        # at runtime, leaving the hoisted exact USR evaluation (the
        # paper's HOIST-USR classification for RUN_DO20).
        idz = [4 * ((i * 19) % 4096) for i in range(1, 4097)]
        return (
            {"N": n, "NZ": 16},
            {"IDZ": idz, "H": [i % 6 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="apsi",
        suite="spec2000",
        sc=0.99,
        scrt=0.28,
        rtov_paper=0.002,
        source=source,
        loops=[
            LoopSpec("run_do20", 0.176, 176.0, "FI HOIST-USR"),
            LoopSpec("wcont_do40", 0.110, 330.0, "STATIC-PAR"),
            LoopSpec("dvdtz_do40", 0.103, 314.0, "STATIC-PAR"),
        ],
        techniques_paper=["HOIST-USR", "PRIV", "SRED", "SLV"],
        dataset=dataset,
        paper_norm_time=0.13,
        paper_speedup16=12.64,
    )


def _applu() -> BenchmarkSpec:
    source = """
program applu
param N
array V(8448), D(8448), JAC(8448)

main
  t = 0
  do i = 1, N @ blts_do10
    t = t * 2 + V[i]
    D[i] = t
  end
  u = 0
  do i = 1, N @ buts_do1
    u = u * 3 + D[i]
    V[i] = u
  end
  do i = 1, N @ jacld_do1
    JAC[i] = V[i] + D[i]
  end
  do i = 1, N @ jacu_do1
    JAC[i] = JAC[i] * 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return ({"N": n}, {"V": [i % 5 for i in range(1, 8449)]})

    return BenchmarkSpec(
        name="applu",
        suite="spec2000",
        sc=0.98,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("blts_do10", 0.284, 119.0, "STATIC-SEQ", paper_parallel=False),
            LoopSpec("buts_do1", 0.281, 117.0, "STATIC-SEQ", paper_parallel=False),
            LoopSpec("jacld_do1", 0.141, 59.0, "STATIC-PAR"),
            LoopSpec("jacu_do1", 0.100, 314.0, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SRED", "RRED", "SLV"],
        dataset=dataset,
        paper_norm_time=0.65,
        paper_speedup16=1.57,
    )


def _mgrid() -> BenchmarkSpec:
    source = """
program mgrid
param N
array U(8448), R(8448), Z(8448)

main
  do i = 1, N @ resid_do600
    R[i] = U[i] - Z[i] + U[i+1]
  end
  do i = 1, N @ psinv_do600
    Z[i] = R[i] * 2 + R[i+1]
  end
  do i = 1, N @ interp_do800
    U[i] = Z[i] + R[i]
  end
  do i = 1, N @ rprj3_do100
    R[i] = R[i] + 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n},
            {"U": [i % 7 for i in range(1, 8449)],
             "Z": [i % 4 for i in range(1, 8449)]},
        )

    return BenchmarkSpec(
        name="mgrid",
        suite="spec2000",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("resid_do600", 0.515, 42.0, "STATIC-PAR"),
            LoopSpec("psinv_do600", 0.289, 7.0, "STATIC-PAR"),
            LoopSpec("interp_do800", 0.049, 2.0, "STATIC-PAR"),
            LoopSpec("rprj3_do100", 0.045, 2.0, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV"],
        dataset=dataset,
        paper_norm_time=0.14,
        paper_speedup16=8.95,
    )


def _swim() -> BenchmarkSpec:
    source = """
program swim
param N
array U(8448), V(8448), P(8448), CU(8448), CV(8448)

main
  do i = 1, N @ shalow_do3500
    CU[i] = U[i] + P[i]
  end
  do i = 1, N @ calc2_do200
    CV[i] = V[i] - P[i+1]
  end
  do i = 1, N @ calc1_do100
    P[i] = CU[i] + CV[i]
  end
  do i = 1, N @ calc3_do300
    U[i] = CU[i] * 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n},
            {"U": [i % 3 for i in range(1, 8449)],
             "V": [i % 5 for i in range(1, 8449)],
             "P": [i % 7 for i in range(1, 8449)]},
        )

    return BenchmarkSpec(
        name="swim",
        suite="spec2000",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("shalow_do3500", 0.448, 116.0, "STATIC-PAR"),
            LoopSpec("calc2_do200", 0.205, 53.0, "STATIC-PAR"),
            LoopSpec("calc1_do100", 0.180, 47.0, "STATIC-PAR"),
            LoopSpec("calc3_do300", 0.154, 40.0, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SRED"],
        dataset=dataset,
        paper_norm_time=0.12,
        paper_speedup16=11.21,
    )


def _bwaves() -> BenchmarkSpec:
    source = """
program bwaves
param N
array Q(8448), FLUX(8448), RHS(8448)

main
  do i = 1, N @ matvec_do1
    RHS[i] = Q[i] * 3 + Q[i+1]
  end
  do i = 1, N @ flux_do2
    FLUX[i] = RHS[i] - Q[i]
  end
  do i = 1, N @ shell_do5
    Q[i] = FLUX[i] + RHS[i]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return ({"N": n}, {"Q": [i % 9 for i in range(1, 8449)]})

    return BenchmarkSpec(
        name="bwaves",
        suite="spec2000",
        sc=1.0,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("matvec_do1", 0.751, 206.0, "STATIC-PAR"),
            LoopSpec("flux_do2", 0.058, 236.0, "STATIC-PAR"),
            LoopSpec("shell_do5", 0.042, 509.0, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SLV", "SRED"],
        dataset=dataset,
        paper_norm_time=0.14,
        paper_speedup16=13.07,
    )


def _zeusmp() -> BenchmarkSpec:
    source = """
program zeusmp
param KN, JJ, M, jbeg, js, K1, K2
array D(32768), E(32768), HS(8448)

main
  do i = 1, KN @ hsmoc_do360
    HS[i] = HS[i] + i
  end
  do k = 1, KN @ tranx2_do2100
    if jbeg == js then
      do j = 1, JJ
        D[(k-1)*400 + j] = E[(k-1)*400 + j] + 2
      end
    else
      do j = 1, JJ
        D[(k-1)*400 + j] = D[(k-1)*400 + j + M] + 1
      end
    end
  end
  do k = 1, KN @ momx3_do3000
    E[k] = D[k] * 2
  end
  do k = 1, KN @ tranx1_do100
    E[K1 + k] = D[k] + 1
    E[K2 + k] = D[k] + 2
  end
end
"""

    def dataset(scale: int) -> Dataset:
        kn = 16 * scale
        return (
            # jbeg == js satisfies the first disjunct of the UMEG-derived
            # predicate (the paper's own success case for TRANX2_DO2100).
            {"KN": kn, "JJ": 100, "M": 200, "jbeg": 5, "js": 5,
             "K1": 8192, "K2": 12288},
            {"D": [i % 6 for i in range(1, 32769)]},
        )

    return BenchmarkSpec(
        name="zeusmp",
        suite="spec2000",
        sc=0.99,
        scrt=0.10,
        rtov_paper=0.0001,
        source=source,
        loops=[
            LoopSpec("hsmoc_do360", 0.103, 783.0, "STATIC-PAR"),
            LoopSpec("momx3_do3000", 0.051, 13.0, "STATIC-PAR"),
            LoopSpec("tranx2_do2100", 0.076, 24.0, "F/OI O(1)"),
            LoopSpec("tranx1_do100", 0.024, 26.0, "OI O(1)"),
        ],
        techniques_paper=["PRIV", "SLV", "UMEG"],
        dataset=dataset,
        paper_norm_time=0.16,
        paper_speedup16=9.29,
    )


def _gromacs() -> BenchmarkSpec:
    source = """
program gromacs
param NRI, FSIZE
array F(FSIZE), SHIFT(4096), X(8192), W(64)

main
  do n = 1, NRI @ inl1130_do1
    do j = 1, 12
      W[j] = X[n] * j + X[n + j]
    end
    F[3*SHIFT[n] + 1] = F[3*SHIFT[n] + 1] + W[1]
    F[3*SHIFT[n] + 2] = F[3*SHIFT[n] + 2] + W[2]
    F[3*SHIFT[n] + 3] = F[3*SHIFT[n] + 3] + W[3]
  end
  do n = 1, NRI @ inl1100_do1
    F[3*SHIFT[n] + 1] = F[3*SHIFT[n] + 1] + X[n] * 2
  end
  do n = 1, NRI @ inl1000_do1
    F[3*SHIFT[n] + 2] = F[3*SHIFT[n] + 2] + X[n] * 3
  end
  do n = 1, NRI @ inl0100_do1
    F[3*SHIFT[n] + 3] = F[3*SHIFT[n] + 3] + X[n] * 4
  end
end
"""

    def dataset(scale: int) -> Dataset:
        nri = 48 * scale
        # Non-monotone targets: the RRED monotonicity predicate fails and
        # the loop runs as a parallel reduction with BOUNDS-COMP, the
        # paper's treatment for gromacs.
        shift = [((i * 389) % 1000) for i in range(4096)]
        return (
            {"NRI": nri, "FSIZE": 4096},
            {"SHIFT": shift, "X": [i % 5 for i in range(1, 8193)]},
        )

    return BenchmarkSpec(
        name="gromacs",
        suite="spec2000",
        sc=0.90,
        scrt=0.90,
        rtov_paper=0.034,
        source=source,
        loops=[
            LoopSpec("inl1130_do1", 0.848, 33.0, "BOUNDS-COMP"),
            LoopSpec("inl1100_do1", 0.022, 5.0, "BOUNDS-COMP"),
            LoopSpec("inl1000_do1", 0.019, 4.0, "BOUNDS-COMP"),
            LoopSpec("inl0100_do1", 0.008, 1.0, "BOUNDS-COMP"),
        ],
        techniques_paper=["PRIV", "RRED", "BOUNDS-COMP"],
        dataset=dataset,
        paper_norm_time=0.18,
        paper_speedup16=9.45,
    )


def _calculix() -> BenchmarkSpec:
    source = """
program calculix
param NL, NS
array AUB(16384), IROW(4096), B(16384), JQ(4096), IA(4096)

main
  do i = 1, NL @ mafillsm_do7
    do j = 1, 4
      AUB[IROW[i] + j] = AUB[IROW[i] + j] + i + j
    end
    do j = 1, IA[i]
      B[JQ[i] + j] = B[JQ[i] + j] + NS
    end
  end
end
"""

    def dataset(scale: int) -> Dataset:
        nl = 32 * scale
        irow = [((i * 389) % 500) for i in range(4096)]
        ia = [3] * 4096
        jq = [3 * (i - 1) for i in range(1, 4097)]
        return (
            {"NL": nl, "NS": 2},
            {"IROW": irow, "IA": ia, "JQ": jq},
        )

    return BenchmarkSpec(
        name="calculix",
        suite="spec2000",
        sc=0.74,
        scrt=0.74,
        rtov_paper=0.085,
        source=source,
        loops=[
            LoopSpec("mafillsm_do7", 0.737, 14000.0, "BOUNDS-COMP"),
        ],
        techniques_paper=["SRED", "PRIV", "UMEG", "BOUNDS-COMP"],
        dataset=dataset,
        paper_norm_time=0.24,
        paper_speedup16=8.06,
    )


def _gamess() -> BenchmarkSpec:
    source = """
program gamess
param N
array FOCK(8192), DEN(8192)

main
  do i = 1, N @ dirfck_do300
    FOCK[i] = DEN[i] * 2 + DEN[i+1]
  end
  do i = 1, N @ genr70_do170
    DEN[i] = FOCK[i] + 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 32 * scale
        return ({"N": n}, {"DEN": [i % 5 for i in range(1, 8193)]})

    return BenchmarkSpec(
        name="gamess",
        suite="spec2000",
        sc=0.32,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("dirfck_do300", 0.18, 0.04, "STATIC-PAR"),
            LoopSpec("genr70_do170", 0.144, 0.03, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "RRED"],
        dataset=dataset,
        paper_norm_time=None,
        paper_speedup16=None,
    )


SPEC2000: list[BenchmarkSpec] = [
    _wupwise(),
    _apsi(),
    _applu(),
    _mgrid(),
    _swim(),
    _bwaves(),
    _zeusmp(),
    _gromacs(),
    _calculix(),
    _gamess(),
]
