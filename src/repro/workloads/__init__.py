"""The 26 benchmark models of the paper's evaluation (Tables 1-3)."""

from .base import BenchmarkSpec, Dataset, LoopSpec
from .perfect_club import PERFECT_CLUB
from .spec2000 import SPEC2000
from .spec92 import SPEC92

ALL_BENCHMARKS: list[BenchmarkSpec] = PERFECT_CLUB + SPEC92 + SPEC2000

#: loops whose exact fallback uses speculation rather than the inspector
#: (Section 5: TLS when the exact test cannot be amortized).
TLS_LOOPS = frozenset({"nlfilt_do300", "gwater_do190"})


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark model by name."""
    for spec in ALL_BENCHMARKS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}")


__all__ = [
    "BenchmarkSpec",
    "LoopSpec",
    "Dataset",
    "PERFECT_CLUB",
    "SPEC92",
    "SPEC2000",
    "ALL_BENCHMARKS",
    "TLS_LOOPS",
    "get_benchmark",
]
