"""PERFECT-CLUB benchmark models (Table 1 of the paper).

Each model reproduces the *access-pattern class* of the benchmark's
measured loops: flo52's statically analyzable fluxes plus an O(1) output
predicate, bdna's CIV loops, arc2d's quasi-affine offsets, dyfesm's
interprocedural sections with F/OI predicates and extended reductions,
mdg's both-branches-write control flow, trfd's monotonic index arrays,
track's while-loop CIVs and speculative filter, spec77's mix, ocean's
interleaved FFT strides and qcd's scalar recurrences.
"""

from __future__ import annotations

import random

from .base import BenchmarkSpec, Dataset, LoopSpec

__all__ = ["PERFECT_CLUB"]


def _flo52() -> BenchmarkSpec:
    source = """
program flo52
param N, IOFF, JOFF
array W(8256), FS(8256), DW(16512)

main
  do i = 1, N @ psmoo_do40
    DW[i] = W[i] + W[i+1]
  end
  do i = 1, N @ dflux_do30
    FS[i] = W[i] - W[i+1]
  end
  do i = 1, N @ eflux_do10
    DW[i] = DW[i] + FS[i]
  end
  do i = 1, N @ dflux_do40
    DW[IOFF + i] = FS[i]
    DW[JOFF + i] = FS[i] + 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 32 * scale
        return (
            {"N": n, "IOFF": 0, "JOFF": n},
            {"W": [i % 7 for i in range(1, 8257)]},
        )

    return BenchmarkSpec(
        name="flo52",
        suite="perfect",
        sc=0.95,
        scrt=0.003,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("psmoo_do40", 0.195, 0.04, "STATIC-PAR"),
            LoopSpec("dflux_do30", 0.096, 0.08, "STATIC-PAR"),
            LoopSpec("eflux_do10", 0.082, 0.02, "STATIC-PAR"),
            LoopSpec("dflux_do40", 0.003, 0.01, "OI O(1)"),
        ],
        techniques_paper=["PRIV", "SRED", "SLV", "RRED"],
        dataset=dataset,
        paper_norm_time=0.86,
    )


def _bdna() -> BenchmarkSpec:
    source = """
program bdna
param N, M, Q
array X(4096), Y(16384), NSP(4096), T(512), B(4096)

main
  do i = 1, N @ actfor_do500
    do j = 1, 8
      T[j] = X[i] * j
    end
    do j = 1, 8
      Y[(i-1)*8 + j] = T[j] + 1
    end
  end
  civ = Q
  do i = 1, N @ actfor_do240
    if X[i + M] != 1 and NSP[i] > 0 then
      do j = 1, NSP[i]
        Y[civ + j] = X[i] + j
      end
      civ = civ + NSP[i]
    end
  end
  do i = 1, N @ restar_do15
    B[i] = X[i] + 2
  end
  do i = 1, N @ actfor_do320
    Y[i] = X[i] * 3
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 24 * scale
        rng = random.Random(7)
        nsp = [rng.randrange(0, 4) for _ in range(4096)]
        return (
            {"N": n, "M": n, "Q": 0},
            {"X": [(i * 3) % 5 for i in range(1, 4097)], "NSP": nsp},
        )

    return BenchmarkSpec(
        name="bdna",
        suite="perfect",
        sc=0.94,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("actfor_do500", 0.595, 69.0, "STATIC-PAR"),
            LoopSpec("actfor_do240", 0.315, 36.0, "CIVagg"),
            LoopSpec("restar_do15", 0.048, 28.0, "STATIC-PAR"),
            LoopSpec("actfor_do320", 0.018, 0.1, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SRED", "RRED", "CIVagg"],
        dataset=dataset,
        paper_norm_time=0.29,
    )


def _arc2d() -> BenchmarkSpec:
    source = """
program arc2d
param N, IX1, IX2
array X(16384), WK(16384)

main
  do i = 1, N @ stepfx_do210
    WK[i] = X[i] + X[i+1]
  end
  do i = 1, N @ stepfx_do230
    X[i] = WK[i] * 2
  end
  do i = 1, N @ xpent2_do11
    X[IX1 + i] = X[IX2 + i] + 1
  end
  do i = 1, N @ filerx_do15
    WK[IX1 + i] = WK[IX2 + i] - 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 48 * scale
        return (
            {"N": n, "IX1": 0, "IX2": n + 8},
            {"X": [i % 9 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="arc2d",
        suite="perfect",
        sc=0.97,
        scrt=0.20,
        rtov_paper=0.002,
        source=source,
        loops=[
            LoopSpec("stepfx_do210", 0.163, 0.8, "STATIC-PAR"),
            LoopSpec("stepfx_do230", 0.119, 0.6, "STATIC-PAR"),
            LoopSpec("xpent2_do11", 0.107, 0.002, "FI O(1)"),
            LoopSpec("filerx_do15", 0.090, 1.3, "FI O(1)"),
        ],
        techniques_paper=["PRIV", "SLV", "MON"],
        dataset=dataset,
        paper_norm_time=0.91,
    )


def _dyfesm() -> BenchmarkSpec:
    source = """
program dyfesm
param N, SYM, NS, NP
array HE(40960), XE(1024), IA(64), IB(64), XD(4096), IDX(64), R(8192)

subroutine geteu(XE[], SYM, NP)
  if SYM != 1 then
    do i = 1, NP
      do j = 1, 16
        XE[16*(i-1) + j] = i + j
      end
    end
  end
end

subroutine matmult(HE[], XE[], NS)
  do j = 1, NS
    HE[j] = XE[j]
    XE[j] = j * 2
  end
end

subroutine solvhe(HE[], NP)
  do j = 1, 3
    do i = 1, NP
      HE[(i-1)*8 + j] = HE[(i-1)*8 + j] + 1
    end
  end
end

main
  do i = 1, N @ mxmult_do10
    do j = 1, 4
      R[(i-1)*4 + j] = XD[(i-1)*4 + j] * 2
      R[2048 + IDX[i] + j] = R[2048 + IDX[i] + j] + XD[(i-1)*4 + j]
    end
  end
  do i = 1, N @ solxdd_do10
    do j = 1, IA[i]
      XD[IB[i] + j] = XD[IB[i] + j] + 5
    end
  end
  do i = 1, N @ solvh_do20
    do k = 1, IA[i]
      id = IB[i] + k - 1
      call geteu(XE[], SYM, NP)
      call matmult(HE[] + 32*(id-1), XE[], NS)
      call solvhe(HE[] + 32*(id-1), NP)
    end
  end
  do i = 1, N @ formr_do20
    do j = 1, 4
      R[(i-1)*4 + j] = XD[(i-1)*4 + j] + 1
      R[2048 + IDX[i] + j] = R[2048 + IDX[i] + j] + 7
    end
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 8 * scale
        idx = [4 * (i - 1) for i in range(1, 65)]
        ia = [2] * 64
        ib = [1 + 2 * (i - 1) for i in range(1, 65)]
        return (
            {"N": n, "SYM": 0, "NS": 16, "NP": 1},
            {"IDX": idx, "IA": ia, "IB": ib,
             "XD": [i % 5 for i in range(1, 4097)]},
        )

    return BenchmarkSpec(
        name="dyfesm",
        suite="perfect",
        sc=0.97,
        scrt=0.96,
        rtov_paper=0.003,
        source=source,
        loops=[
            LoopSpec("mxmult_do10", 0.439, 0.006, "FI HOIST-USR"),
            LoopSpec("solxdd_do10", 0.273, 0.007, "OI O(N)"),
            LoopSpec("solvh_do20", 0.142, 0.03, "F/OI O(1)"),
            LoopSpec("formr_do20", 0.105, 0.02, "FI HOIST-USR"),
        ],
        techniques_paper=["PRIV", "EXT-RRED", "HOIST-USR", "MON"],
        dataset=dataset,
        paper_norm_time=1.71,
    )


def _mdg() -> BenchmarkSpec:
    source = """
program mdg
param N, CUT
array XM(8192), F(8192), V(8192)

main
  do i = 1, N @ interf_do1000
    if XM[i] > CUT then
      F[i] = XM[i] * 2
    else
      F[i] = XM[i] + 1
    end
  end
  do i = 1, N @ poteng_do2000
    if XM[i] > CUT then
      V[i] = F[i] + XM[i]
    else
      V[i] = F[i] - XM[i]
    end
  end
  do i = 1, N @ correc_do1000
    XM[i] = XM[i] + V[i]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 64 * scale
        return (
            {"N": n, "CUT": 3},
            {"XM": [i % 7 for i in range(1, 8193)]},
        )

    return BenchmarkSpec(
        name="mdg",
        suite="perfect",
        sc=0.99,
        scrt=0.0,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("interf_do1000", 0.92, 24.0, "STATIC-PAR"),
            LoopSpec("poteng_do2000", 0.072, 19.0, "STATIC-PAR"),
            LoopSpec("correc_do1000", 0.001, 0.04, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "RRED"],
        dataset=dataset,
        paper_norm_time=0.28,
    )


def _trfd() -> BenchmarkSpec:
    source = """
program trfd
param NUM, IA0, IB0
array XIJ(16384), XKL(16384), V(16384), IB(512), IA(512)

main
  do i = 1, NUM @ olda_do100
    do j = 1, 8
      XIJ[(i-1)*8 + j] = V[j] + i
    end
  end
  do i = 1, NUM @ olda_do300
    XKL[IA0 + i] = XKL[IB0 + i] + V[i]
  end
  do i = 1, NUM @ intgrl_do140
    do j = 1, IA[i]
      XIJ[IB[i] + j] = XIJ[IB[i] + j] + 3
    end
  end
  do i = 1, NUM @ intgrl_do20
    V[8192 + i] = i
  end
end
"""

    def dataset(scale: int) -> Dataset:
        num = 16 * scale
        ia = [3] * 512
        ib = [3 * (i - 1) for i in range(1, 513)]
        return (
            # Writes above reads: matches the direction the structural
            # inference rules favour (rule (2) is asymmetric).
            {"NUM": num, "IA0": 8192, "IB0": 0},
            {"IA": ia, "IB": ib, "V": [i % 4 for i in range(1, 513)],
             "XKL": [i % 3 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="trfd",
        suite="perfect",
        sc=0.99,
        scrt=0.348,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("olda_do100", 0.637, 18.0, "STATIC-PAR"),
            LoopSpec("olda_do300", 0.309, 9.0, "FI O(1)"),
            LoopSpec("intgrl_do140", 0.039, 2.0, "OI O(N)"),
            LoopSpec("intgrl_do20", 0.001, 0.006, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SLV", "MON"],
        dataset=dataset,
        paper_norm_time=0.30,
    )


def _track() -> BenchmarkSpec:
    source = """
program track
param NTRKS, NL, M
array TRK(8192), OUT(16384), NHITS(4096), Z(8192), KX(4096), KZ(4096), W(4096)

main
  i = 1
  civ = 0
  while i <= NTRKS @ extend_do400
    if NHITS[i] > 0 then
      do j = 1, NHITS[i]
        OUT[civ + j] = TRK[i] + j
      end
      civ = civ + NHITS[i]
    end
    i = i + 1
  end
  k = 1
  civ2 = 0
  while k <= NTRKS @ fptrak_do300
    if NHITS[k] > 0 then
      do j = 1, NHITS[k]
        OUT[M + civ2 + j] = TRK[k] * 2 + j
      end
      civ2 = civ2 + NHITS[k]
    end
    k = k + 1
  end
  do n = 1, NL @ nlfilt_do300
    Z[KX[n]] = W[n] + Z[KZ[n]]
  end
end
"""

    def dataset(scale: int) -> Dataset:
        ntrks = 12 * scale
        nl = 8 * scale
        rng = random.Random(13)
        nhits = [rng.randrange(1, 4) for _ in range(4096)]
        # Writes hit odd locations, reads even ones: the pairwise interval
        # predicates fail (the values interleave) but speculation succeeds
        # because the sets never actually meet -- the paper's TLS case.
        kx = [2 * ((i * 37) % 2000) + 1 for i in range(4096)]
        kz = [2 * ((i * 53) % 2000) + 2 for i in range(4096)]
        return (
            {"NTRKS": ntrks, "NL": nl, "M": 2048},
            {"NHITS": nhits, "KX": kx, "KZ": kz,
             "TRK": [i % 6 for i in range(1, 8193)],
             "W": [i % 5 for i in range(1, 4097)]},
        )

    return BenchmarkSpec(
        name="track",
        suite="perfect",
        sc=0.97,
        scrt=0.97,
        rtov_paper=0.47,
        source=source,
        loops=[
            LoopSpec("extend_do400", 0.492, 117.0, "CIV-COMP"),
            LoopSpec("fptrak_do300", 0.477, 121.0, "CIV-COMP"),
            LoopSpec("nlfilt_do300", 0.012, 3.6, "TLS"),
        ],
        techniques_paper=["PRIV", "CIVagg", "CIV-COMP"],
        dataset=dataset,
        paper_norm_time=0.53,
    )


def _spec77() -> BenchmarkSpec:
    source = """
program spec77
param N, KOFF, LOFF
array G(16384), U(16384), KPT(4096), KQT(4096)

main
  do i = 1, N @ gloop_do1000
    G[i] = U[i] * 2 + U[i+1]
  end
  do i = 1, N @ gwater_do190
    U[KPT[i]] = G[i] + U[KQT[i]]
  end
  do i = 1, N @ sicdkd_do1000
    G[KOFF + i] = G[LOFF + i] + 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 48 * scale
        kpt = [2 * ((i * 53) % 4000) + 1 for i in range(4096)]
        kqt = [2 * ((i * 31) % 4000) + 2 for i in range(4096)]
        return (
            {"N": n, "KOFF": 0, "LOFF": 8192},
            {"KPT": kpt, "KQT": kqt, "U": [i % 8 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="spec77",
        suite="perfect",
        sc=0.76,
        scrt=0.11,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("gloop_do1000", 0.571, 31.0, "STATIC-PAR"),
            LoopSpec("gwater_do190", 0.165, 9.5, "TLS"),
            LoopSpec("sicdkd_do1000", 0.026, 1.3, "FI O(1)"),
        ],
        techniques_paper=["PRIV", "SRED", "SLV"],
        dataset=dataset,
        paper_norm_time=0.62,
    )


def _ocean() -> BenchmarkSpec:
    source = """
program ocean
param NN, OFF1, OFF2
array X(16384), CS(8192)

main
  do i = 1, NN @ ftrvmt_do109
    X[2*i + OFF1] = X[2*i + OFF2] + 1
  end
  do i = 1, NN @ csr_do20
    CS[i] = X[i] * 2
  end
  do i = 1, NN @ scsc_do30
    CS[i] = CS[i] + X[i+1]
  end
  do i = 1, NN @ rcs_do20
    X[i] = CS[i] - 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        nn = 40 * scale
        return (
            {"NN": nn, "OFF1": 0, "OFF2": 1},
            {"X": [i % 11 for i in range(1, 16385)]},
        )

    return BenchmarkSpec(
        name="ocean",
        suite="perfect",
        sc=0.65,
        scrt=0.45,
        rtov_paper=0.001,
        source=source,
        loops=[
            LoopSpec("ftrvmt_do109", 0.454, 0.01, "FI O(1)"),
            LoopSpec("csr_do20", 0.052, 0.04, "STATIC-PAR"),
            LoopSpec("scsc_do30", 0.038, 0.03, "STATIC-PAR"),
            LoopSpec("rcs_do20", 0.018, 0.04, "STATIC-PAR"),
        ],
        techniques_paper=["PRIV", "SLV", "MON"],
        dataset=dataset,
        paper_norm_time=1.92,
    )


def _qcd() -> BenchmarkSpec:
    source = """
program qcd
param N, SEED, K1, K2
array U(8192), PSI(8192)

main
  s = SEED
  do i = 1, N @ update_do1
    s = s * 5 + 1
    U[i] = s
  end
  t = SEED
  do i = 1, N @ update_do2
    t = t * 3 + U[i]
    PSI[i] = t
  end
  do i = 1, N @ init_do2
    PSI[K1 + i] = U[i] + 1
    PSI[K2 + i] = U[i] - 1
  end
end
"""

    def dataset(scale: int) -> Dataset:
        n = 48 * scale
        return ({"N": n, "SEED": 1, "K1": 0, "K2": 4096}, {})

    return BenchmarkSpec(
        name="qcd",
        suite="perfect",
        sc=0.99,
        scrt=0.01,
        rtov_paper=0.0,
        source=source,
        loops=[
            LoopSpec("update_do1", 0.319, 22.0, "STATIC-SEQ", paper_parallel=False),
            LoopSpec("update_do2", 0.316, 22.0, "STATIC-SEQ", paper_parallel=False),
            LoopSpec("init_do2", 0.01, 1.5, "OI O(1)"),
        ],
        techniques_paper=[],
        dataset=dataset,
        paper_norm_time=1.05,
    )


PERFECT_CLUB: list[BenchmarkSpec] = [
    _flo52(),
    _bdna(),
    _arc2d(),
    _dyfesm(),
    _mdg(),
    _trfd(),
    _track(),
    _spec77(),
    _ocean(),
    _qcd(),
]
