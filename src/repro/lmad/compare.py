"""Leaf-predicate extraction from LMAD comparisons (Section 3.2, Fig. 6(a)).

This module turns questions about LMADs -- disjointness, inclusion,
coverage of a whole array -- into *sufficient* symbolic boolean predicates.
The rules implemented are exactly the paper's:

* 1D disjointness: the *interleaved access* test
  ``gcd(d1,d2) does not divide (t1 - t2)`` or the *disjoint intervals*
  test ``t1 > t2 + s2  or  t2 > t1 + s1``;
* 1D inclusion: ``(d2 | d1) and (d2 | t1 - t2) and t1 >= t2 and
  t1 + s1 <= t2 + s2``;
* multi-dimensional disjointness via flattening plus dimension
  unification, outer-dimension projection (``PROJ_OUTER_DIM``) with
  well-formedness guards, and a recursive inner/outer comparison;
* ``FILLS_ARR``: a dense LMAD covering the whole declared array.

All predicates are sufficient conditions only, as the paper notes in
Section 3.6.
"""

from __future__ import annotations

from math import gcd
from typing import Optional, Sequence

from .. import profiling as _profiling
from ..symbolic import (
    FALSE,
    TRUE,
    BoolExpr,
    Expr,
    b_and,
    b_or,
    cmp_ge,
    cmp_gt,
    cmp_le,
    divides,
    as_expr,
)
from .lmad import LMAD, interval

__all__ = [
    "disjoint_lmads",
    "included_lmads",
    "disjoint_lmad_sets",
    "included_lmad_sets",
    "fills_array",
    "dense_interval",
]


def _try_exact_div(e: Expr, d: Expr) -> Optional[Expr]:
    """Return ``q`` with ``e == q * d`` when polynomial division is exact."""
    if d.is_constant():
        c = d.constant_value()
        if c == 0:
            return None
        if all(coeff % c == 0 for _m, coeff in e.terms):
            return Expr._from_terms({m: coeff // c for m, coeff in e.terms})
        return None
    if len(d.terms) != 1:
        return None
    (d_mono, d_coeff) = d.terms[0]
    d_powers = dict(d_mono)
    out: dict = {}
    for mono, coeff in e.terms:
        if coeff % d_coeff != 0:
            return None
        powers = dict(mono)
        for atom, p in d_powers.items():
            if powers.get(atom, 0) < p:
                return None
            powers[atom] -= p
            if powers[atom] == 0:
                del powers[atom]
        key = tuple(sorted(powers.items(), key=lambda ap: ap[0]._order_key()))
        out[key] = out.get(key, 0) + coeff // d_coeff
    return Expr._from_terms(out)


def sym_divides(d: Expr, e: Expr) -> BoolExpr:
    """Sufficient predicate for ``d | e`` with symbolic operands."""
    if e.is_constant() and e.constant_value() == 0:
        return TRUE
    if d.is_constant():
        c = abs(d.constant_value())
        if c == 1:
            return TRUE
        if c == 0:
            return FALSE
        return divides(c, e)
    if _try_exact_div(e, d) is not None:
        return TRUE
    return FALSE  # conservatively give up on symbolic divisibility


def _gcd_of(exprs: Sequence[Expr]) -> Optional[int]:
    """GCD of provably constant strides; None when any is symbolic."""
    g = 0
    for e in exprs:
        if not e.is_constant():
            return None
        g = gcd(g, abs(e.constant_value()))
    return g if g != 0 else None


def _interleaved_disjoint(a: LMAD, b: LMAD) -> BoolExpr:
    """The gcd-based interleaving test over flattened descriptors.

    Every index of ``a`` is congruent to ``t_a`` modulo the gcd of its
    strides (likewise ``b``); if the combined gcd does not divide the base
    difference the sets cannot meet.
    """
    strides = list(a.strides) + list(b.strides)
    if not strides:
        return FALSE
    g = _gcd_of(strides)
    if g is None:
        # Equal symbolic strides still admit the test with their own value
        # as modulus, but only a constant modulus yields a checkable leaf.
        return FALSE
    if g <= 1:
        return FALSE
    from ..symbolic import b_not

    return b_not(divides(g, a.base - b.base))


def _disjoint_intervals(a: LMAD, b: LMAD) -> BoolExpr:
    """``a`` and ``b`` lie in non-overlapping index ranges."""
    a_lo, a_hi = a.interval_overestimate()
    b_lo, b_hi = b.interval_overestimate()
    return b_or(cmp_gt(a_lo, b_hi), cmp_gt(b_lo, a_hi))


def _empty_pred(a: LMAD) -> BoolExpr:
    """Predicate that ``a`` denotes the empty set (some span negative)."""
    preds = [cmp_gt(as_expr(0), s) for s in a.spans]
    return b_or(*preds) if preds else FALSE


def _disjoint_1d(a: LMAD, b: LMAD) -> BoolExpr:
    """Fig. 6(a)'s ``DISJOINT_LMAD_1D``: interleaving or separation."""
    return b_or(
        _empty_pred(a),
        _empty_pred(b),
        _interleaved_disjoint(a, b),
        _disjoint_intervals(a, b),
    )


def _included_1d(a: LMAD, b: LMAD) -> BoolExpr:
    """Sufficient predicate for a 1D ``a`` to be included in a 1D ``b``."""
    if a.is_definitely_empty():
        return TRUE
    a = a.normalized()
    b = b.normalized()
    if a.ndims > 1 or b.ndims > 1:
        return FALSE
    d1 = a.strides[0] if a.ndims else as_expr(1)
    d2 = b.strides[0] if b.ndims else as_expr(1)
    stride_ok = sym_divides(d2, d1) if b.ndims else TRUE
    offset_ok = sym_divides(d2, a.base - b.base) if b.ndims else TRUE
    lo_ok = cmp_ge(a.base, b.base)
    hi_ok = cmp_le(a.base + a.extent(), b.base + b.extent())
    inside = b_and(stride_ok, offset_ok, lo_ok, hi_ok)
    if b.ndims == 0:
        inside = b_and(cmp_ge(a.base, b.base), cmp_le(a.base + a.extent(), b.base))
    return b_or(_empty_pred(a), inside)


def _flatten(a: LMAD) -> LMAD:
    """Conservative 1D view used by the interleaving/interval tests.

    The flattened descriptor keeps the same base, a stride equal to the
    gcd of the original strides (1 when symbolic) and the summed span, so
    its interval overestimate coincides with the original's.
    """
    a = a.normalized()
    if a.ndims <= 1:
        return a
    g = _gcd_of(a.strides)
    stride = as_expr(g if g is not None else 1)
    return LMAD((stride,), (a.extent(),), a.base)


def _split_base(base: Expr, outer_stride: Expr) -> tuple[Expr, Expr]:
    """Split ``base = inner + outer`` assigning multiples of the outer
    stride to the outer component (paper's CORREC_DO900 heuristic)."""
    outer_terms: dict = {}
    inner_terms: dict = {}
    for mono, coeff in base.terms:
        term = Expr._from_terms({mono: coeff})
        if _try_exact_div(term, outer_stride) is not None:
            outer_terms[mono] = coeff
        else:
            inner_terms[mono] = coeff
    return (
        Expr._from_terms(inner_terms),
        Expr._from_terms(outer_terms),
    )


def _proj_outer_dim(a: LMAD) -> Optional[tuple[BoolExpr, LMAD, LMAD]]:
    """``PROJ_OUTER_DIM``: split off the outermost dimension.

    Returns ``(P_wf, inner, outer)`` where ``P_wf`` guards that the inner
    part never crosses an outer-stride boundary (``0 <= inner range <
    outer stride``), or ``None`` when the LMAD has fewer than 2 dims.
    The input is used as-is: padding dimensions introduced by
    ``UNIFY_LMAD_DIMS`` must survive to here.
    """
    if a.ndims < 2:
        return None
    outer_stride = a.strides[-1]
    outer_span = a.spans[-1]
    inner_base, outer_base = _split_base(a.base, outer_stride)
    inner = LMAD(a.strides[:-1], a.spans[:-1], inner_base)
    outer = LMAD((outer_stride,), (outer_span,), outer_base)
    inner_lo, inner_hi = inner.interval_overestimate()
    wf = b_and(cmp_ge(inner_lo, 0), cmp_gt(outer_stride, inner_hi))
    return (wf, inner, outer)


def _unify_dims(a: LMAD, b: LMAD) -> tuple[LMAD, LMAD]:
    """Pad the shallower LMAD with stride-1/span-0 inner dimensions so both
    have the same dimensionality (paper's ``UNIFY_LMAD_DIMS``)."""
    a = a.normalized()
    b = b.normalized()
    while a.ndims < b.ndims:
        a = LMAD((as_expr(1),) + a.strides, (as_expr(0),) + a.spans, a.base)
    while b.ndims < a.ndims:
        b = LMAD((as_expr(1),) + b.strides, (as_expr(0),) + b.spans, b.base)
    return a, b


def disjoint_lmads(a: LMAD, b: LMAD, _depth: int = 0) -> BoolExpr:
    """Sufficient predicate for ``a`` and ``b`` to be disjoint (Fig. 6(a))."""
    a = a.normalized()
    b = b.normalized()
    if a.ndims <= 1 and b.ndims <= 1:
        return _disjoint_1d(a, b)
    p_flat = _disjoint_1d(_flatten(a), _flatten(b))
    if _depth > 8:
        return p_flat
    c, d = _unify_dims(a, b)
    if c.strides[-1] != d.strides[-1]:
        return p_flat
    proj_c = _proj_outer_dim(c)
    proj_d = _proj_outer_dim(d)
    if proj_c is None or proj_d is None:
        return p_flat
    wf_c, c_in, c_out = proj_c
    wf_d, d_in, d_out = proj_d
    p_out = _disjoint_1d(c_out, d_out)
    p_in = disjoint_lmads(c_in, d_in, _depth + 1)
    return b_or(p_flat, b_and(wf_c, wf_d, b_or(p_out, p_in)))


def included_lmads(a: LMAD, b: LMAD, _depth: int = 0) -> BoolExpr:
    """Sufficient predicate for every index of ``a`` to belong to ``b``."""
    a = a.normalized()
    b = b.normalized()
    if a.is_definitely_empty():
        return TRUE
    # Dense target: any summary within the covered interval is included.
    dense_b = dense_interval(b)
    if dense_b is not None:
        b_lo, b_hi = dense_b
        a_lo, a_hi = a.interval_overestimate()
        return b_or(
            _empty_pred(a),
            b_and(cmp_ge(a_lo, b_lo), cmp_le(a_hi, b_hi)),
        )
    if b.ndims <= 1:
        # Flattening overestimates `a` (gcd stride, same extent), so
        # inclusion of the flattened set implies inclusion of `a`.
        return _included_1d(_flatten(a), b)
    if _depth > 8:
        return FALSE
    # Same-geometry fast path: equal strides dimension-wise, aligned bases
    # and spans that fit imply point-wise containment.
    if a.ndims == b.ndims and a.strides == b.strides:
        span_ok = b_and(*(cmp_le(sa, sb) for sa, sb in zip(a.spans, b.spans)))
        from ..symbolic import cmp_eq

        return b_and(span_ok, cmp_eq(a.base, b.base))
    # Project outer dimensions when they share a stride.
    c, d = _unify_dims(a, b)
    if c.strides[-1] == d.strides[-1]:
        proj_c = _proj_outer_dim(c)
        proj_d = _proj_outer_dim(d)
        if proj_c is not None and proj_d is not None:
            wf_c, c_in, c_out = proj_c
            wf_d, d_in, d_out = proj_d
            return b_and(
                wf_c,
                wf_d,
                _included_1d(c_out, d_out),
                included_lmads(c_in, d_in, _depth + 1),
            )
    return FALSE


def point_of(a: LMAD) -> LMAD:
    """The base point of *a* as a degenerate LMAD."""
    from .lmad import point

    return point(a.base)


def dense_interval(a: LMAD) -> Optional[tuple[Expr, Expr]]:
    """``[lo, hi]`` when *a* provably covers a contiguous range, else None.

    Checks telescoping density over constant strides sorted ascending:
    each stride must not exceed one plus the extent covered by the finer
    dimensions.  Only the strides and the *inner* spans need to be
    constants -- the outermost span may stay symbolic, which is how
    ``[1,16]v[15,16*NP-16]+1`` is recognized as the interval
    ``[1, 16*NP]``.
    """
    a = a.normalized()
    if a.ndims == 0:
        return (a.base, a.base)
    if not all(d.is_constant() for d in a.strides):
        if a.ndims == 1 and a.strides[0] == 1:
            return a.interval_overestimate()
        return None
    dims = sorted(
        zip((d.constant_value() for d in a.strides), a.spans),
        key=lambda ds: ds[0],
    )
    covered = 0  # numeric extent covered by finer dims; None once symbolic
    for d, span in dims:
        if covered is None or d > covered + 1:
            return None
        if span.is_constant():
            if span.constant_value() < 0:
                return None
            covered += span.constant_value()
        else:
            covered = None  # symbolic span: must be the outermost dim
    lo, hi = a.interval_overestimate()
    return (lo, hi)


def fills_array(a: LMAD, declared_lower: Expr, declared_upper: Expr) -> BoolExpr:
    """``FILLS_ARR`` (Fig. 5, rule 5): *a* covers the declared array range.

    A dense descriptor that starts at or before the declared lower bound
    and ends at or after the upper bound covers every index any summary of
    the same array may touch.
    """
    span = dense_interval(a)
    if span is None:
        return FALSE
    lo, hi = span
    return b_and(cmp_le(lo, declared_lower), cmp_ge(hi, declared_upper))


try:  # NumPy accelerates the all-constant bulk path; never required.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def _const_1d_rows(
    lmads: Sequence[LMAD],
) -> Optional[tuple[list[int], list[int], list[int], list[bool]]]:
    """``(base, hi, stride_gcd, empty)`` per LMAD when every descriptor
    is fully constant with at most one live dimension, else None."""
    bases: list[int] = []
    his: list[int] = []
    gcds: list[int] = []
    empties: list[bool] = []
    for a in lmads:
        if not a.base.is_constant() or not a.has_constant_geometry():
            return None
        a = a.normalized()
        if a.ndims > 1:
            return None
        base = a.base.constant_value()
        spans = [s.constant_value() for s in a.spans]
        bases.append(base)
        his.append(base + sum(spans))
        gcds.append(
            abs(a.strides[0].constant_value()) if a.ndims else 0
        )
        empties.append(any(s < 0 for s in spans))
    return bases, his, gcds, empties


def _disjoint_sets_fast(
    s1: Sequence[LMAD], s2: Sequence[LMAD]
) -> Optional[BoolExpr]:
    """Bulk-evaluated :func:`disjoint_lmad_sets` for all-constant inputs.

    When every LMAD in both sets is fully constant and (normalized) at
    most 1D, each pairwise ``DISJOINT_LMAD_1D`` predicate folds to a
    literal, so the whole conjunction can be computed numerically --
    vectorized over the cross product with NumPy when available -- and
    must equal what the symbolic path would have folded to.  Returns
    None (fall through to the reference) in every other case;
    ``test_lmad.py`` fuzzes the agreement.
    """
    if not s1 or not s2:
        return None
    rows1 = _const_1d_rows(s1)
    if rows1 is None:
        return None
    rows2 = _const_1d_rows(s2)
    if rows2 is None:
        return None
    _profiling.count("lmad.disjoint_pairs_fast", len(s1) * len(s2))
    b1, h1, g1, e1 = rows1
    b2, h2, g2, e2 = rows2
    if _np is not None and len(s1) * len(s2) >= 4:
        base_a = _np.asarray(b1)[:, None]
        base_b = _np.asarray(b2)[None, :]
        hi_a = _np.asarray(h1)[:, None]
        hi_b = _np.asarray(h2)[None, :]
        empty = _np.asarray(e1)[:, None] | _np.asarray(e2)[None, :]
        g = _np.gcd(_np.asarray(g1)[:, None], _np.asarray(g2)[None, :])
        interleaved = (g > 1) & ((base_a - base_b) % _np.where(g > 1, g, 1) != 0)
        separated = (base_a > hi_b) | (base_b > hi_a)
        ok = bool((empty | interleaved | separated).all())
    else:
        ok = True
        for ba, ha, ga, ea in zip(b1, h1, g1, e1):
            for bb, hb, gb, eb in zip(b2, h2, g2, e2):
                if ea or eb:
                    continue
                g = gcd(ga, gb)
                if g > 1 and (ba - bb) % g != 0:
                    continue
                if ba > hb or bb > ha:
                    continue
                ok = False
                break
            if not ok:
                break
    return TRUE if ok else FALSE


@_profiling.timed("lmad.disjoint_sets")
def disjoint_lmad_sets(s1: Sequence[LMAD], s2: Sequence[LMAD]) -> BoolExpr:
    """Every LMAD of ``s1`` disjoint from every LMAD of ``s2``."""
    fast = _disjoint_sets_fast(s1, s2)
    if fast is not None:
        return fast
    _profiling.count("lmad.disjoint_pairs", len(s1) * len(s2))
    preds = [disjoint_lmads(a, b) for a in s1 for b in s2]
    return b_and(*preds) if preds else TRUE


@_profiling.timed("lmad.included_sets")
def included_lmad_sets(s1: Sequence[LMAD], s2: Sequence[LMAD]) -> BoolExpr:
    """Every LMAD of ``s1`` included in at least one LMAD of ``s2``."""
    if not s1:
        return TRUE
    if not s2:
        preds = [_empty_pred(a) for a in s1]
        return b_and(*preds)
    _profiling.count("lmad.included_pairs", len(s1) * len(s2))
    out = []
    for a in s1:
        out.append(b_or(*(included_lmads(a, b) for b in s2)))
    return b_and(*out)
