"""Linear Memory Access Descriptors (LMADs) -- Section 2.1 of the paper.

An LMAD ``[d1,...,dM] v [s1,...,sM] + t`` denotes the unified
(one-dimensional) index set::

    { t + i1*d1 + ... + iM*dM  |  0 <= ik*dk <= sk,  k in 1..M }

where ``dk`` are *strides* and ``sk`` are *spans* (distance covered by the
dimension, already in index units: a dimension with ``c`` points has span
``(c-1)*dk``).  Strides, spans and the base offset ``t`` are symbolic
integer expressions; an LMAD with any provably negative span denotes the
empty set (this encoding is exploited by the CIV aggregation of Section
3.3, where an empty path summary becomes an interval whose upper bound
falls below its lower bound).

Dimensions are stored *innermost first*: ``strides[-1]`` is the outermost
dimension, the one split off by ``PROJ_OUTER_DIM`` (Fig. 6(a)).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..symbolic import EvalEnv, Expr, ExprLike, as_expr

__all__ = ["LMAD", "interval", "point"]


class LMAD:
    """A (possibly multi-dimensional) linear memory access descriptor."""

    __slots__ = ("strides", "spans", "base")

    def __init__(
        self,
        strides: Iterable[ExprLike],
        spans: Iterable[ExprLike],
        base: ExprLike = 0,
    ):
        self.strides = tuple(as_expr(d) for d in strides)
        self.spans = tuple(as_expr(s) for s in spans)
        self.base = as_expr(base)
        if len(self.strides) != len(self.spans):
            raise ValueError("stride/span dimension mismatch")

    # -- construction helpers -------------------------------------------
    def normalized(self) -> "LMAD":
        """Drop dimensions that are provably single points (span == 0)."""
        dims = [
            (d, s)
            for d, s in zip(self.strides, self.spans)
            if not (s.is_constant() and s.constant_value() == 0)
        ]
        if len(dims) == len(self.strides):
            return self
        if dims:
            strides, spans = zip(*dims)
        else:
            strides, spans = (), ()
        return LMAD(strides, spans, self.base)

    @property
    def ndims(self) -> int:
        return len(self.strides)

    # -- classification ---------------------------------------------------
    def is_point(self) -> bool:
        """True when the descriptor is provably a single index."""
        return all(s.is_constant() and s.constant_value() == 0 for s in self.spans)

    def is_definitely_empty(self) -> bool:
        """True when some span is provably negative (empty encoding)."""
        return any(s.is_constant() and s.constant_value() < 0 for s in self.spans)

    def has_constant_geometry(self) -> bool:
        """True when all strides and spans are integer constants."""
        return all(d.is_constant() for d in self.strides) and all(
            s.is_constant() for s in self.spans
        )

    def is_dense_1d(self) -> bool:
        """Provably contiguous: a single dimension of stride 1 (or a point)."""
        live = self.normalized()
        if live.ndims == 0:
            return True
        return live.ndims == 1 and live.strides[0] == 1

    # -- symbolic geometry -------------------------------------------------
    def extent(self) -> Expr:
        """Total span ``s1 + ... + sM`` (distance from first to last index),
        valid as an upper-bound offset when all strides are positive."""
        total = as_expr(0)
        for s in self.spans:
            total = total + s
        return total

    def interval_overestimate(self) -> tuple[Expr, Expr]:
        """Inclusive symbolic interval ``[base, base + extent()]`` covering
        the LMAD, assuming positive strides and non-negative spans."""
        return (self.base, self.base + self.extent())

    def free_symbols(self) -> frozenset[str]:
        out = self.base.free_symbols()
        for d in self.strides:
            out |= d.free_symbols()
        for s in self.spans:
            out |= s.free_symbols()
        return out

    def substitute(self, mapping) -> "LMAD":
        return LMAD(
            (d.substitute(mapping) for d in self.strides),
            (s.substitute(mapping) for s in self.spans),
            self.base.substitute(mapping),
        )

    def shifted(self, offset: ExprLike) -> "LMAD":
        """The same descriptor displaced by *offset* (call-site translation)."""
        return LMAD(self.strides, self.spans, self.base + as_expr(offset))

    # -- concrete evaluation ----------------------------------------------
    def enumerate(self, env: EvalEnv) -> set[int]:
        """The concrete index set under runtime environment *env*."""
        base = self.base.evaluate(env)
        dims = []
        for d, s in zip(self.strides, self.spans):
            dv, sv = d.evaluate(env), s.evaluate(env)
            if sv < 0:
                return set()  # empty-set encoding
            if dv == 0:
                if sv == 0:
                    continue  # degenerate single point
                raise ValueError(f"zero stride with positive span in {self!r}")
            if dv < 0:
                # A negative stride walks downward: re-anchor the base at
                # the smallest index and walk up.
                count = sv // (-dv) + 1
                base -= (count - 1) * (-dv)
                dv, sv = -dv, (count - 1) * (-dv)
            dims.append((dv, sv))
        out = {base}
        for dv, sv in dims:
            count = sv // dv + 1
            out = {x + i * dv for x in out for i in range(count)}
        return out

    def count(self, env: EvalEnv) -> int:
        """Number of points (with multiplicity collapsed) under *env*."""
        return len(self.enumerate(env))

    # -- identity -----------------------------------------------------------
    def key(self) -> tuple:
        return (self.strides, self.spans, self.base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LMAD) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(("LMAD",) + self.key())

    def __repr__(self) -> str:
        ds = ",".join(repr(d) for d in self.strides)
        ss = ",".join(repr(s) for s in self.spans)
        return f"[{ds}]v[{ss}]+{self.base!r}"

    # -- loop aggregation ----------------------------------------------------
    def aggregated(
        self, index: str, lower: ExprLike, upper: ExprLike
    ) -> Optional["LMAD"]:
        """Aggregate this per-iteration LMAD across loop ``index = lower..upper``.

        Exact aggregation (Section 2.1's example) succeeds when the loop
        index appears affinely in the base and nowhere in strides or spans:
        a new outermost dimension of stride ``a`` (the index coefficient)
        and span ``a*(upper-lower)`` is appended.  Returns ``None`` when
        exact aggregation fails, in which case the caller introduces a USR
        recurrence node instead.
        """
        lower, upper = as_expr(lower), as_expr(upper)
        for part in (*self.strides, *self.spans):
            if part.depends_on(index):
                return None
        if not self.base.depends_on(index):
            if upper.depends_on(index) or lower.depends_on(index):
                return None
            # Invariant body: the union over iterations is the LMAD itself
            # (provided the loop executes; emptiness is gated by the caller).
            return self
        if not self.base.is_affine_in([index]):
            return None
        coeff = self.base.coeff_of(index)
        if coeff.depends_on(index):
            return None
        rest = self.base.drop(index)
        trip_span = coeff * (upper - lower)
        new_base = rest + coeff * lower
        if coeff.is_constant() and coeff.constant_value() < 0:
            # Flip to a positive stride so interval overestimates stay
            # valid: the smallest index is reached at i = upper.
            return LMAD(
                self.strides + (-coeff,),
                self.spans + (-trip_span,),
                rest + coeff * upper,
            )
        return LMAD(
            self.strides + (coeff,), self.spans + (trip_span,), new_base
        )


def interval(lower: ExprLike, upper: ExprLike) -> LMAD:
    """The dense descriptor ``[1] v [upper-lower] + lower`` = ``[lower, upper]``.

    Empty (negative span) when ``upper < lower``, matching the CIV encoding.
    """
    lower, upper = as_expr(lower), as_expr(upper)
    return LMAD((as_expr(1),), (upper - lower,), lower)


def point(index: ExprLike) -> LMAD:
    """The single-index descriptor ``[]v[] + index``."""
    return LMAD((), (), as_expr(index))
