"""LMAD (linear memory access descriptor) algebra -- the USR leaf domain.

Provides the multi-dimensional descriptor type (:mod:`.lmad`), loop
aggregation, concrete enumeration, and the Fig. 6(a) predicate extraction
for disjointness/inclusion/array coverage (:mod:`.compare`).
"""

from .compare import (
    dense_interval,
    disjoint_lmad_sets,
    disjoint_lmads,
    fills_array,
    included_lmad_sets,
    included_lmads,
    sym_divides,
)
from .lmad import LMAD, interval, point

__all__ = [
    "LMAD",
    "interval",
    "point",
    "disjoint_lmads",
    "included_lmads",
    "disjoint_lmad_sets",
    "included_lmad_sets",
    "fills_array",
    "dense_interval",
    "sym_divides",
]
