"""The monotonicity inference rule (Section 3.3).

Equations of shape ``U_{i=1..N} (S_i  ^  U_{k=1..i-1} S_k) = {}`` -- the
output-independence pattern -- hold whenever the per-iteration summaries
form a monotonic sequence: if the largest index of ``S_i`` is always
smaller than the smallest index of ``S_{i+1}`` (or symmetrically for
decreasing sequences), no two distinct iterations can overlap.

The rule overestimates ``S_i`` by an interval ``[lo(i), hi(i)]`` and
emits the O(N) predicate ``AND_{i=lo..up-1} hi(i) < lo(i+1)``, which for
the paper's Fig. 3(b) example yields exactly
``AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)``.
"""

from __future__ import annotations

from typing import Optional

from ..pdag import PDAG, PFALSE, p_leaf, p_loop_and, p_or
from ..symbolic import b_and, cmp_gt, sym
from ..symbolic.intern import Memo
from ..usr import Gate, Intersect, Recurrence, USR, overestimate, usr_gate

__all__ = ["match_self_overlap", "monotonicity_predicate"]


def _decompose_overlap(node: Recurrence) -> Optional[USR]:
    """Return the per-iteration summary ``S_i`` of a self-overlap node.

    Recognizes both ``U_i (S_i ^ U_{k<i} S_k)`` and the UMEG-reshaped
    form ``U_i (c_i # (T_i ^ U_{k<i} (c_k # T_k)))`` where
    ``S_i = c_i # T_i``.
    """
    body = node.body
    gate_cond = None
    if isinstance(body, Gate):
        gate_cond = body.cond
        body = body.body
    if not isinstance(body, Intersect) or len(body.args) != 2:
        return None
    parts = list(body.args)
    for current, prefix in (parts, parts[::-1]):
        if not isinstance(prefix, Recurrence) or not prefix.partial:
            continue
        expected_upper = sym(node.index) - 1
        if prefix.upper != expected_upper or prefix.lower != node.lower:
            continue
        full_current = (
            usr_gate(gate_cond, current) if gate_cond is not None else current
        )
        renamed = prefix.body.substitute({prefix.index: sym(node.index)})
        if renamed == full_current:
            return full_current
    return None


def match_self_overlap(node: USR) -> Optional[Recurrence]:
    """Match ``U_i (S_i ^ U_{k=..i-1} S_k)`` and return the outer node.

    The body must be an intersection (possibly pushed under the
    iteration's own gate by the UMEG reshaping) of a summary ``S_i`` with
    a partial recurrence whose body is ``S_i`` alpha-renamed to the
    partial index, which is how
    :func:`repro.usr.dataflow.aggregate_loop` builds the
    output-independence equation.
    """
    if not isinstance(node, Recurrence) or node.partial:
        return None
    if _decompose_overlap(node) is None:
        return None
    return node


#: Pure in (node, monotone); evaluated by both the Tier-0 screen and the
#: Tier-1 recurrence arm on the same nodes, so share the result.
_MONO_PRED_MEMO = Memo("core.monotonicity_predicate", max_size=100_000)


def monotonicity_predicate(
    node: Recurrence, monotone: frozenset[str] = frozenset()
) -> PDAG:
    """``AND_i MONOTON(S_i)`` for a matched self-overlap recurrence.

    ``S_i`` is interval-overestimated; monotonically increasing *or*
    decreasing sequences both suffice, with the direction chosen
    globally.  Returns false when no interval overestimate exists.
    """
    key = (node, monotone)
    cached = _MONO_PRED_MEMO.get(key)
    if cached is not None:
        return cached
    return _MONO_PRED_MEMO.put(key, _monotonicity_predicate(node, monotone))


def _monotonicity_predicate(
    node: Recurrence, monotone: frozenset[str] = frozenset()
) -> PDAG:
    current = _decompose_overlap(node)
    if current is None:
        return PFALSE
    est = overestimate(current, monotone)
    if est.failed or not est.lmads:
        return PFALSE
    index = node.index
    lows = []
    highs = []
    for lmad in est.lmads:
        lo, hi = lmad.interval_overestimate()
        lows.append(lo)
        highs.append(hi)
    # Conservative hull when the summary has several LMADs.
    if len(est.lmads) == 1:
        lo_i, hi_i = lows[0], highs[0]
    else:
        from ..symbolic import smax, smin

        lo_i, hi_i = smin(*lows), smax(*highs)
    shift = {index: sym(index) + 1}
    lo_next = lo_i.substitute(shift)
    hi_next = hi_i.substitute(shift)
    # Strictly increasing: every interval ends before the next begins AND
    # the lower endpoints are monotone.  The second conjunct keeps the
    # rule sound when an intermediate iteration's interval is empty
    # (hi < lo), which would otherwise let the chain step backwards.
    #
    # The direction must be chosen GLOBALLY: the disjunction sits outside
    # the loop conjunction.  A per-step choice would wrongly accept
    # alternating sequences like B = [1, 2, 1, 2, ...].
    from ..symbolic import cmp_ge, cmp_le

    increasing = b_and(cmp_gt(lo_next, hi_i), cmp_le(lo_i, lo_next))
    decreasing = b_and(cmp_gt(lo_i, hi_next), cmp_ge(hi_i, hi_next))
    return p_or(
        p_loop_and(index, node.lower, node.upper - 1, p_leaf(increasing)),
        p_loop_and(index, node.lower, node.upper - 1, p_leaf(decreasing)),
    )
