"""Loop-independence equations in the USR domain (Sections 2.2 and 4).

Given the per-iteration and aggregate summaries of an array in a loop
(:class:`repro.usr.dataflow.LoopSummaries`), this module builds the USRs
whose emptiness characterizes:

* **output independence** (Eq. 2): no two iterations write the same
  location first -- ``U_i (WF_i ^ U_{k<i} WF_k) = {}``;
* **flow/anti independence** (Eq. 3): writes never meet reads across
  iterations -- four pairwise terms over the aggregate WF/RO/RW sets plus
  the RW self-overlap recurrence;
* **static last value** (SLV, Section 4): the loop's whole write-first
  set is covered by the last iteration's -- ``U_i WF_i - WF_N = {}``;
* **runtime reduction** (RRED): the reduction accesses of distinct
  iterations do not overlap -- same self-overlap shape over RW.

Each equation is translated by :func:`repro.core.factor.factor` into a
sufficient predicate and cascaded by complexity.
"""

from __future__ import annotations

from typing import Optional

from ..pdag import PDAG, simplify
from ..usr import (
    EMPTY,
    LoopSummaries,
    USR,
    usr_intersect,
    usr_recurrence,
    usr_subtract,
    usr_union,
)
from .factor import FactorContext, factor

__all__ = [
    "output_independence_usr",
    "flow_independence_usr",
    "static_last_value_usr",
    "rw_self_overlap_usr",
    "ext_rred_usr",
    "independence_predicate",
]


def _self_overlap(ls: LoopSummaries, per_iter: USR, prefix: USR) -> USR:
    """``U_i (S_i ^ U_{k<i} S_k)`` -- the cross-iteration overlap set."""
    if per_iter.is_empty_leaf():
        return EMPTY
    body = usr_intersect(per_iter, prefix)
    return usr_recurrence(ls.index, ls.lower, ls.upper, body)


def output_independence_usr(ls: LoopSummaries) -> USR:
    """Eq. 2: the OIND-USR of the array in the loop."""
    return _self_overlap(ls, ls.per_iteration.wf, ls.prefix_writes)


def rw_self_overlap_usr(ls: LoopSummaries) -> USR:
    """``U_i (RW_i ^ U_{k<i} RW_k)``: reduction-access overlap (Sec. 4)."""
    return _self_overlap(ls, ls.per_iteration.rw, ls.prefix_rw)


def _whole_loop(ls: LoopSummaries, per_iter: USR) -> USR:
    if per_iter.is_empty_leaf():
        return EMPTY
    return usr_recurrence(ls.index, ls.lower, ls.upper, per_iter)


def flow_independence_usr(ls: LoopSummaries) -> USR:
    """Eq. 3: the FIND-USR of the array in the loop."""
    all_wf = _whole_loop(ls, ls.per_iteration.wf)
    all_ro = _whole_loop(ls, ls.per_iteration.ro)
    all_rw = _whole_loop(ls, ls.per_iteration.rw)
    terms = [
        usr_intersect(all_wf, all_ro),
        usr_intersect(all_wf, all_rw),
        usr_intersect(all_ro, all_rw),
        rw_self_overlap_usr(ls),
    ]
    live = [t for t in terms if not t.is_empty_leaf()]
    return usr_union(*live) if live else EMPTY


def ext_rred_usr(ls: LoopSummaries) -> USR:
    """The EXT-RRED enabling equation (Section 4): flow independence of
    the write-first accesses against everything, plus their output
    independence -- but NOT the RW self-overlap, which the reduction
    transform tolerates by construction.

    The tolerance is precise only for update accesses; a location whose
    first access in an iteration is a *plain read* (``exposed``) lands
    in RW too once a later statement of the same region writes it, yet
    it carries a real flow dependence against any earlier iteration's
    write (the read observes the pre-loop value under the transform but
    the running state sequentially).  The last term catches exactly
    those: exposed reads meeting a preceding iteration's write or
    update."""
    all_wf = _whole_loop(ls, ls.per_iteration.wf)
    all_ro = _whole_loop(ls, ls.per_iteration.ro)
    all_rw = _whole_loop(ls, ls.per_iteration.rw)
    terms = [
        usr_intersect(all_wf, all_ro),
        usr_intersect(all_wf, all_rw),
        usr_intersect(all_ro, all_rw),
        _self_overlap(ls, ls.per_iteration.wf, ls.prefix_writes),
        _self_overlap(
            ls,
            ls.per_iteration.exposed,
            usr_union(ls.prefix_writes, ls.prefix_rw),
        ),
    ]
    live = [t for t in terms if not t.is_empty_leaf()]
    return usr_union(*live) if live else EMPTY


def static_last_value_usr(ls: LoopSummaries) -> USR:
    """Section 4's SLV equation: ``U_i WF_i  -  WF_{i=N}``."""
    all_wf = _whole_loop(ls, ls.per_iteration.wf)
    last = ls.per_iteration.wf.substitute({ls.index: ls.upper})
    return usr_subtract(all_wf, last)


def independence_predicate(
    usr: USR, ctx: Optional[FactorContext] = None
) -> PDAG:
    """Factor an independence USR into its simplified predicate."""
    return simplify(factor(usr, ctx))
