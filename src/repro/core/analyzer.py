"""The hybrid analyzer: classify a loop and plan its parallelization.

This is the Section 5 driver.  For every array accessed by the target
loop it builds the flow- and output-independence USRs (Section 2.2),
translates them through FACTOR into predicate cascades, and decides the
parallelization strategy per array:

* ``shared``: provably independent, iterations work on the shared array;
* ``private`` (+ SLV/DLV): flow-independent but output-dependent, so the
  array is privatized with copy-in overlay semantics and the last value
  is restored statically (last iteration covers all writes) or
  dynamically;
* ``reduction``: update-shaped accesses run as a parallel reduction
  (SRED), upgraded at runtime to direct access when the RRED predicate
  proves the updates independent, with BOUNDS-COMP when the reduced
  region's bounds cannot be aggregated statically;
* exact fallback: all predicates false -- the executor must run an exact
  test (inspector USR evaluation or LRPD-style speculation).

The loop-level verdict aggregates array verdicts; runtime predicates are
cascaded cheapest-first across arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import profiling as _profiling
from ..ir.ast import Program
from ..ir.summarize import CIVInfo, LoopAnalysisInput, summarize_loop
from ..pdag import Cascade, build_cascade, simplify
from ..symbolic import Expr
from ..symbolic.intern import Memo
from ..usr import USR, overestimate
from .factor import FactorContext, factor
from .independence import (
    ext_rred_usr,
    flow_independence_usr,
    output_independence_usr,
    rw_self_overlap_usr,
    static_last_value_usr,
)
from .screening import screen_static

__all__ = ["ArrayPlan", "LoopPlan", "HybridAnalyzer", "analyze_loop"]


@dataclass
class ArrayPlan:
    """Parallelization decision for one array in the target loop."""

    array: str
    #: 'shared' | 'private' | 'reduction'
    transform: str
    #: runtime flow-independence cascade; None = statically independent
    flow: Optional[Cascade] = None
    #: runtime output-independence cascade; None = statically independent
    output: Optional[Cascade] = None
    #: for private arrays: static-last-value cascade (None = SLV holds
    #: statically; a failing cascade at runtime falls back to DLV)
    slv: Optional[Cascade] = None
    #: for reductions: predicate proving updates independent (RRED)
    rred: Optional[Cascade] = None
    #: reduction needs runtime bounds estimation (BOUNDS-COMP)
    needs_bounds_comp: bool = False
    #: EXT-RRED shape: reduction array also written by plain statements
    extended_reduction: bool = False
    #: every update of this reduction array is additive (delta-merge
    #: safe); when False, a failed/absent RRED proof must fall back to
    #: an exact test instead of the reduction transform
    reduction_additive: bool = True
    #: no cascade could prove independence; exact fallback required
    needs_exact: bool = False
    #: USR whose emptiness the exact fallback must decide
    exact_usr: Optional[USR] = None

    def static_parallel(self) -> bool:
        """True when no runtime work is needed for this array."""
        return (
            self.flow is None
            and self.output is None
            and not self.needs_exact
            and not self.needs_bounds_comp
            and self.rred is None
        )

    def runtime_cascades(self) -> list[tuple[str, Cascade]]:
        out = []
        if self.flow is not None:
            out.append(("flow", self.flow))
        if self.output is not None:
            out.append(("output", self.output))
        return out


@dataclass
class LoopPlan:
    """Complete parallelization plan for one loop."""

    label: str
    index: str
    lower: Expr
    upper: Expr
    arrays: dict[str, ArrayPlan] = field(default_factory=dict)
    civs: list[CIVInfo] = field(default_factory=list)
    #: summarizer hit unanalyzable constructs: conservative fallback only
    approximate: bool = False
    is_while: bool = False
    trip_symbol: Optional[str] = None
    analysis: Optional[LoopAnalysisInput] = None

    # -- tiered-analysis provenance (cost path, never the verdict) ------
    #: which pipeline produced the plan: 'tier0' = every independence
    #: equation resolved by screening (no USR cascade was built),
    #: 'tier1' = the full FACTOR pipeline ran for at least one equation
    tier_used: str = "tier1"
    #: Tier-0 outcome: 'resolved' | 'escalated' | 'off'
    screening: str = "off"
    #: first inconclusive screening query ('array:equation'), '' if none
    escalation_reason: str = ""

    # -- verdicts -------------------------------------------------------
    def static_parallel(self) -> bool:
        return not self.approximate and all(
            p.static_parallel() for p in self.arrays.values()
        )

    def needs_exact_fallback(self) -> bool:
        return self.approximate or any(p.needs_exact for p in self.arrays.values())

    def runtime_tested(self) -> bool:
        return not self.static_parallel() and not self.needs_exact_fallback()

    def has_scalar_dependence(self) -> bool:
        """A non-CIV scalar is read before written across iterations."""
        if self.analysis is None:
            return False
        civs = {c.name for c in self.civs}
        return bool(self.analysis.scalar_flow_deps - civs)

    def classification(self) -> str:
        """The paper's Table 1-3 vocabulary for this loop's status."""
        if self.has_scalar_dependence():
            return "STATIC-SEQ"
        if self.static_parallel():
            if self.civs:
                return "CIVagg"
            if any(p.transform == "reduction" for p in self.arrays.values()):
                return "SRED"
            return "STATIC-PAR"
        if self.needs_exact_fallback():
            return "EXACT"
        kinds = []
        worst = "O(1)"
        for plan in self.arrays.values():
            for kind, cascade in plan.runtime_cascades():
                kinds.append("F" if kind == "flow" else "O")
                label = cascade.cheapest_label() or "O(1)"
                if _complexity_rank(label) > _complexity_rank(worst):
                    worst = label
            if plan.rred is not None:
                kinds.append("R")
                label = plan.rred.cheapest_label() or "O(1)"
                if _complexity_rank(label) > _complexity_rank(worst):
                    worst = label
        bounds = any(p.needs_bounds_comp for p in self.arrays.values())
        kind_set = set(kinds)
        if not kind_set:
            return "BOUNDS-COMP" if bounds else "SRED"
        if kind_set <= {"R"}:
            prefix = "RRED"
        elif "F" in kind_set and "O" in kind_set:
            prefix = "F/OI"
        elif "F" in kind_set:
            prefix = "FI"
        elif "O" in kind_set:
            prefix = "OI"
        else:
            prefix = "RRED"
        label = f"{prefix} {worst}"
        if bounds:
            label += "+BOUNDS-COMP"
        return label

    def techniques(self) -> list[str]:
        """Parallelism-enabling techniques used (Table 1-3 legend)."""
        out = set()
        for plan in self.arrays.values():
            if plan.transform == "private":
                out.add("PRIV")
                if plan.slv is None:
                    out.add("SLV")
                else:
                    out.add("DLV")
            if plan.transform == "reduction":
                if plan.rred is not None:
                    out.add("RRED")
                else:
                    out.add("SRED")
                if plan.extended_reduction:
                    out.add("EXT-RRED")
                if plan.needs_bounds_comp:
                    out.add("BOUNDS-COMP")
        if self.civs:
            out.add("CIVagg")
            out.add("CIV-COMP")
        mono_used = any(
            _cascade_mentions_loop(p.output) or _cascade_mentions_loop(p.rred)
            for p in self.arrays.values()
        )
        if mono_used:
            out.add("MON")
        return sorted(out)


def _cascade_mentions_loop(cascade: Optional[Cascade]) -> bool:
    if cascade is None:
        return False
    return any(stage.predicate.loop_depth() > 0 for stage in cascade.stages)


def _complexity_rank(label: str) -> int:
    if label == "O(1)":
        return 0
    if label == "O(N)":
        return 1
    return 2


#: Memo for loop summarization: (id(program), label, interprocedural) ->
#: (program, LoopAnalysisInput).  The program object is pinned inside the
#: value so its id cannot be recycled while the entry lives.  Summaries
#: are treated as immutable by every consumer (analyzer, executor,
#: baseline), so sharing one instance across analyzer instances -- and
#: across the repeated full-suite runs of the evaluation harness -- is
#: safe.
_SUMMARY_MEMO = Memo("core.summarize_loop", max_size=50_000)

#: Memo for the factor->simplify->cascade pipeline, keyed on the
#: (interned) USR plus every semantic knob of the factor context.  This
#: is the analyzer's dominant cost; repeated analysis of the same loop
#: (per-array reuse, ablation sweeps, batch re-runs) becomes a lookup.
_CASCADE_MEMO = Memo("core.cascade_of", max_size=100_000)


def _summarize_loop_cached(
    program: Program, label: str, interprocedural: bool
) -> LoopAnalysisInput:
    key = (id(program), label, interprocedural)
    cached = _SUMMARY_MEMO.get(key)
    if cached is not None:
        return cached[1]
    analysis = summarize_loop(program, label, interprocedural=interprocedural)
    _SUMMARY_MEMO.put(key, (program, analysis))
    return analysis


#: Equations at or below this node count are screened by running the
#: real (globally memoized) factor pipeline instead of the structural
#: audit: the cost is bounded by the gate and the audit cannot see
#: folds that only ``simplify`` performs.  Deliberately small -- raising
#: it would reclassify genuine Tier-1 work as Tier-0.
_SCREEN_EXACT_GATE = 16


class _TierTrace:
    """Per-analyze record of Tier-0 screening outcomes."""

    __slots__ = ("hits", "misses", "first_miss")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.first_miss = ""

    def miss(self, what: str) -> None:
        self.misses += 1
        if not self.first_miss:
            self.first_miss = what


class HybridAnalyzer:
    """Analyzes labelled loops of a program into :class:`LoopPlan` s."""

    def __init__(self, program: Program, use_monotonicity: bool = True,
                 use_reshaping: bool = True, use_civagg: bool = True,
                 interprocedural: bool = True,
                 size_cap: Optional[int] = None,
                 work_cap: Optional[int] = None,
                 tiering: bool = True):
        self.program = program
        self.use_monotonicity = use_monotonicity
        self.use_reshaping = use_reshaping
        self.use_civagg = use_civagg
        self.interprocedural = interprocedural
        #: optional overrides of FactorContext.size_cap (Section 3.6's
        #: predicate-size bound) and FactorContext.work_cap (inference
        #: budget); None keeps the defaults.  The fuzz harness tightens
        #: both to bound analysis time on adversarial generated programs.
        self.size_cap = size_cap
        self.work_cap = work_cap
        #: Tier-0 screening (repro.core.screening) before each cascade
        #: construction; screening can only short-circuit the FACTOR
        #: pipeline, never change its answer, so the knob trades compile
        #: latency for nothing -- it exists for equivalence testing and
        #: benchmark baselines.
        self.tiering = tiering

    def _context(self, analysis: LoopAnalysisInput, array: str) -> FactorContext:
        from ..ir.convert import to_expr
        from ..symbolic import as_expr

        extent = None
        decl = self.program.array_decl(array)
        if decl is not None:
            size = to_expr(decl.size, {})
            if size is not None:
                extent = (as_expr(1), size)
        monotone = analysis.monotone_arrays if self.use_civagg else frozenset()
        kwargs = {}
        if self.size_cap is not None:
            kwargs["size_cap"] = self.size_cap
        if self.work_cap is not None:
            kwargs["work_cap"] = self.work_cap
        return FactorContext(
            array_extent=extent,
            monotone=monotone,
            use_monotonicity=self.use_monotonicity,
            use_reshaping=self.use_reshaping,
            **kwargs,
        )

    @_profiling.timed("analyzer.analyze")
    def analyze(self, label: str) -> LoopPlan:
        with _profiling.timer("analyzer.summarize"):
            analysis = _summarize_loop_cached(
                self.program, label, self.interprocedural
            )
        plan = LoopPlan(
            label=label,
            index=analysis.index,
            lower=analysis.lower,
            upper=analysis.upper,
            civs=analysis.civs,
            approximate=analysis.approximate,
            is_while=analysis.is_while,
            trip_symbol=analysis.trip_symbol,
            analysis=analysis,
        )
        trace = _TierTrace() if self.tiering else None
        for array, ls in analysis.summaries.items():
            ctx = self._context(analysis, array)
            reduction = analysis.reductions.get(array)
            if reduction is not None:
                plan.arrays[array] = self._plan_reduction(
                    array, ls, ctx, reduction, trace
                )
            else:
                plan.arrays[array] = self._plan_regular(array, ls, ctx, trace)
        if trace is None:
            plan.tier_used, plan.screening = "tier1", "off"
        elif trace.misses == 0:
            plan.tier_used, plan.screening = "tier0", "resolved"
        else:
            plan.tier_used, plan.screening = "tier1", "escalated"
            plan.escalation_reason = trace.first_miss
        return plan

    # -- per-array planning ---------------------------------------------------
    def _tiered_cascade_of(
        self, usr: USR, ctx: FactorContext, trace: Optional[_TierTrace],
        array: str, kind: str,
    ) -> tuple[Optional[Cascade], bool, bool]:
        """:meth:`_cascade_of` behind the Tier-0 screen.

        A positive screen IS the answer ``(None, True, False)`` -- by
        :func:`repro.core.screening.screen_static`'s contract the full
        pipeline would return exactly that triple -- so the cascade
        construction is skipped entirely.  Below ``_SCREEN_EXACT_GATE``
        nodes the screen instead runs the real (memoized) pipeline --
        equivalence is then definitional, the cost is bounded by the
        gate, and it catches tiny equations whose factored predicate
        only ``simplify`` folds to true.  An inconclusive screen
        escalates to Tier-1 and records ``array:kind`` in the trace.
        """
        if trace is not None:
            if screen_static(usr, ctx):
                trace.hits += 1
                return (None, True, False)
            if usr.node_count() <= _SCREEN_EXACT_GATE:
                result = self._cascade_of(usr, ctx)
                if result == (None, True, False):
                    trace.hits += 1
                else:
                    trace.miss(f"{array}:{kind}")
                return result
            trace.miss(f"{array}:{kind}")
        return self._cascade_of(usr, ctx)

    def _plan_regular(
        self, array: str, ls, ctx: FactorContext,
        trace: Optional[_TierTrace] = None,
    ) -> ArrayPlan:
        find = flow_independence_usr(ls)
        oind = output_independence_usr(ls)
        flow_cascade, flow_static, flow_failed = self._tiered_cascade_of(
            find, ctx, trace, array, "flow"
        )
        out_cascade, out_static, out_failed = self._tiered_cascade_of(
            oind, ctx, trace, array, "output"
        )
        if flow_failed:
            from ..usr import usr_union

            return ArrayPlan(
                array=array,
                transform="shared",
                needs_exact=True,
                # The exact test must decide flow AND output independence.
                exact_usr=usr_union(find, oind),
            )
        if not out_failed and out_cascade is not None:
            out_cascade = self._drop_degenerate(out_cascade, ls)
            if out_cascade is None:
                out_failed = True
        if out_failed or not out_static:
            # Output dependences may exist: privatize + last value.  The
            # output cascade, when present, upgrades to shared at runtime.
            slv = static_last_value_usr(ls)
            slv_cascade, slv_static, slv_failed = self._tiered_cascade_of(
                slv, ctx, trace, array, "slv"
            )
            from ..usr import usr_union

            return ArrayPlan(
                array=array,
                transform="private",
                flow=flow_cascade,
                output=None if out_failed else out_cascade,
                slv=None if slv_static else (None if slv_failed else slv_cascade),
                # A runtime flow failure can still be rescued by the
                # exact test; output dependences are already handled by
                # privatization, so only flow matters here.
                exact_usr=find if flow_cascade is not None else None,
            )
        from ..usr import usr_union

        exact = None
        if flow_cascade is not None or out_cascade is not None:
            exact = usr_union(find, oind)
        return ArrayPlan(
            array=array,
            transform="shared",
            flow=flow_cascade,
            output=out_cascade,
            exact_usr=exact,
        )

    def _plan_reduction(
        self, array: str, ls, ctx: FactorContext, info,
        trace: Optional[_TierTrace] = None,
    ) -> ArrayPlan:
        overlap = rw_self_overlap_usr(ls)
        rred_cascade, rred_static, rred_failed = self._tiered_cascade_of(
            overlap, ctx, trace, array, "rred"
        )
        if not rred_failed and not rred_static and rred_cascade is not None:
            rred_cascade = self._drop_degenerate(rred_cascade, ls)
            if rred_cascade is None:
                rred_failed = True
        if rred_static:
            # Updates are provably independent: no reduction transform is
            # needed at all; plan the array like a regular one.
            return self._plan_regular(array, ls, ctx, trace)
        has_other_writes = info.has_other_writes
        # Enabling flow condition: any NON-update access of the array --
        # write-first (EXT-RRED, Section 4) *or* plain read -- must not
        # meet the reduction accesses across iterations.  A read of a
        # location other iterations update would observe the pre-loop
        # value under the reduction transform but the running sum
        # sequentially, so reads gate the transform exactly like writes.
        has_other_reads = not (
            ls.per_iteration.ro.is_empty_leaf()
            and ls.per_iteration.exposed.is_empty_leaf()
        )
        needs_exact = False
        flow_cascade = None
        exact = None
        if has_other_writes or has_other_reads:
            enabling = ext_rred_usr(ls)
            flow_cascade, flow_static, flow_failed = self._tiered_cascade_of(
                enabling, ctx, trace, array, "ext-rred"
            )
            if flow_failed:
                needs_exact = True
                flow_cascade = None
            exact = enabling
        if not info.additive:
            # Non-additive updates cannot be delta-merged: the only
            # parallel avenues are a passing RRED cascade (updates
            # proven disjoint at runtime -> direct access) or an exact
            # test over every access including the update overlap.
            from ..usr import usr_union

            exact = usr_union(exact, overlap) if exact is not None else overlap
            if rred_failed:
                # No cascade can validate the updates either: the exact
                # test is the only avenue, and the plan must say so (a
                # silent rred=None here would read as a statically valid
                # SRED, which the executor never runs).
                needs_exact = True
        bounds_needed = self._needs_bounds_comp(ls, ctx)
        return ArrayPlan(
            array=array,
            transform="reduction",
            flow=flow_cascade,
            rred=None if rred_static else (None if rred_failed else rred_cascade),
            needs_bounds_comp=bounds_needed,
            extended_reduction=has_other_writes,
            reduction_additive=info.additive,
            needs_exact=needs_exact,
            exact_usr=exact,
        )

    def _drop_degenerate(self, cascade: Cascade, ls) -> Optional[Cascade]:
        """Remove cascade stages whose predicates only constrain the loop
        bounds themselves (they pass only for <= 1 iteration -- e.g.
        ``N < 2`` -- and would misreport a privatization loop as runtime
        tested).  Returns None when nothing meaningful remains."""
        from ..pdag import CascadeStage

        bound_syms = ls.lower.free_symbols() | ls.upper.free_symbols()
        kept = [
            stage
            for stage in cascade.stages
            if not stage.predicate.free_symbols() <= bound_syms
        ]
        if not kept:
            return None
        return Cascade(kept)

    def _needs_bounds_comp(self, ls, ctx: FactorContext) -> bool:
        """Reduction bounds are unknown statically: the whole-loop RW
        region has no LMAD overestimate (index arrays etc.), so the
        runtime must MIN/MAX-reduce them (Fig. 7(a))."""
        from ..usr import usr_recurrence

        rw_total = usr_recurrence(
            ls.index, ls.lower, ls.upper, ls.per_iteration.rw
        )
        est = overestimate(rw_total, ctx.monotone)
        return est.failed

    def _cascade_of(
        self, usr: USR, ctx: FactorContext
    ) -> tuple[Optional[Cascade], bool, bool]:
        """(cascade, statically_true, failed): factor + simplify + cascade.

        ``statically_true`` means no runtime test is needed at all;
        ``failed`` means the predicate is identically false (the paper's
        'resort to exact test' case).

        Memoized globally on (usr, factor-context knobs).  *ctx* only
        contributes its knobs: the factoring itself runs in a fresh
        :class:`FactorContext` so mutable per-context state (the fresh-
        index counter, per-context memos) cannot leak into the cached
        value -- identical keys yield bit-identical cascades regardless
        of call order or cache warmth.
        """
        from dataclasses import fields as _dc_fields

        # Every public FactorContext field is a semantic knob; deriving
        # the memo key and the fresh-context copy from the dataclass
        # definition means a future knob can never be forgotten in one
        # of them (which would serve cascades across configurations).
        knobs = {
            f.name: getattr(ctx, f.name)
            for f in _dc_fields(FactorContext)
            if not f.name.startswith("_")
        }
        key = (usr,) + tuple(knobs[name] for name in sorted(knobs))
        cached = _CASCADE_MEMO.get(key)
        if cached is not None:
            return cached
        fresh_ctx = FactorContext(**knobs)
        pred = simplify(factor(usr, fresh_ctx))
        if pred.is_true():
            result = (None, True, False)
        elif pred.is_false():
            result = (None, False, True)
        else:
            result = (build_cascade(pred), False, False)
        return _CASCADE_MEMO.put(key, result)


def analyze_loop(program: Program, label: str, **kwargs) -> LoopPlan:
    """Analyze one labelled loop of *program*.

    .. deprecated::
        Thin shim kept for existing call sites; it delegates to the
        process-wide :func:`repro.api.default_engine`, so repeated calls
        share the engine's compiled-program and plan memos.  New code
        should hold an :class:`repro.api.Engine` and use
        ``engine.compile(source).plan(label)`` directly.
    """
    from ..api import default_engine

    return default_engine().compile(program).plan(label, **kwargs)
