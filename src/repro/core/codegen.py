"""Predicate code generation and placement (Section 5).

The paper's compiler emits the predicate cascade as real Fortran code:
the *loop slice* computing each predicate's inputs is extracted, every
leaf is placed at the *most dominated definition* (MDD) of its input
symbols, composition nodes at the common post-dominator, non-constant
predicates become parallel and/or-reductions, and the per-symbol
cascades are chained so "the first successful predicate disables the
evaluation of the rest".

Our runtime executes cascades directly (the interpreter plays the role
of the generated code), so this module produces the *plan* of that
generated code -- an ordered, deduplicated test schedule with slice and
placement information -- both as a structured object the executor's
behaviour can be checked against and as printable pseudo-code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..pdag import Cascade
from .analyzer import LoopPlan

__all__ = ["RuntimeTest", "TestSchedule", "generate_schedule", "format_schedule"]


@dataclass(frozen=True)
class RuntimeTest:
    """One emitted runtime test."""

    array: str
    #: 'flow' | 'output' | 'rred' | 'slv'
    kind: str
    #: cascade stage label, e.g. 'O(1)'
    complexity: str
    #: input symbols the test's slice must compute
    inputs: frozenset[str]
    #: evaluated as a parallel and/or-reduction (non-constant complexity)
    parallel_reduction: bool
    #: order rank within the schedule (lower runs earlier)
    rank: int


@dataclass
class TestSchedule:
    """The generated code's test plan for one loop."""

    label: str
    tests: list[RuntimeTest] = field(default_factory=list)
    #: names precomputed by loop slices before the tests run (CIV-COMP)
    precomputed: list[str] = field(default_factory=list)
    #: arrays whose bounds a BOUNDS-COMP pass must estimate first
    bounds_comp: list[str] = field(default_factory=list)
    #: arrays with an exact-test fallback after the cascade
    exact_fallback: list[str] = field(default_factory=list)

    def ordered_kinds(self) -> list[str]:
        return [t.complexity for t in self.tests]


_COMPLEXITY_RANK = {"O(1)": 0, "O(N)": 1}


def _rank(label: str) -> int:
    return _COMPLEXITY_RANK.get(label, 2)


def _tests_of(array: str, kind: str, cascade: Optional[Cascade]) -> list[tuple]:
    if cascade is None:
        return []
    out = []
    for stage in cascade.stages:
        out.append(
            (
                array,
                kind,
                stage.label,
                frozenset(stage.predicate.free_symbols()),
                stage.predicate.loop_depth() > 0,
            )
        )
    return out


def generate_schedule(plan: LoopPlan) -> TestSchedule:
    """Emit the Section 5 test schedule for a planned loop.

    Tests across all arrays are merged and ordered by estimated
    complexity (cheapest first), deduplicating stages that share the
    same predicate inputs at the same complexity for the same array.
    """
    schedule = TestSchedule(label=plan.label)
    raw: list[tuple] = []
    for array, aplan in plan.arrays.items():
        raw.extend(_tests_of(array, "flow", aplan.flow))
        raw.extend(_tests_of(array, "output", aplan.output))
        raw.extend(_tests_of(array, "rred", aplan.rred))
        raw.extend(_tests_of(array, "slv", aplan.slv))
        if aplan.needs_bounds_comp:
            schedule.bounds_comp.append(array)
        if aplan.needs_exact or aplan.exact_usr is not None:
            schedule.exact_fallback.append(array)
    raw.sort(key=lambda t: (_rank(t[2]), t[0], t[1]))
    seen = set()
    for rank, (array, kind, label, inputs, par) in enumerate(raw):
        key = (array, kind, label)
        if key in seen:
            continue
        seen.add(key)
        schedule.tests.append(
            RuntimeTest(
                array=array,
                kind=kind,
                complexity=label,
                inputs=inputs,
                parallel_reduction=par,
                rank=rank,
            )
        )
    for info in plan.civs:
        schedule.precomputed.append(info.prefix_array)
    if plan.is_while and plan.trip_symbol:
        schedule.precomputed.append(plan.trip_symbol)
    return schedule


def format_schedule(schedule: TestSchedule) -> str:
    """Render the schedule as the pseudo-code the compiler would emit."""
    lines = [f"! runtime tests for loop {schedule.label}"]
    for name in schedule.precomputed:
        lines.append(f"CALL precompute_slice({name})   ! CIV-COMP")
    for arr in schedule.bounds_comp:
        lines.append(f"CALL bounds_comp({arr})          ! MIN/MAX reduction")
    for test in schedule.tests:
        how = "DOALL and-reduce" if test.parallel_reduction else "scalar"
        inputs = ", ".join(sorted(test.inputs)) or "-"
        lines.append(
            f"IF (.NOT. done) done = test_{test.kind}_{test.array}"
            f"()  ! {test.complexity}, {how}; inputs: {inputs}"
        )
    for arr in schedule.exact_fallback:
        lines.append(f"IF (.NOT. done) CALL exact_test({arr})  ! inspector/TLS")
    lines.append("IF (done) run parallel ELSE run sequential")
    return "\n".join(lines)
