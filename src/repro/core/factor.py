"""The FACTOR logic-inference algorithm (Fig. 5) -- the paper's core.

``factor(S)`` translates a USR ``S`` into a PDAG predicate ``P`` with the
*sufficiency* invariant ``P => (S = {})``.  The translation recurses by
inference on set-algebra properties:

* a union is empty when every operand is;
* a gated summary is empty when the gate fails or the body is empty;
* a difference is empty when the minuend is empty or included in the
  subtrahend (-> ``included``);
* an intersection is empty when an operand is empty or the operands are
  disjoint (-> ``disjoint``);
* a recurrence is empty when every iteration's summary is (a loop
  conjunction) -- unless it matches the self-overlap pattern, where the
  monotonicity rule of Section 3.3 fires first.

``included``/``disjoint`` implement the numbered helper rules (1)-(5) of
Fig. 5, falling back to the conditional LMAD estimates of Section 3.2
(``INCLUDED_APP``/``DISJOINT_APP``) when no structural rule applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import profiling as _profiling

from ..lmad import (
    disjoint_lmad_sets,
    fills_array,
    included_lmad_sets,
)
from ..pdag import (
    PDAG,
    PFALSE,
    PTRUE,
    p_and,
    p_call,
    p_leaf,
    p_loop_and,
    p_or,
)
from ..symbolic import Expr, b_not, sym
from ..symbolic.intern import Memo
from ..usr import (
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Union,
    USR,
    overestimate,
    reshape,
    underestimate,
)
from .monotonic import match_self_overlap, monotonicity_predicate

__all__ = ["FactorContext", "factor", "included", "disjoint"]


def _bound_indices(s: USR) -> frozenset[str]:
    """All recurrence index names bound anywhere inside *s*."""
    out = set()
    if isinstance(s, Recurrence):
        out.add(s.index)
    for child in s.children():
        out |= _bound_indices(child)
    return frozenset(out)


def _rename_recurrence(u: Recurrence, ctx: "FactorContext") -> Recurrence:
    """Alpha-rename a recurrence's index to a fresh name."""
    fresh = ctx.fresh_index(u.index)
    body = u.body.substitute({u.index: sym(fresh)})
    return Recurrence(fresh, u.lower, u.upper, body, partial=u.partial)


@dataclass
class FactorContext:
    """Analysis-wide knobs and context for one factorization run.

    ``array_extent`` is the declared index range of the summarized array,
    needed by the ``FILLS_ARR`` rule (5); the feature flags exist for the
    ablation studies of DESIGN.md.
    """

    array_extent: Optional[tuple[Expr, Expr]] = None
    #: opaque arrays known non-decreasing (CIV prefix arrays, Section 3.3)
    monotone: frozenset[str] = frozenset()
    use_monotonicity: bool = True
    use_reshaping: bool = True
    #: distribute DISJOINT over single recurrences (AND over iterations).
    #: NOT part of the paper's Fig. 5 rule set -- it manufactures O(N^2)
    #: pairwise tests where the paper falls back to exact tests/TLS --
    #: so it defaults off; the ablation benches can enable it.
    distribute_disjoint_recurrences: bool = False
    max_depth: int = 64
    #: node-size bound on emitted predicates (Section 3.6: "we bound a
    #: potential explosion in predicate size via a convenient constant
    #: factor"); oversized results are dropped to false (still sufficient).
    size_cap: int = 50_000
    #: optional bound on the number of factor/included/disjoint
    #: subproblems explored per run.  The pair recursion is memoized but
    #: its subproblem space is still combinatorial on adversarial
    #: summaries; once the budget is spent every further query folds to
    #: false (still sufficient -- the loop falls back to exact tests).
    #: Deterministic, unlike a wall-clock bound.  None = unlimited.
    work_cap: Optional[int] = None
    _fresh: int = field(default=0, repr=False)
    _work: int = field(default=0, repr=False)
    _factor_memo: dict = field(default_factory=dict, repr=False)
    _incl_memo: dict = field(default_factory=dict, repr=False)
    _disj_memo: dict = field(default_factory=dict, repr=False)

    def fresh_index(self, base: str) -> str:
        self._fresh += 1
        return f"{base}${self._fresh}"

    def spend(self) -> bool:
        """Consume one unit of inference budget; True when exhausted."""
        if self.work_cap is None:
            return False
        if self._work >= self.work_cap:
            return True
        self._work += 1
        return False


def _leaf_empty(leaf: Leaf) -> PDAG:
    from ..usr.estimate import _leaf_empty_pred

    return p_leaf(_leaf_empty_pred(leaf))


@_profiling.timed("core.factor")
def factor(s: USR, ctx: Optional[FactorContext] = None) -> PDAG:
    """Translate summary *s* into a sufficient emptiness predicate."""
    ctx = ctx or FactorContext()
    if ctx.use_reshaping:
        s = reshape(s)
    result = _factor(s, ctx, ctx.max_depth)
    if ctx.monotone:
        result = _fold_monotone_leaves(result, ctx.monotone)
    return result


def _fold_monotone_leaves(
    pred: PDAG, monotone: frozenset[str], memo: Optional[dict] = None
) -> PDAG:
    """Fold comparison leaves provable from CIV monotonicity facts.

    PDAGs are DAGs with heavy structural sharing; the *memo* (per top
    call, keyed on node identity semantics via the cached hashes) keeps
    this walk linear in the number of distinct nodes -- a naive tree
    recursion is exponential on factored predicates.
    """
    from ..pdag import PAnd, PCall, PLeaf, PLoopAnd, POr
    from ..symbolic.monotone import monotone_simplify

    if memo is None:
        memo = {}
    cached = memo.get(pred)
    if cached is not None:
        return cached
    if isinstance(pred, PLeaf):
        result = p_leaf(monotone_simplify(pred.cond, monotone))
    elif isinstance(pred, PAnd):
        result = p_and(
            *(_fold_monotone_leaves(a, monotone, memo) for a in pred.args)
        )
    elif isinstance(pred, POr):
        result = p_or(
            *(_fold_monotone_leaves(a, monotone, memo) for a in pred.args)
        )
    elif isinstance(pred, PCall):
        result = p_call(
            pred.callee, _fold_monotone_leaves(pred.body, monotone, memo)
        )
    elif isinstance(pred, PLoopAnd):
        result = p_loop_and(
            pred.index,
            pred.lower,
            pred.upper,
            _fold_monotone_leaves(pred.body, monotone, memo),
        )
    else:
        raise TypeError(f"unknown PDAG node {pred!r}")
    memo[pred] = result
    return result


def _capped(result: PDAG, ctx: FactorContext) -> PDAG:
    """Enforce Section 3.6's predicate-size bound: an oversized result
    is dropped to false, which stays sufficient (the paper: "we bound a
    potential explosion in predicate size via a convenient constant
    factor").  Without this, the included/disjoint double recursion can
    go combinatorial on adversarial (e.g. fuzz-generated) summaries."""
    if result.node_count() > ctx.size_cap:
        return PFALSE
    return result


def _factor(s: USR, ctx: FactorContext, fuel: int) -> PDAG:
    if fuel <= 0:
        return PFALSE
    cached = ctx._factor_memo.get(s)
    if cached is not None:
        return cached
    if ctx.spend():
        return PFALSE
    result = _capped(_factor_uncached(s, ctx, fuel), ctx)
    ctx._factor_memo[s] = result
    return result


def _factor_uncached(s: USR, ctx: FactorContext, fuel: int) -> PDAG:
    if isinstance(s, Leaf):
        return _leaf_empty(s)
    if isinstance(s, Gate):
        return p_or(p_leaf(b_not(s.cond)), _factor(s.body, ctx, fuel - 1))
    if isinstance(s, Union):
        return p_and(*(_factor(a, ctx, fuel - 1) for a in s.args))
    if isinstance(s, Subtract):
        return p_or(
            _factor(s.left, ctx, fuel - 1),
            included(s.left, s.right, ctx, fuel - 1),
        )
    if isinstance(s, Intersect):
        parts = [_factor(a, ctx, fuel - 1) for a in s.args]
        pairs = []
        for i in range(len(s.args)):
            for j in range(i + 1, len(s.args)):
                pairs.append(disjoint(s.args[i], s.args[j], ctx, fuel - 1))
        return p_or(*parts, *pairs)
    if isinstance(s, CallSite):
        return p_call(s.callee, _factor(s.body, ctx, fuel - 1))
    if isinstance(s, Recurrence):
        if ctx.use_monotonicity and not s.partial:
            matched = match_self_overlap(s)
            if matched is not None:
                mono = monotonicity_predicate(matched, ctx.monotone)
                if not mono.is_false():
                    # The loop conjunction of per-iteration emptiness also
                    # suffices; keep both avenues.
                    per_iter = p_loop_and(
                        s.index, s.lower, s.upper, _factor(s.body, ctx, fuel - 1)
                    )
                    return p_or(mono, per_iter)
        return p_loop_and(s.index, s.lower, s.upper, _factor(s.body, ctx, fuel - 1))
    raise TypeError(f"unknown USR node {s!r}")


# -- INCLUDED ----------------------------------------------------------------


def included(s1: USR, s2: USR, ctx: FactorContext, fuel: int) -> PDAG:
    """Sufficient predicate for ``s1`` to be a subset of ``s2``."""
    if fuel <= 0:
        return PFALSE
    if s1 == s2:
        return PTRUE
    memo_key = (s1, s2)
    cached = ctx._incl_memo.get(memo_key)
    if cached is not None:
        return cached
    if ctx.spend():
        return PFALSE
    result = _capped(_included_uncached(s1, s2, ctx, fuel), ctx)
    ctx._incl_memo[memo_key] = result
    return result


def _included_uncached(s1: USR, s2: USR, ctx: FactorContext, fuel: int) -> PDAG:
    # Rule (3): recurrences over the same loop compare iteration-wise.
    if (
        isinstance(s1, Recurrence)
        and isinstance(s2, Recurrence)
        and _same_loop(s1, s2)
    ):
        body2 = s2.body.substitute({s2.index: sym(s1.index)})
        return p_loop_and(
            s1.index, s1.lower, s1.upper, included(s1.body, body2, ctx, fuel - 1)
        )
    p1 = _included_h(s1, s2, ctx, fuel - 1)
    if p1.is_true():
        return p1
    return p_or(p1, _included_app(s1, s2, ctx))


def _included_h(s: USR, u: USR, ctx: FactorContext, fuel: int) -> PDAG:
    """Structural inclusion rules, casing on target *u* then source *s*."""
    if fuel <= 0:
        return PFALSE
    p1: PDAG = PFALSE
    if isinstance(u, Gate):
        p1 = p_and(p_leaf(u.cond), included(s, u.body, ctx, fuel - 1))
    elif isinstance(u, Union):
        p1 = p_or(*(included(s, a, ctx, fuel - 1) for a in u.args))
    elif isinstance(u, Subtract):
        # Rule (4): S included in S1 - S2 if S in S1 and S disjoint S2.
        p1 = p_and(
            included(s, u.left, ctx, fuel - 1),
            disjoint(s, u.right, ctx, fuel - 1),
        )
    elif isinstance(u, Intersect):
        p1 = p_and(*(included(s, a, ctx, fuel - 1) for a in u.args))
    elif isinstance(u, Leaf):
        # Rule (5): an LMAD covering the whole declared array includes
        # any summary of the same array.
        if ctx.array_extent is not None and len(u.lmads) == 1:
            lo, hi = ctx.array_extent
            p1 = p_leaf(fills_array(u.lmads[0], lo, hi))
    elif isinstance(u, CallSite):
        p1 = p_call(u.callee, included(s, u.body, ctx, fuel - 1))
    elif isinstance(u, Recurrence):
        # S in U_i S2_i if S is in one iteration's summary; pick lower
        # and upper instances as cheap witnesses.
        for witness in (u.lower, u.upper):
            inst = u.body.substitute({u.index: witness})
            p1 = p_or(p1, included(s, inst, ctx, fuel - 1))

    p2: PDAG = PFALSE
    if isinstance(s, Gate):
        p2 = p_or(p_leaf(b_not(s.cond)), included(s.body, u, ctx, fuel - 1))
    elif isinstance(s, Union):
        p2 = p_and(*(included(a, u, ctx, fuel - 1) for a in s.args))
    elif isinstance(s, Subtract):
        p2 = included(s.left, u, ctx, fuel - 1)
    elif isinstance(s, Intersect):
        p2 = p_or(*(included(a, u, ctx, fuel - 1) for a in s.args))
    elif isinstance(s, CallSite):
        p2 = p_call(s.callee, included(s.body, u, ctx, fuel - 1))
    elif isinstance(s, Recurrence):
        if s.index in u.free_symbols() or s.index in _bound_indices(u):
            s = _rename_recurrence(s, ctx)
        if s.index not in u.free_symbols():
            p2 = p_loop_and(
                s.index, s.lower, s.upper, included(s.body, u, ctx, fuel - 1)
            )
    elif isinstance(s, Leaf) and isinstance(u, Leaf):
        p2 = p_leaf(included_lmad_sets(s.lmads, u.lmads))
    return p_or(p1, p2)


#: The APP fallbacks are pure functions of their summaries and the
#: monotone-fact set (the only context field they read), and both the
#: Tier-0 screening audit and the Tier-1 factoring evaluate them on the
#: same operand pairs -- memoizing globally makes the screen's probes
#: free on escalation instead of doubled.
_INCLUDED_APP_MEMO = Memo("core.included_app", max_size=200_000)
_DISJOINT_APP_MEMO = Memo("core.disjoint_app", max_size=200_000)


def _included_app(c: USR, d: USR, ctx: FactorContext) -> PDAG:
    """Fallback to the LMAD domain via conditional estimates."""
    key = (c, d, ctx.monotone)
    cached = _INCLUDED_APP_MEMO.get(key)
    if cached is not None:
        return cached
    over_c = overestimate(c, ctx.monotone)
    under_d = underestimate(d)
    pieces: list[PDAG] = [p_leaf(over_c.pred)]
    if not over_c.failed and not under_d.failed:
        pieces.append(
            p_and(
                p_leaf(under_d.pred),
                p_leaf(included_lmad_sets(over_c.lmads, under_d.lmads)),
            )
        )
    return _INCLUDED_APP_MEMO.put(key, p_or(*pieces))


# -- DISJOINT ----------------------------------------------------------------


def _same_loop(a: Recurrence, b: Recurrence) -> bool:
    if a.lower != b.lower:
        return False
    if a.index == b.index:
        return a.upper == b.upper
    renamed = b.upper.substitute({b.index: sym(a.index)})
    return a.upper == renamed


def disjoint(s1: USR, s2: USR, ctx: FactorContext, fuel: int) -> PDAG:
    """Sufficient predicate for ``s1`` and ``s2`` to not intersect."""
    if fuel <= 0:
        return PFALSE
    memo_key = frozenset((s1, s2)) if s1 != s2 else (s1, s2)
    cached = ctx._disj_memo.get(memo_key)
    if cached is not None:
        return cached
    if ctx.spend():
        return PFALSE
    result = _capped(_disjoint_uncached(s1, s2, ctx, fuel), ctx)
    ctx._disj_memo[memo_key] = result
    return result


def _disjoint_uncached(s1: USR, s2: USR, ctx: FactorContext, fuel: int) -> PDAG:
    # Rule (1): two recurrences over the same loop.  Iteration-wise
    # disjointness does NOT imply set disjointness, so compare
    # loop-invariant overestimates of the bodies instead.
    if (
        isinstance(s1, Recurrence)
        and isinstance(s2, Recurrence)
        and not s1.partial
        and not s2.partial
        and _same_loop(s1, s2)
    ):
        inv1 = _invariant_overestimate(s1.body, s1.index, s1.lower, s1.upper)
        inv2 = _invariant_overestimate(s2.body, s2.index, s2.lower, s2.upper)
        if inv1 is not None and inv2 is not None:
            rule1 = disjoint(inv1, inv2, ctx, fuel - 1)
            if not rule1.is_false():
                return rule1
    p1 = _disjoint_h(s1, s2, ctx, fuel - 1)
    if p1.is_true():
        return p1
    p2 = _disjoint_h(s2, s1, ctx, fuel - 1)
    if p2.is_true():
        return p2
    return p_or(p1, p2, _disjoint_app(s1, s2, ctx))


def _invariant_overestimate(body: USR, index: str, lower, upper) -> Optional[USR]:
    """Overestimate *body* by something invariant in *index*: filter out
    loop-variant gates, and aggregate index-dependent LMAD leaves over
    the whole index range (how Fig. 9(b)'s ``C_inv_i`` covers all of
    loop k while keeping its gates)."""
    if index not in body.free_symbols():
        return body
    if isinstance(body, Leaf):
        out = []
        for lmad in body.lmads:
            agg = lmad.aggregated(index, lower, upper)
            if agg is None:
                return None
            out.append(agg)
        return Leaf(out)
    if isinstance(body, Gate):
        if index in body.cond.free_symbols():
            return _invariant_overestimate(body.body, index, lower, upper)
        inner = _invariant_overestimate(body.body, index, lower, upper)
        if inner is None:
            return None
        from ..usr import usr_gate

        return usr_gate(body.cond, inner)
    if isinstance(body, Union):
        from ..usr import usr_union

        parts = [_invariant_overestimate(a, index, lower, upper) for a in body.args]
        if any(p is None for p in parts):
            return None
        return usr_union(*parts)
    if isinstance(body, Subtract):
        return _invariant_overestimate(body.left, index, lower, upper)
    if isinstance(body, Intersect):
        for a in body.args:
            inv = _invariant_overestimate(a, index, lower, upper)
            if inv is not None:
                return inv
        return None
    if isinstance(body, CallSite):
        return _invariant_overestimate(body.body, index, lower, upper)
    # Irreducible index-dependent nodes (e.g. an inner-loop recurrence of
    # subtractions): fall back to the LMAD overestimate operator, then
    # aggregate its result over this loop's range.
    est = overestimate(body)
    if est.failed:
        return None
    out = []
    for lmad in est.lmads:
        if index in lmad.free_symbols():
            agg = lmad.aggregated(index, lower, upper)
            if agg is None:
                return None
            out.append(agg)
        else:
            out.append(lmad)
    return Leaf(out)


def _disjoint_h(u: USR, s: USR, ctx: FactorContext, fuel: int) -> PDAG:
    """Structural disjointness rules casing on the first operand."""
    if fuel <= 0:
        return PFALSE
    if isinstance(u, Gate):
        return p_or(p_leaf(b_not(u.cond)), disjoint(u.body, s, ctx, fuel - 1))
    if isinstance(u, Union):
        return p_and(*(disjoint(a, s, ctx, fuel - 1) for a in u.args))
    if isinstance(u, Subtract):
        # Rule (2): S disjoint from S1-S2 if disjoint from S1, or S is
        # included in S2 (then S cannot survive the subtraction).
        return p_or(
            disjoint(u.left, s, ctx, fuel - 1),
            included(s, u.right, ctx, fuel - 1),
        )
    if isinstance(u, Intersect):
        return p_or(*(disjoint(a, s, ctx, fuel - 1) for a in u.args))
    if isinstance(u, CallSite):
        return p_call(u.callee, disjoint(u.body, s, ctx, fuel - 1))
    if (
        isinstance(u, Recurrence)
        and not u.partial
        and ctx.distribute_disjoint_recurrences
    ):
        # A single recurrence IS iteration-distributable: U_i S_i is
        # disjoint from S when every S_i is.  Rename the bound index when
        # it collides with S's free symbols OR with any index bound
        # inside S (which would otherwise capture it when S distributes
        # its own recurrences).
        if u.index in s.free_symbols() or u.index in _bound_indices(s):
            u = _rename_recurrence(u, ctx)
        if u.index not in s.free_symbols():
            return p_loop_and(
                u.index, u.lower, u.upper, disjoint(u.body, s, ctx, fuel - 1)
            )
    return PFALSE


def _disjoint_app(c: USR, d: USR, ctx: FactorContext) -> PDAG:
    key = (c, d, ctx.monotone)
    cached = _DISJOINT_APP_MEMO.get(key)
    if cached is not None:
        return cached
    over_c = overestimate(c, ctx.monotone)
    over_d = overestimate(d, ctx.monotone)
    pieces: list[PDAG] = [p_leaf(over_c.pred), p_leaf(over_d.pred)]
    if not over_c.failed and not over_d.failed:
        pieces.append(p_leaf(disjoint_lmad_sets(over_c.lmads, over_d.lmads)))
    return _DISJOINT_APP_MEMO.put(key, p_or(*pieces))
