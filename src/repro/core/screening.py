"""Tier-0 screening: cheap sufficient checks that FACTOR yields true.

The tiered analysis pipeline (ROADMAP: "cold-path compile latency")
resolves the easy majority of independence equations without running
the full :func:`repro.core.factor.factor` translation.
:func:`screen_static` answers one question at O(|USR|) cost:

    would ``simplify(factor(usr, ctx'))`` -- for a *fresh* context
    ``ctx'`` carrying the same knobs -- be literally ``PTRUE``?

``True`` is a proof; ``False`` only means "inconclusive, escalate to
Tier-1".  The hard invariant (screening may short-circuit the full
pipeline but never change its answer) therefore reduces to the
soundness of each rule below, which the tier-equivalence fuzz matrix
re-checks end to end on every CI run.

Soundness rests on three properties of the full pipeline:

* **eager constant folding**: the PDAG smart constructors fold
  ``p_or(PTRUE, anything)`` to ``PTRUE``, ``p_and`` of trues to
  ``PTRUE``, ``p_loop_and(.., PTRUE)`` to ``PTRUE``; ``_capped``,
  ``simplify`` and ``_fold_monotone_leaves`` all map ``PTRUE`` to
  ``PTRUE``.  So proving any disjunct of a factor rule literally true
  proves the whole translation true.
* **the APP fallbacks are always in the disjunction** -- except for the
  recurrence-vs-recurrence shortcuts (DISJOINT rule (1), INCLUDED rule
  (3)), which return early *without* the LMAD fallback.  Pair rules
  here therefore refuse recurrence pairs those shortcuts could claim.
* **budget exhaustion folds to false**: with a finite
  :attr:`~repro.core.factor.FactorContext.work_cap` a subterm can fold
  to false purely because an earlier sibling's exploration spent the
  budget.  The audit tracks an upper bound on the *total* budget the
  full exploration would consume; under a finite cap a claim is only
  valid when that bound fits, or when the folding disjunct is computed
  before any budget is spent on siblings (the "fold-immune" top-level
  rules).
"""

from __future__ import annotations

from typing import Optional

from .. import profiling as _profiling
from ..symbolic import b_not
from ..usr import (
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Union,
    USR,
    reshape,
)
from ..usr.estimate import _leaf_empty_pred
from .factor import (
    FactorContext,
    _disjoint_app,
    _fold_monotone_leaves,
    _included_app,
    _included_h,
)
from .monotonic import match_self_overlap, monotonicity_predicate

__all__ = ["screen_static"]

#: Below these context bounds every claim is refused outright: the full
#: pipeline could fold even trivial proofs to false (fuel or budget runs
#: out before the folding node is reached, or the size cap drops the
#: constant-true result).
_MIN_DEPTH = 4
_MIN_SIZE = 4


def _mono_true(s: Recurrence, ctx: FactorContext) -> bool:
    """The Section 3.3 monotonicity predicate folds to literal true.

    Mirrors the Recurrence arm of ``_factor_uncached``: when the rule
    fires with a non-false predicate the result is
    ``p_or(mono, per_iter)``, which is ``PTRUE`` whenever ``mono`` is --
    regardless of what the per-iteration exploration returns.  When the
    context carries monotone facts, ``factor`` additionally rewrites
    comparison leaves through ``_fold_monotone_leaves``, so a predicate
    that folds true *under those facts* is an equally valid claim.
    """
    if not ctx.use_monotonicity or s.partial:
        return False
    if match_self_overlap(s) is None:
        return False
    mono = monotonicity_predicate(s, ctx.monotone)
    if mono.is_false():
        # factor takes the plain loop-conjunction path in this case; the
        # monotonicity avenue proves nothing.
        return False
    if mono.is_true():
        return True
    if ctx.monotone:
        return _fold_monotone_leaves(mono, ctx.monotone).is_true()
    return False


def _pair_audit(
    a: USR, b: USR, ctx: FactorContext, fuel: int
) -> tuple[Optional[int], bool]:
    """(budget bound, provable truth) of ``disjoint(a, b, ctx, fuel)``.

    Truth leans on the DISJOINT_APP fallback, which sits in the final
    disjunction for every operand shape except a pair of non-partial
    recurrences (rule (1) can return early without it).
    """
    if fuel <= 0:
        return (0, False)
    if (
        isinstance(a, Recurrence)
        and isinstance(b, Recurrence)
        and not a.partial
        and not b.partial
    ):
        return (None, False)
    true = _disjoint_app(a, b, ctx).is_true()

    # Budget: one spend for the disjoint() entry, and none below it --
    # but only when the structural rules cannot recurse: leaves have no
    # structural arm at all, and recurrences only recurse when the
    # (off-by-default) distribution knob is set.
    def _flat(x: USR) -> bool:
        return isinstance(x, Leaf) or (
            isinstance(x, Recurrence)
            and not ctx.distribute_disjoint_recurrences
        )

    cost = 1 if _flat(a) and _flat(b) else None
    return (cost, true)


def _included_audit(
    s: USR, u: USR, ctx: FactorContext, fuel: int
) -> tuple[Optional[int], bool]:
    """(budget bound, provable truth) of ``included(s, u, ctx, fuel)``.

    Same shape as :func:`_pair_audit`: INCLUDED_APP is always in the
    disjunction except for the recurrence-pair rule (3).
    """
    if fuel <= 0:
        return (0, False)
    if s == u:
        # included() folds identical operands before spending budget.
        return (0, True)
    if isinstance(s, Recurrence) and isinstance(u, Recurrence):
        return (None, False)
    true = _included_app(s, u, ctx).is_true()
    if isinstance(s, Leaf) and isinstance(u, Leaf):
        # The structural pass is spend-free for leaves and contributes
        # the direct LMAD-inclusion disjunct.
        true = true or _included_h(s, u, ctx, fuel - 1).is_true()
        return (1, true)
    return (None, true)


def _audit(
    s: USR, ctx: FactorContext, fuel: int
) -> tuple[Optional[int], bool]:
    """The screening core: one pass over *s* mirroring ``_factor``.

    Returns ``(cost, true)`` where *true* claims ``factor`` would fold
    this subtree to ``PTRUE`` given unlimited budget, and *cost* is an
    upper bound on the budget units the full exploration of the subtree
    consumes (``None`` = unbounded/unknown).  Every node visit in
    ``_factor``/``disjoint``/``included`` costs one unit; the bound
    ignores memo hits, so it always overestimates.
    """
    if fuel <= 0:
        # _factor returns false immediately, exploring (and spending)
        # nothing.
        return (0, False)
    if isinstance(s, Leaf):
        return (1, _leaf_empty_pred(s).is_true())
    if isinstance(s, Gate):
        cost, true = _audit(s.body, ctx, fuel - 1)
        cost = None if cost is None else 1 + cost
        return (cost, b_not(s.cond).is_true() or true)
    if isinstance(s, Union):
        cost, true = 1, True
        for a in s.args:
            c, t = _audit(a, ctx, fuel - 1)
            cost = None if (cost is None or c is None) else cost + c
            true = true and t
        return (cost, true)
    if isinstance(s, Subtract):
        lc, lt = _audit(s.left, ctx, fuel - 1)
        ic, it = _included_audit(s.left, s.right, ctx, fuel - 1)
        cost = None if (lc is None or ic is None) else 1 + lc + ic
        return (cost, lt or it)
    if isinstance(s, Intersect):
        cost, true = 1, False
        for a in s.args:
            c, t = _audit(a, ctx, fuel - 1)
            cost = None if (cost is None or c is None) else cost + c
            true = true or t
        for i in range(len(s.args)):
            for j in range(i + 1, len(s.args)):
                c, t = _pair_audit(s.args[i], s.args[j], ctx, fuel - 1)
                cost = None if (cost is None or c is None) else cost + c
                true = true or t
        return (cost, true)
    if isinstance(s, CallSite):
        cost, true = _audit(s.body, ctx, fuel - 1)
        return (None if cost is None else 1 + cost, true)
    if isinstance(s, Recurrence):
        cost, true = _audit(s.body, ctx, fuel - 1)
        return (None if cost is None else 1 + cost, _mono_true(s, ctx) or true)
    return (None, False)


def _fold_immune(s: USR, ctx: FactorContext) -> bool:
    """Budget-immune single-node claims: the true-fold is computed from
    inputs available before any further exploration can spend budget, so
    they hold under any finite work_cap that admits reaching the node."""
    if isinstance(s, Leaf):
        return _leaf_empty_pred(s).is_true()
    if isinstance(s, Gate):
        # p_or(p_leaf(not cond), body-exploration): a literally-false
        # gate folds the disjunction true whatever the body returns.
        return b_not(s.cond).is_true()
    if isinstance(s, Recurrence):
        return _mono_true(s, ctx)
    return False


@_profiling.timed("core.screen_static")
def screen_static(usr: USR, ctx: FactorContext) -> bool:
    """True only when the Tier-1 pipeline would prove *usr* empty
    statically -- i.e. :meth:`HybridAnalyzer._cascade_of` would return
    ``(None, True, False)`` for these knobs.  Never errs on the True
    side; False means escalate."""
    if ctx.max_depth < _MIN_DEPTH or ctx.size_cap < _MIN_SIZE:
        return False
    if usr.is_empty_leaf():
        # reshape maps the empty leaf to itself and factor folds it true
        # after a single budget unit.
        return ctx.work_cap is None or ctx.work_cap >= 1
    s = reshape(usr) if ctx.use_reshaping else usr
    cost, true = _audit(s, ctx, ctx.max_depth)
    if true and (
        ctx.work_cap is None
        or (cost is not None and cost <= ctx.work_cap)
    ):
        return True
    if ctx.work_cap is None:
        return False
    # Finite budget and no bounded proof: the fold-immune rules still
    # apply at the root (nothing can have spent budget yet) and at the
    # first-evaluated operand of a root intersection (one unit for the
    # intersection node itself).
    if ctx.work_cap >= 2 and _fold_immune(s, ctx):
        return True
    if (
        ctx.work_cap >= 3
        and isinstance(s, Intersect)
        and _fold_immune(s.args[0], ctx)
    ):
        return True
    return False
