"""The paper's primary contribution: USR -> PDAG translation and the
hybrid loop analyzer.

:mod:`.factor` implements the Fig. 5 FACTOR inference algorithm,
:mod:`.monotonic` the Section 3.3 monotonicity rule,
:mod:`.independence` the Section 2.2/4 independence equations, and
:mod:`.analyzer` the Section 5 classification/planning driver.
"""

from .analyzer import ArrayPlan, HybridAnalyzer, LoopPlan, analyze_loop
from .codegen import RuntimeTest, TestSchedule, format_schedule, generate_schedule
from .factor import FactorContext, disjoint, factor, included
from .independence import (
    ext_rred_usr,
    flow_independence_usr,
    independence_predicate,
    output_independence_usr,
    rw_self_overlap_usr,
    static_last_value_usr,
)
from .monotonic import match_self_overlap, monotonicity_predicate

__all__ = [
    "FactorContext", "factor", "included", "disjoint",
    "match_self_overlap", "monotonicity_predicate",
    "flow_independence_usr", "output_independence_usr",
    "rw_self_overlap_usr", "static_last_value_usr", "independence_predicate",
    "ArrayPlan", "LoopPlan", "HybridAnalyzer", "analyze_loop",
    "RuntimeTest", "TestSchedule", "generate_schedule", "format_schedule",
]
