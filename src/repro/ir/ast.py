"""AST of the mini-Fortran loop IR.

The paper's analysis runs inside Polaris on structured Fortran77.  This
IR provides the same structural shape on a small language: integer
scalars, unidimensional arrays (Fortran programs are linearized by the
LMAD abstraction anyway), structured control flow (``do``/``while``/
``if``), subroutine calls with array-offset arguments (modelling
``HE(1,id)``-style section passing and reshaping), and loop-invariant
unknown *parameters* standing in for input-dependent values.

Programs are built by the parser (:mod:`repro.ir.parser`) or directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

__all__ = [
    "IRExpr", "Num", "Var", "ArrayRead", "BinOp", "UnaryOp", "Intrinsic",
    "IRStmt", "AssignScalar", "AssignArray", "If", "Do", "While", "Call",
    "Subroutine", "Program", "ArrayDecl",
    "COMPARISONS", "BOOL_OPS", "ARITH_OPS",
]

ARITH_OPS = ("+", "-", "*", "/", "%")
COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("and", "or")


# -- expressions --------------------------------------------------------------


class IRExpr:
    """Base class of IR expressions (integer-valued; comparisons and
    boolean operators produce 0/1)."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(IRExpr):
    """An integer literal."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(IRExpr):
    """A scalar variable or parameter reference."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRead(IRExpr):
    """``A[index]`` -- a read of one array element."""

    array: str
    index: IRExpr

    def __repr__(self) -> str:
        return f"{self.array}[{self.index!r}]"


@dataclass(frozen=True)
class BinOp(IRExpr):
    """A binary operation; ``/`` is flooring integer division."""

    op: str
    left: IRExpr
    right: IRExpr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(IRExpr):
    """``-x`` or ``not x``."""

    op: str
    arg: IRExpr

    def __repr__(self) -> str:
        return f"({self.op} {self.arg!r})"


@dataclass(frozen=True)
class Intrinsic(IRExpr):
    """``min``/``max`` intrinsics."""

    name: str
    args: tuple[IRExpr, ...]

    def __repr__(self) -> str:
        inside = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inside})"


# -- statements ----------------------------------------------------------------


class IRStmt:
    """Base class of IR statements."""

    __slots__ = ()


@dataclass(frozen=True)
class AssignScalar(IRStmt):
    """``x = expr``."""

    name: str
    expr: IRExpr


@dataclass(frozen=True)
class AssignArray(IRStmt):
    """``A[index] = expr``.

    ``is_update`` is set by the parser when the right-hand side reads
    ``A[index]`` itself (``A[i] = A[i] + e``), the shape reduction
    recognition keys on.
    """

    array: str
    index: IRExpr
    expr: IRExpr
    is_update: bool = False


@dataclass(frozen=True)
class If(IRStmt):
    """``if cond then ... else ... end``."""

    cond: IRExpr
    then_body: tuple[IRStmt, ...]
    else_body: tuple[IRStmt, ...] = ()


@dataclass(frozen=True)
class Do(IRStmt):
    """``do i = lower, upper ... end`` with unit step.

    ``label`` names the loop for analysis targeting and reporting
    (``@ solvh_do20`` in the concrete syntax).
    """

    index: str
    lower: IRExpr
    upper: IRExpr
    body: tuple[IRStmt, ...]
    label: Optional[str] = None


@dataclass(frozen=True)
class While(IRStmt):
    """``while cond do ... end`` -- trip count unknown statically."""

    cond: IRExpr
    body: tuple[IRStmt, ...]
    label: Optional[str] = None


@dataclass(frozen=True)
class CallArg:
    """An actual argument: a scalar expression, or an array (optionally
    with a base offset -- ``A + expr`` models section passing)."""

    array: Optional[str] = None
    offset: Optional[IRExpr] = None
    scalar: Optional[IRExpr] = None

    def is_array(self) -> bool:
        return self.array is not None


@dataclass(frozen=True)
class Call(IRStmt):
    """``call sub(args...)``."""

    callee: str
    args: tuple[CallArg, ...]


# -- program structure -----------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl:
    """``array A(size)``: declared extent (1-based, inclusive)."""

    name: str
    size: IRExpr


@dataclass(frozen=True)
class Subroutine:
    """A subroutine: scalar params by value, array params by reference."""

    name: str
    scalar_params: tuple[str, ...]
    array_params: tuple[str, ...]
    body: tuple[IRStmt, ...]


@dataclass
class Program:
    """A whole program: global parameters, arrays, subroutines, main."""

    params: tuple[str, ...] = ()
    arrays: tuple[ArrayDecl, ...] = ()
    subroutines: dict[str, Subroutine] = field(default_factory=dict)
    main: tuple[IRStmt, ...] = ()
    name: str = "program"

    def array_decl(self, name: str) -> Optional[ArrayDecl]:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        return None

    def find_loop(self, label: str) -> Optional[Union[Do, While]]:
        """Locate a labelled do- or while-loop anywhere in the program."""
        found: list[Do] = []

        def walk(stmts: Sequence[IRStmt]) -> None:
            for s in stmts:
                if isinstance(s, (Do, While)):
                    if s.label == label:
                        found.append(s)
                    walk(s.body)
                elif isinstance(s, If):
                    walk(s.then_body)
                    walk(s.else_body)

        walk(self.main)
        for sub in self.subroutines.values():
            walk(sub.body)
        return found[0] if found else None

    def labelled_loops(self) -> list[str]:
        """All loop labels in program order (main first, then subs)."""
        out: list[str] = []

        def walk(stmts: Sequence[IRStmt]) -> None:
            for s in stmts:
                if isinstance(s, Do):
                    if s.label:
                        out.append(s.label)
                    walk(s.body)
                elif isinstance(s, While):
                    if s.label:
                        out.append(s.label)
                    walk(s.body)
                elif isinstance(s, If):
                    walk(s.then_body)
                    walk(s.else_body)

        walk(self.main)
        for sub in self.subroutines.values():
            walk(sub.body)
        return out
