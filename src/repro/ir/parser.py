"""Recursive-descent parser for the mini-Fortran loop IR.

Grammar sketch (newline-separated statements)::

    program   := "program" IDENT decl* unit* "end"?
    decl      := "param" IDENT ("," IDENT)*
               | "array" IDENT "(" expr ")" ("," IDENT "(" expr ")")*
    unit      := subroutine | mainblk
    subroutine:= "subroutine" IDENT "(" fparam ("," fparam)* ")" body "end"
    fparam    := IDENT "[" "]"        -- array parameter
               | IDENT                -- scalar parameter
    mainblk   := "main" body "end"
    body      := stmt*
    stmt      := IDENT "=" expr
               | IDENT "[" expr "]" "=" expr
               | "if" expr "then" body ("else" body)? "end"
               | "do" IDENT "=" expr "," expr ("@" IDENT)? body "end"
               | "while" expr ("@" IDENT)? body "end"
               | "call" IDENT "(" aarg ("," aarg)* ")"
    aarg      := IDENT "[" "]" ("+" expr)?   -- array (optional offset)
               | expr                        -- scalar
    expr      := standard precedence: or < and < not < cmp < add < mul < unary

Comments run from ``#`` to end of line.
"""

from __future__ import annotations

from typing import Optional

from .. import profiling as _profiling
from .ast import (
    ArrayDecl,
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Call,
    CallArg,
    Do,
    If,
    Intrinsic,
    IRExpr,
    IRStmt,
    Num,
    Program,
    Subroutine,
    UnaryOp,
    Var,
    While,
)
from .lexer import Token, tokenize

__all__ = [
    "parse_program", "parse_expression", "ParseError", "is_additive_update",
]


class ParseError(ValueError):
    """Raised on syntactically invalid programs."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def skip_newlines(self) -> None:
        while self.peek().kind == "newline":
            self.advance()

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"line {tok.line}:{tok.col}: expected {want!r}, got {tok.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    # -- program structure ---------------------------------------------------
    def parse_program(self) -> Program:
        self.skip_newlines()
        self.expect("kw", "program")
        name = self.expect("ident").text
        self.expect("newline")
        params: list[str] = []
        arrays: list[ArrayDecl] = []
        subroutines: dict[str, Subroutine] = {}
        main: tuple[IRStmt, ...] = ()
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind == "eof":
                break
            if self.accept("kw", "param"):
                params.append(self.expect("ident").text)
                while self.accept("sym", ","):
                    params.append(self.expect("ident").text)
                self.expect("newline")
            elif self.accept("kw", "array"):
                arrays.append(self._array_decl())
                while self.accept("sym", ","):
                    arrays.append(self._array_decl())
                self.expect("newline")
            elif self.accept("kw", "subroutine"):
                sub = self._subroutine()
                subroutines[sub.name] = sub
            elif self.accept("kw", "main"):
                self.expect("newline")
                main = self._body()
                self.expect("kw", "end")
            elif self.accept("kw", "end"):
                self.skip_newlines()
                if self.peek().kind != "eof":
                    tok = self.peek()
                    raise ParseError(
                        f"line {tok.line}: trailing input after program end"
                    )
                break
            else:
                raise ParseError(
                    f"line {tok.line}:{tok.col}: unexpected {tok.text!r} at top level"
                )
        return Program(
            params=tuple(params),
            arrays=tuple(arrays),
            subroutines=subroutines,
            main=main,
            name=name,
        )

    def _array_decl(self) -> ArrayDecl:
        name = self.expect("ident").text
        self.expect("sym", "(")
        size = self.parse_expr()
        self.expect("sym", ")")
        return ArrayDecl(name, size)

    def _subroutine(self) -> Subroutine:
        name = self.expect("ident").text
        self.expect("sym", "(")
        scalars: list[str] = []
        array_params: list[str] = []
        if not self.at("sym", ")"):
            while True:
                pname = self.expect("ident").text
                if self.accept("sym", "["):
                    self.expect("sym", "]")
                    array_params.append(pname)
                else:
                    scalars.append(pname)
                if not self.accept("sym", ","):
                    break
        self.expect("sym", ")")
        self.expect("newline")
        body = self._body()
        self.expect("kw", "end")
        self.expect("newline")
        return Subroutine(
            name=name,
            scalar_params=tuple(scalars),
            array_params=tuple(array_params),
            body=body,
        )

    # -- statements --------------------------------------------------------------
    def _body(self) -> tuple[IRStmt, ...]:
        stmts: list[IRStmt] = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind == "eof":
                raise ParseError(f"line {tok.line}: unexpected end of input")
            if tok.kind == "kw" and tok.text in ("end", "else"):
                return tuple(stmts)
            stmts.append(self._stmt())

    def _stmt(self) -> IRStmt:
        tok = self.peek()
        if tok.kind == "kw":
            if tok.text == "if":
                return self._if()
            if tok.text == "do":
                return self._do()
            if tok.text == "while":
                return self._while()
            if tok.text == "call":
                return self._call()
            raise ParseError(f"line {tok.line}: unexpected keyword {tok.text!r}")
        if tok.kind == "ident":
            name = self.advance().text
            if self.accept("sym", "["):
                index = self.parse_expr()
                self.expect("sym", "]")
                self.expect("sym", "=")
                rhs = self.parse_expr()
                self.expect("newline")
                return AssignArray(
                    array=name,
                    index=index,
                    expr=rhs,
                    is_update=_reads_same_element(rhs, name, index),
                )
            self.expect("sym", "=")
            rhs = self.parse_expr()
            self.expect("newline")
            return AssignScalar(name, rhs)
        raise ParseError(f"line {tok.line}: cannot start a statement with {tok.text!r}")

    def _if(self) -> IRStmt:
        self.expect("kw", "if")
        cond = self.parse_expr()
        self.expect("kw", "then")
        self.expect("newline")
        then_body = self._body()
        else_body: tuple[IRStmt, ...] = ()
        if self.accept("kw", "else"):
            self.expect("newline")
            else_body = self._body()
        self.expect("kw", "end")
        self.expect("newline")
        return If(cond, then_body, else_body)

    def _do(self) -> IRStmt:
        self.expect("kw", "do")
        index = self.expect("ident").text
        self.expect("sym", "=")
        lower = self.parse_expr()
        self.expect("sym", ",")
        upper = self.parse_expr()
        label = None
        if self.accept("sym", "@"):
            label = self.expect("ident").text
        self.expect("newline")
        body = self._body()
        self.expect("kw", "end")
        self.expect("newline")
        return Do(index, lower, upper, body, label)

    def _while(self) -> IRStmt:
        self.expect("kw", "while")
        cond = self.parse_expr()
        label = None
        if self.accept("sym", "@"):
            label = self.expect("ident").text
        self.expect("newline")
        body = self._body()
        self.expect("kw", "end")
        self.expect("newline")
        return While(cond, body, label)

    def _call(self) -> IRStmt:
        self.expect("kw", "call")
        callee = self.expect("ident").text
        self.expect("sym", "(")
        args: list[CallArg] = []
        if not self.at("sym", ")"):
            while True:
                args.append(self._call_arg())
                if not self.accept("sym", ","):
                    break
        self.expect("sym", ")")
        self.expect("newline")
        return Call(callee, tuple(args))

    def _call_arg(self) -> CallArg:
        # Array argument: IDENT [] (+ expr)?
        if self.peek().kind == "ident":
            save = self.pos
            name = self.advance().text
            if self.accept("sym", "["):
                if self.accept("sym", "]"):
                    offset: Optional[IRExpr] = None
                    if self.accept("sym", "+"):
                        offset = self.parse_expr()
                    return CallArg(array=name, offset=offset)
                self.pos = save  # it was an element read: scalar expression
            else:
                self.pos = save
        return CallArg(scalar=self.parse_expr())

    # -- expressions (precedence climbing) -------------------------------------
    def parse_expr(self) -> IRExpr:
        return self._or()

    def _or(self) -> IRExpr:
        left = self._and()
        while self.at("kw", "or"):
            self.advance()
            left = BinOp("or", left, self._and())
        return left

    def _and(self) -> IRExpr:
        left = self._not()
        while self.at("kw", "and"):
            self.advance()
            left = BinOp("and", left, self._not())
        return left

    def _not(self) -> IRExpr:
        if self.accept("kw", "not"):
            return UnaryOp("not", self._not())
        return self._cmp()

    def _cmp(self) -> IRExpr:
        left = self._add()
        tok = self.peek()
        if tok.kind == "sym" and tok.text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            return BinOp(op, left, self._add())
        return left

    def _add(self) -> IRExpr:
        left = self._mul()
        while self.at("sym", "+") or self.at("sym", "-"):
            op = self.advance().text
            left = BinOp(op, left, self._mul())
        return left

    def _mul(self) -> IRExpr:
        left = self._unary()
        while self.at("sym", "*") or self.at("sym", "/") or self.at("sym", "%"):
            op = self.advance().text
            left = BinOp(op, left, self._unary())
        return left

    def _unary(self) -> IRExpr:
        if self.accept("sym", "-"):
            return UnaryOp("-", self._unary())
        return self._atom()

    def _atom(self) -> IRExpr:
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            return Num(int(tok.text))
        if tok.kind == "kw" and tok.text in ("min", "max"):
            self.advance()
            self.expect("sym", "(")
            args = [self.parse_expr()]
            while self.accept("sym", ","):
                args.append(self.parse_expr())
            self.expect("sym", ")")
            return Intrinsic(tok.text, tuple(args))
        if tok.kind == "ident":
            self.advance()
            if self.accept("sym", "["):
                index = self.parse_expr()
                self.expect("sym", "]")
                return ArrayRead(tok.text, index)
            return Var(tok.text)
        if self.accept("sym", "("):
            inner = self.parse_expr()
            self.expect("sym", ")")
            return inner
        raise ParseError(f"line {tok.line}:{tok.col}: unexpected {tok.text!r}")


def is_additive_update(expr: IRExpr, array: str, index: IRExpr) -> bool:
    """Is *expr* an additive update of ``array[index]`` -- a ``+``/``-``
    spine with exactly one ``array[index]`` read on it and a delta that
    never reads the element again?

    Only these shapes commute as delta reductions: the runtime merges a
    parallel reduction by accumulating ``final - initial`` per
    iteration, which is wrong for e.g. ``A[i] = max(A[i], e)`` or
    ``A[i] = A[i] * e`` when updates of different iterations collide.
    """
    if isinstance(expr, ArrayRead):
        return expr.array == array and expr.index == index
    if isinstance(expr, BinOp) and expr.op == "+":
        left_reads = _reads_same_element(expr.left, array, index)
        right_reads = _reads_same_element(expr.right, array, index)
        if left_reads and not right_reads:
            return is_additive_update(expr.left, array, index)
        if right_reads and not left_reads:
            return is_additive_update(expr.right, array, index)
        return False
    if isinstance(expr, BinOp) and expr.op == "-":
        if _reads_same_element(expr.right, array, index):
            return False
        return is_additive_update(expr.left, array, index)
    return False


def _reads_same_element(expr: IRExpr, array: str, index: IRExpr) -> bool:
    """Does *expr* read ``array[index]`` (reduction-update shape)?"""
    if isinstance(expr, ArrayRead):
        return expr.array == array and expr.index == index
    if isinstance(expr, BinOp):
        return _reads_same_element(expr.left, array, index) or _reads_same_element(
            expr.right, array, index
        )
    if isinstance(expr, UnaryOp):
        return _reads_same_element(expr.arg, array, index)
    if isinstance(expr, Intrinsic):
        return any(_reads_same_element(a, array, index) for a in expr.args)
    return False


def parse_program(source: str) -> Program:
    """Parse a full program from concrete syntax."""
    with _profiling.timer("ir.parse"):
        return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> IRExpr:
    """Parse a standalone expression (used by tests)."""
    tokens = tokenize(source)
    parser = _Parser(tokens)
    expr = parser.parse_expr()
    parser.skip_newlines()
    if parser.peek().kind != "eof":
        tok = parser.peek()
        raise ParseError(f"line {tok.line}: trailing input {tok.text!r}")
    return expr
