"""Reference interpreter for the loop IR.

The interpreter plays three roles in the reproduction:

1. **ground truth**: sequential execution defines the correct final
   memory state against which every parallelization is checked;
2. **dependence oracle**: with a *trace target*, it records each
   iteration's exposed reads and writes per array, from which true
   cross-iteration dependences are computed (the paper's authors had the
   actual machine for this);
3. **cost model**: every executed statement counts one unit of work, and
   per-loop iteration work is recorded so the simulated multiprocessor
   (:mod:`repro.runtime.scheduler`) can schedule iterations.

Arrays are dense Python lists indexed 1-based, Fortran style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from .ast import (
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Call,
    Do,
    If,
    Intrinsic,
    IRExpr,
    IRStmt,
    Num,
    Program,
    Subroutine,
    UnaryOp,
    Var,
    While,
)

__all__ = ["Machine", "IterationRecord", "LoopTrace", "RunResult", "InterpError"]

_WHILE_FUEL = 10_000_000


class InterpError(RuntimeError):
    """Raised on runtime errors (unbound names, bad indexes...)."""


@dataclass
class IterationRecord:
    """Memory behaviour of one iteration of the traced loop."""

    iteration: int
    #: locations written, per array
    writes: dict[str, set[int]] = field(default_factory=dict)
    #: locations read before any local write ("exposed" reads), per array
    exposed_reads: dict[str, set[int]] = field(default_factory=dict)
    #: locations whose first access is a reduction-style update, per array
    updates: dict[str, set[int]] = field(default_factory=dict)
    #: units of work executed by this iteration
    work: int = 0


@dataclass
class LoopTrace:
    """All iteration records of one execution of the traced loop."""

    label: str
    iterations: list[IterationRecord] = field(default_factory=list)

    def has_cross_iteration_dependence(self) -> bool:
        """True when some location is written by one iteration and touched
        (read or written) by a different one -- the loop is NOT fully
        independent."""
        writers: dict[tuple[str, int], int] = {}
        for rec in self.iterations:
            for arr, locs in rec.writes.items():
                for loc in locs:
                    key = (arr, loc)
                    if key in writers and writers[key] != rec.iteration:
                        return True
                    writers[key] = rec.iteration
        for rec in self.iterations:
            for arr, locs in rec.exposed_reads.items():
                for loc in locs:
                    owner = writers.get((arr, loc))
                    if owner is not None and owner != rec.iteration:
                        return True
        # Anti dependences: a read (even exposed) in iteration i of a
        # location written later is covered by the writers map above only
        # for flow order; check the symmetric direction too.
        readers: dict[tuple[str, int], set[int]] = {}
        for rec in self.iterations:
            for arr, locs in rec.exposed_reads.items():
                for loc in locs:
                    readers.setdefault((arr, loc), set()).add(rec.iteration)
        for key, owner in writers.items():
            for reader in readers.get(key, ()):
                if reader != owner:
                    return True
        return False

    def flow_independent(self) -> bool:
        """No location is written by one iteration and expose-read by
        another (in either order: covers flow and anti dependences)."""
        writers: dict[tuple[str, int], set[int]] = {}
        for rec in self.iterations:
            for arr, locs in rec.writes.items():
                for loc in locs:
                    writers.setdefault((arr, loc), set()).add(rec.iteration)
        for rec in self.iterations:
            for arr, locs in rec.exposed_reads.items():
                for loc in locs:
                    owners = writers.get((arr, loc), set())
                    if owners - {rec.iteration}:
                        return False
        return True

    def output_independent(self) -> bool:
        """No location is written by two different iterations."""
        writers: dict[tuple[str, int], int] = {}
        for rec in self.iterations:
            for arr, locs in rec.writes.items():
                for loc in locs:
                    key = (arr, loc)
                    if key in writers and writers[key] != rec.iteration:
                        return False
                    writers[key] = rec.iteration
        return True

    def total_work(self) -> int:
        return sum(rec.work for rec in self.iterations)


@dataclass
class RunResult:
    """Outcome of a program run: final memory, cost, optional trace."""

    scalars: dict[str, int]
    arrays: dict[str, list[int]]
    work: int
    trace: Optional[LoopTrace] = None
    loop_work: dict[str, int] = field(default_factory=dict)
    loop_trips: dict[str, int] = field(default_factory=dict)


class _Frame:
    """One activation: scalar bindings + array bindings (name, offset)."""

    __slots__ = ("scalars", "arrays")

    def __init__(
        self, scalars: dict[str, int], arrays: dict[str, tuple[str, int]]
    ):
        self.scalars = scalars
        self.arrays = arrays


class Machine:
    """Executes a program against concrete parameter/array inputs."""

    def __init__(
        self,
        program: Program,
        params: Optional[Mapping[str, int]] = None,
        arrays: Optional[Mapping[str, list[int]]] = None,
        trace_label: Optional[str] = None,
        loop_executor: Optional[Callable] = None,
        loop_executor_label: Optional[str] = None,
    ):
        #: optional hook: called as ``loop_executor(machine, stmt, frame)``
        #: instead of the built-in sequential execution when the loop with
        #: ``loop_executor_label`` is reached (the parallel runtime uses
        #: this to take over the target loop).
        self.loop_executor = loop_executor
        self.loop_executor_label = loop_executor_label
        self.program = program
        self.params = dict(params or {})
        self.work = 0
        self.loop_work: dict[str, int] = {}
        self.loop_trips: dict[str, int] = {}
        self.trace_label = trace_label
        self.trace: Optional[LoopTrace] = (
            LoopTrace(trace_label) if trace_label else None
        )
        self._active_record: Optional[IterationRecord] = None
        self.arrays: dict[str, list[int]] = {}
        for decl in program.arrays:
            size = self._const_or_param(decl.size)
            provided = arrays.get(decl.name) if arrays else None
            if provided is not None:
                if len(provided) < size:
                    provided = list(provided) + [0] * (size - len(provided))
                self.arrays[decl.name] = list(provided)
            else:
                self.arrays[decl.name] = [0] * size

    def _const_or_param(self, expr: IRExpr) -> int:
        frame = _Frame(dict(self.params), {})
        return self._eval(expr, frame)

    # -- public API -------------------------------------------------------
    def run(self) -> RunResult:
        """Execute main to completion."""
        frame = _Frame(dict(self.params), {name: (name, 0) for name in self.arrays})
        self._exec_body(self.program.main, frame)
        return RunResult(
            scalars=dict(frame.scalars),
            arrays={k: list(v) for k, v in self.arrays.items()},
            work=self.work,
            trace=self.trace,
            loop_work=dict(self.loop_work),
            loop_trips=dict(self.loop_trips),
        )

    # -- execution ----------------------------------------------------------
    def _exec_body(self, stmts: tuple[IRStmt, ...], frame: _Frame) -> None:
        for stmt in stmts:
            self._exec(stmt, frame)

    def _exec(self, stmt: IRStmt, frame: _Frame) -> None:
        self.work += 1
        if self._active_record is not None:
            self._active_record.work += 1
        if isinstance(stmt, AssignScalar):
            frame.scalars[stmt.name] = self._eval(stmt.expr, frame)
            return
        if isinstance(stmt, AssignArray):
            index = self._eval(stmt.index, frame)
            # Evaluate RHS first: reads happen before the write.
            value = self._eval(stmt.expr, frame)
            self._store(stmt.array, index, value, frame, update=stmt.is_update)
            return
        if isinstance(stmt, If):
            if self._eval(stmt.cond, frame) != 0:
                self._exec_body(stmt.then_body, frame)
            else:
                self._exec_body(stmt.else_body, frame)
            return
        if isinstance(stmt, Do):
            self._exec_do(stmt, frame)
            return
        if isinstance(stmt, While):
            self._exec_while(stmt, frame)
            return
        if isinstance(stmt, Call):
            self._exec_call(stmt, frame)
            return
        raise InterpError(f"unknown statement {stmt!r}")

    def _exec_do(self, stmt: Do, frame: _Frame) -> None:
        if (
            self.loop_executor is not None
            and stmt.label is not None
            and stmt.label == self.loop_executor_label
        ):
            self.loop_executor(self, stmt, frame)
            return
        lower = self._eval(stmt.lower, frame)
        upper = self._eval(stmt.upper, frame)
        tracing = stmt.label is not None and stmt.label == self.trace_label
        work_before = self.work
        trips = max(0, upper - lower + 1)
        for i in range(lower, upper + 1):
            frame.scalars[stmt.index] = i
            if tracing and self.trace is not None:
                record = IterationRecord(iteration=i)
                prev = self._active_record
                self._active_record = record
                self._exec_body(stmt.body, frame)
                self._active_record = prev
                self.trace.iterations.append(record)
            else:
                self._exec_body(stmt.body, frame)
        if stmt.label:
            self.loop_work[stmt.label] = (
                self.loop_work.get(stmt.label, 0) + self.work - work_before
            )
            self.loop_trips[stmt.label] = self.loop_trips.get(stmt.label, 0) + trips

    def _exec_while(self, stmt: While, frame: _Frame) -> None:
        if (
            self.loop_executor is not None
            and stmt.label is not None
            and stmt.label == self.loop_executor_label
        ):
            self.loop_executor(self, stmt, frame)
            return
        tracing = stmt.label is not None and stmt.label == self.trace_label
        work_before = self.work
        trips = 0
        while self._eval(stmt.cond, frame) != 0:
            trips += 1
            if trips > _WHILE_FUEL:
                raise InterpError(f"while loop {stmt.label or ''} ran away")
            if tracing and self.trace is not None:
                record = IterationRecord(iteration=trips)
                prev = self._active_record
                self._active_record = record
                self._exec_body(stmt.body, frame)
                self._active_record = prev
                self.trace.iterations.append(record)
            else:
                self._exec_body(stmt.body, frame)
        if stmt.label:
            self.loop_work[stmt.label] = (
                self.loop_work.get(stmt.label, 0) + self.work - work_before
            )
            self.loop_trips[stmt.label] = self.loop_trips.get(stmt.label, 0) + trips

    def _exec_call(self, stmt: Call, frame: _Frame) -> None:
        callee = self.program.subroutines.get(stmt.callee)
        if callee is None:
            raise InterpError(f"call to unknown subroutine {stmt.callee!r}")
        scalars: dict[str, int] = {}
        arrays: dict[str, tuple[str, int]] = {}
        scalar_iter = iter(callee.scalar_params)
        array_iter = iter(callee.array_params)
        for arg in stmt.args:
            if arg.is_array():
                try:
                    formal = next(array_iter)
                except StopIteration:
                    raise InterpError(
                        f"too many array arguments to {stmt.callee!r}"
                    ) from None
                base_name, base_off = frame.arrays[arg.array]
                extra = self._eval(arg.offset, frame) if arg.offset else 0
                arrays[formal] = (base_name, base_off + extra)
            else:
                try:
                    formal = next(scalar_iter)
                except StopIteration:
                    raise InterpError(
                        f"too many scalar arguments to {stmt.callee!r}"
                    ) from None
                scalars[formal] = self._eval(arg.scalar, frame)
        if next(scalar_iter, None) is not None or next(array_iter, None) is not None:
            raise InterpError(f"missing arguments in call to {stmt.callee!r}")
        # Globals (program params) remain visible inside subroutines.
        inner = dict(self.params)
        inner.update(scalars)
        self._exec_body(callee.body, _Frame(inner, arrays))

    # -- memory ----------------------------------------------------------------
    def _resolve(self, array: str, index: int, frame: _Frame) -> tuple[str, int]:
        if array not in frame.arrays:
            raise InterpError(f"unbound array {array!r}")
        base_name, offset = frame.arrays[array]
        return base_name, offset + index

    def _load(self, array: str, index: int, frame: _Frame) -> int:
        name, loc = self._resolve(array, index, frame)
        data = self.arrays[name]
        if not (1 <= loc <= len(data)):
            raise InterpError(f"{name}[{loc}] out of bounds (size {len(data)})")
        rec = self._active_record
        if rec is not None:
            written = rec.writes.get(name)
            if not written or loc not in written:
                rec.exposed_reads.setdefault(name, set()).add(loc)
        return data[loc - 1]

    def _store(
        self, array: str, index: int, value: int, frame: _Frame, update: bool
    ) -> None:
        name, loc = self._resolve(array, index, frame)
        data = self.arrays[name]
        if not (1 <= loc <= len(data)):
            raise InterpError(f"{name}[{loc}] out of bounds (size {len(data)})")
        rec = self._active_record
        if rec is not None:
            rec.writes.setdefault(name, set()).add(loc)
            if update:
                rec.updates.setdefault(name, set()).add(loc)
        data[loc - 1] = value

    # -- expressions --------------------------------------------------------------
    def _eval(self, expr: IRExpr, frame: _Frame) -> int:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Var):
            if expr.name in frame.scalars:
                return frame.scalars[expr.name]
            if expr.name in self.params:
                return self.params[expr.name]
            raise InterpError(f"unbound scalar {expr.name!r}")
        if isinstance(expr, ArrayRead):
            index = self._eval(expr.index, frame)
            return self._load(expr.array, index, frame)
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, frame)
            if expr.op == "and":
                return 1 if (left != 0 and self._eval(expr.right, frame) != 0) else 0
            if expr.op == "or":
                return 1 if (left != 0 or self._eval(expr.right, frame) != 0) else 0
            right = self._eval(expr.right, frame)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, UnaryOp):
            value = self._eval(expr.arg, frame)
            if expr.op == "-":
                return -value
            if expr.op == "not":
                return 0 if value else 1
            raise InterpError(f"unknown unary {expr.op!r}")
        if isinstance(expr, Intrinsic):
            values = [self._eval(a, frame) for a in expr.args]
            if expr.name == "min":
                return min(values)
            if expr.name == "max":
                return max(values)
            raise InterpError(f"unknown intrinsic {expr.name!r}")
        raise InterpError(f"unknown expression {expr!r}")


def _apply_binop(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise InterpError("division by zero")
        return left // right
    if op == "%":
        if right == 0:
            raise InterpError("modulo by zero")
        return left % right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise InterpError(f"unknown operator {op!r}")
