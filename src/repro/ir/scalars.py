"""Scalar use-def analysis over loop bodies.

Two facts the summarizer needs about the scalars of a loop body:

* which scalars are **assigned** anywhere in the body -- their values at
  iteration entry are unknown functions of the iteration number, modelled
  by per-iteration *entry opaques* ``$entry_x_label(i)``;
* which assigned scalars may be **read before written** on some path --
  a loop-carried scalar flow dependence that (unless the scalar is a
  recognized CIV) forbids parallelization outright, no matter what the
  array summaries say.

The analysis is conservative: a read inside a nested loop or branch
counts as exposed unless a dominating write precedes it on every path.
"""

from __future__ import annotations

from .ast import (
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Call,
    Do,
    If,
    Intrinsic,
    IRExpr,
    IRStmt,
    UnaryOp,
    Var,
    While,
)

__all__ = ["assigned_scalars", "read_before_write", "expr_scalar_reads"]


def expr_scalar_reads(expr: IRExpr) -> set[str]:
    """All scalar names read by an expression."""
    out: set[str] = set()

    def walk(e: IRExpr) -> None:
        if isinstance(e, Var):
            out.add(e.name)
        elif isinstance(e, ArrayRead):
            walk(e.index)
        elif isinstance(e, BinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, UnaryOp):
            walk(e.arg)
        elif isinstance(e, Intrinsic):
            for a in e.args:
                walk(a)

    walk(expr)
    return out


def assigned_scalars(stmts: tuple[IRStmt, ...]) -> set[str]:
    """Scalars assigned anywhere in the statement tree (incl. do indexes)."""
    out: set[str] = set()

    def walk(body: tuple[IRStmt, ...]) -> None:
        for s in body:
            if isinstance(s, AssignScalar):
                out.add(s.name)
            elif isinstance(s, If):
                walk(s.then_body)
                walk(s.else_body)
            elif isinstance(s, Do):
                out.add(s.index)
                walk(s.body)
            elif isinstance(s, While):
                walk(s.body)

    walk(stmts)
    return out


def read_before_write(stmts: tuple[IRStmt, ...]) -> set[str]:
    """Scalars that may be read before being written on some path.

    Returns reads exposed at the *entry* of the statement sequence.
    Writes inside conditionals or loops do not kill (the body may not
    execute); their reads do count.  Call arguments read scalars.
    """
    exposed: set[str] = set()

    def walk(body: tuple[IRStmt, ...], written: set[str]) -> set[str]:
        """Process *body* given definitely-written set; returns the
        definitely-written set at exit."""
        current = set(written)
        for s in body:
            for name in _stmt_reads(s):
                if name not in current:
                    exposed.add(name)
            if isinstance(s, AssignScalar):
                current.add(s.name)
            elif isinstance(s, If):
                w_then = walk(s.then_body, current)
                w_else = walk(s.else_body, current)
                current = w_then & w_else
            elif isinstance(s, Do):
                inner = set(current)
                inner.add(s.index)
                walk(s.body, inner)
                # body may not execute: no kills survive
            elif isinstance(s, While):
                walk(s.body, set(current))
        return current

    walk(stmts, set())
    return exposed


def _stmt_reads(s: IRStmt) -> set[str]:
    """Scalars read directly by one statement (not by nested bodies)."""
    if isinstance(s, AssignScalar):
        return expr_scalar_reads(s.expr)
    if isinstance(s, AssignArray):
        return expr_scalar_reads(s.index) | expr_scalar_reads(s.expr)
    if isinstance(s, If):
        return expr_scalar_reads(s.cond)
    if isinstance(s, Do):
        return expr_scalar_reads(s.lower) | expr_scalar_reads(s.upper)
    if isinstance(s, While):
        return expr_scalar_reads(s.cond)
    if isinstance(s, Call):
        out: set[str] = set()
        for arg in s.args:
            if arg.scalar is not None:
                out |= expr_scalar_reads(arg.scalar)
            if arg.offset is not None:
                out |= expr_scalar_reads(arg.offset)
        return out
    return set()
