"""CIV aggregation -- the flow-sensitive refinement of Section 3.3.

A conditionally incremented induction variable (CIV) ``c`` has no closed
form, so accesses indexed through it defeat LMAD aggregation.  The paper's
``CIVagg`` rewrites the per-iteration summary so both CFG paths carry the
*same* interval:

* on the increment path the writes cover ``[c@i + 1, c@i + inc]`` which
  equals ``[c@i + 1, c@(i+1)]``;
* on the other path the interval ``[c@i + 1, c@(i+1)]`` is *empty*
  because ``c@(i+1) = c@i`` puts the upper bound below the lower bound.

The gate therefore cancels and the summary becomes an ungated interval
between consecutive prefix values, which the monotonicity machinery can
reason about exactly (Fig. 7(b)).
"""

from __future__ import annotations

from typing import Optional

from ..lmad import LMAD
from ..symbolic import ArrayRef, BoolExpr, Cmp, Expr, b_and, sym
from ..symbolic.ranges import try_sign
from ..usr import (
    CallSite,
    Gate,
    Intersect,
    Leaf,
    Recurrence,
    Subtract,
    Summary,
    Union,
    USR,
    usr_call,
    usr_gate,
    usr_intersect,
    usr_recurrence,
    usr_subtract,
    usr_union,
)
from .ast import AssignScalar, BinOp, Do, If, IRStmt, Var, While
from .convert import to_bool, to_expr

__all__ = ["civ_aggregate_region", "civ_increments_nonneg", "collect_increments"]


def collect_increments(
    stmts: tuple[IRStmt, ...],
    name: str,
    scalars: dict[str, Expr],
) -> Optional[list[tuple[Optional[BoolExpr], Expr]]]:
    """Gather ``(gate, increment)`` pairs for CIV *name*.

    Returns None when an increment is unanalyzable (which disables the
    refinement).  Gates stack across nested ifs.
    """
    out: list[tuple[Optional[BoolExpr], Expr]] = []

    def walk(body: tuple[IRStmt, ...], gates: list[BoolExpr]) -> bool:
        for s in body:
            if isinstance(s, AssignScalar) and s.name == name:
                inc = _increment_of(s, name, scalars)
                if inc is None:
                    return False
                gate = b_and(*gates) if gates else None
                out.append((gate, inc))
            elif isinstance(s, If):
                cond = to_bool(s.cond, scalars)
                if cond is None:
                    if _assigns(s.then_body, name) or _assigns(s.else_body, name):
                        return False
                    continue
                from ..symbolic import b_not

                if not walk(s.then_body, gates + [cond]):
                    return False
                if not walk(s.else_body, gates + [b_not(cond)]):
                    return False
            elif isinstance(s, (Do, While)):
                if _assigns(s.body, name):
                    return False  # nested-loop accumulation: out of scope
        return True

    if not walk(stmts, []):
        return None
    return out


def _assigns(body: tuple[IRStmt, ...], name: str) -> bool:
    for s in body:
        if isinstance(s, AssignScalar) and s.name == name:
            return True
        if isinstance(s, If) and (
            _assigns(s.then_body, name) or _assigns(s.else_body, name)
        ):
            return True
        if isinstance(s, (Do, While)) and _assigns(s.body, name):
            return True
    return False


def _increment_of(
    stmt: AssignScalar, name: str, scalars: dict[str, Expr]
) -> Optional[Expr]:
    """The ``e`` of ``c = c + e`` (either operand order)."""
    expr = stmt.expr
    if not (isinstance(expr, BinOp) and expr.op == "+"):
        return None
    if isinstance(expr.left, Var) and expr.left.name == name:
        return to_expr(expr.right, scalars)
    if isinstance(expr.right, Var) and expr.right.name == name:
        return to_expr(expr.left, scalars)
    return None


def civ_increments_nonneg(
    stmts: tuple[IRStmt, ...],
    name: str,
    scalars: dict[str, Expr],
    bounds: Optional[dict] = None,
) -> bool:
    """Every increment of *name* provably >= 0 (possibly thanks to its own
    gate, e.g. ``if NSP[i] > 0 then ... c = c + NSP[i]``, or to the loop
    index range passed in *bounds*)."""
    incs = collect_increments(stmts, name, scalars)
    if incs is None:
        return False
    for gate, inc in incs:
        if try_sign(inc, bounds or {}) in ("+", "0"):
            continue
        if gate is not None and _gate_implies_nonneg(gate, inc):
            continue
        return False
    return True


def _gate_implies_nonneg(gate: BoolExpr, inc: Expr) -> bool:
    """Does some conjunct of the gate state ``inc > 0`` or ``inc >= 0``?"""
    from ..symbolic import AndB

    conjuncts = gate.args if isinstance(gate, AndB) else (gate,)
    for c in conjuncts:
        if isinstance(c, Cmp) and c.op in (">", ">="):
            if c.expr == inc:
                return True
    return False


def civ_aggregate_region(region, civs, index: str, stmts, scalars):
    """Apply the CIVagg interval rewrite to every array summary.

    For each CIV with a single gated increment, gated write summaries of
    shape ``gate # [c@i + a, c@i + inc + b]`` (constants ``a > b``) are
    rewritten to the ungated ``[c@i + a, c@(i+1) + b]``.
    """
    for info in civs:
        incs = collect_increments(stmts, info.name, scalars)
        if incs is None or len(incs) != 1:
            continue
        gate, inc = incs[0]
        entry = ArrayRef(info.prefix_array, [sym(index)]).as_expr()
        nxt = ArrayRef(info.prefix_array, [sym(index) + 1]).as_expr()
        for arr, summary in list(region.arrays.items()):
            region.arrays[arr] = Summary(
                wf=_rewrite(summary.wf, gate, inc, entry, nxt),
                ro=summary.ro,
                rw=_rewrite(summary.rw, gate, inc, entry, nxt),
                exposed=_rewrite(summary.exposed, gate, inc, entry, nxt),
            )
    return region


def _rewrite(
    usr: USR, gate: Optional[BoolExpr], inc: Expr, entry: Expr, nxt: Expr
) -> USR:
    if isinstance(usr, Leaf):
        if gate is None:
            replaced = _rewrite_leaf(usr, inc, entry, nxt)
            if replaced is not None:
                return replaced
        return usr
    if isinstance(usr, Gate):
        inner = _rewrite(usr.body, gate, inc, entry, nxt)
        if gate is not None and isinstance(inner, Leaf) and _gate_matches(
            usr.cond, gate
        ):
            replaced = _rewrite_leaf(inner, inc, entry, nxt)
            if replaced is not None:
                return replaced
        return usr_gate(usr.cond, inner)
    if isinstance(usr, Union):
        return usr_union(*(_rewrite(a, gate, inc, entry, nxt) for a in usr.args))
    if isinstance(usr, Intersect):
        return usr_intersect(*(_rewrite(a, gate, inc, entry, nxt) for a in usr.args))
    if isinstance(usr, Subtract):
        return usr_subtract(
            _rewrite(usr.left, gate, inc, entry, nxt),
            _rewrite(usr.right, gate, inc, entry, nxt),
        )
    if isinstance(usr, CallSite):
        return usr_call(usr.callee, _rewrite(usr.body, gate, inc, entry, nxt))
    if isinstance(usr, Recurrence):
        return usr_recurrence(
            usr.index,
            usr.lower,
            usr.upper,
            _rewrite(usr.body, gate, inc, entry, nxt),
            partial=usr.partial,
        )
    raise TypeError(f"unknown USR node {usr!r}")


def _rewrite_leaf(
    leaf: Leaf, inc: Expr, entry: Expr, nxt: Expr
) -> Optional[USR]:
    """Rewrite interval LMADs ``[entry+a, entry+inc+b]`` (a > b const) to
    ``[entry+a, nxt+b]``; None when any LMAD does not match."""
    out: list[LMAD] = []
    for lmad in leaf.lmads:
        live = lmad.normalized()
        if live.ndims > 1 or (live.ndims == 1 and live.strides[0] != 1):
            return None
        lower = live.base
        upper = live.base + live.extent()
        a_off = lower - entry
        b_off = upper - entry - inc
        # Offsets may stay symbolic (e.g. ``OUT[M + civ + j]``) as long as
        # they are civ-free and their difference is a positive constant,
        # which keeps the no-increment interval empty.
        prefix_atoms = {a.array for a in entry.atoms() if hasattr(a, "array")}
        for off in (a_off, b_off):
            if any(
                getattr(atom, "array", None) in prefix_atoms
                for atom in off.atoms()
            ):
                return None
        gap = a_off - b_off
        if not gap.is_constant() or gap.constant_value() <= 0:
            return None  # would not be empty on the no-increment path
        new_upper = nxt + b_off
        out.append(LMAD((live.strides[0] if live.ndims else 1,),
                        (new_upper - lower,), lower))
    return Leaf(out)


def _conjuncts(cond: BoolExpr) -> tuple[BoolExpr, ...]:
    from ..symbolic import AndB

    return cond.args if isinstance(cond, AndB) else (cond,)


def _gate_matches(cond: BoolExpr, gate: BoolExpr) -> bool:
    """Does *cond* consist of the CIV gate's conjuncts plus residuals the
    gate already implies?  (Typical residual: the ``span >= 0`` guard a
    loop aggregation adds -- ``NSP(i)-1 >= 0`` -- implied by the gate's
    own ``NSP(i) > 0``.)"""
    gate_parts = set(_conjuncts(gate))
    for part in _conjuncts(cond):
        if part in gate_parts:
            continue
        if not any(_implies(g, part) for g in gate_parts):
            return False
    # Every gate conjunct must be present (cond must be at least as
    # strong as the gate: rewriting relies on "gate false => no
    # increment => empty interval", so cond => gate is what we need).
    for g in gate_parts:
        if g not in set(_conjuncts(cond)) and not any(
            _implies(c, g) for c in _conjuncts(cond)
        ):
            return False
    return True


def _implies(premise: BoolExpr, conclusion: BoolExpr) -> bool:
    """Cheap syntactic implication over canonical comparisons: for
    ``e + c`` differing by a constant, ``e > 0 => e + c >= 0`` when
    ``c >= -1`` (integers), etc."""
    if premise == conclusion:
        return True
    if not (isinstance(premise, Cmp) and isinstance(conclusion, Cmp)):
        return False
    diff = conclusion.expr - premise.expr
    if not diff.is_constant():
        return False
    c = diff.constant_value()
    if premise.op == ">":
        if conclusion.op == ">=":
            return c >= -1
        if conclusion.op == ">":
            return c >= 0
    if premise.op == ">=":
        if conclusion.op == ">=":
            return c >= 0
        if conclusion.op == ">":
            return c >= 1
    return False
