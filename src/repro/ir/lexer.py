"""Tokenizer for the mini-Fortran loop IR concrete syntax."""

from __future__ import annotations

from dataclasses import dataclass
__all__ = ["Token", "tokenize", "LexError"]

KEYWORDS = {
    "program", "param", "array", "subroutine", "main", "end",
    "do", "while", "if", "then", "else", "call",
    "and", "or", "not", "min", "max",
}

SYMBOLS = [
    "==", "!=", "<=", ">=", "+", "-", "*", "/", "%", "(", ")", "[", "]",
    ",", "=", "<", ">", "@",
]


class LexError(ValueError):
    """Raised on malformed input with line/column context."""


@dataclass(frozen=True)
class Token:
    """One lexical token: kind in {kw, ident, num, sym, newline, eof}."""

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; newlines are significant (statement separators)."""
    tokens: list[Token] = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0]
        col = 0
        length = len(line)
        emitted = False
        while col < length:
            ch = line[col]
            if ch in " \t":
                col += 1
                continue
            if ch.isdigit():
                start = col
                while col < length and line[col].isdigit():
                    col += 1
                tokens.append(Token("num", line[start:col], line_no, start + 1))
                emitted = True
                continue
            if ch.isalpha() or ch == "_":
                start = col
                while col < length and (line[col].isalnum() or line[col] in "_$"):
                    col += 1
                text = line[start:col]
                kind = "kw" if text.lower() in KEYWORDS else "ident"
                canon = text.lower() if kind == "kw" else text
                tokens.append(Token(kind, canon, line_no, start + 1))
                emitted = True
                continue
            for sym in SYMBOLS:
                if line.startswith(sym, col):
                    tokens.append(Token("sym", sym, line_no, col + 1))
                    col += len(sym)
                    emitted = True
                    break
            else:
                raise LexError(f"line {line_no}:{col + 1}: unexpected {ch!r}")
        if emitted:
            tokens.append(Token("newline", "\n", line_no, length + 1))
    tokens.append(Token("eof", "", len(source.splitlines()) + 1, 1))
    return tokens
