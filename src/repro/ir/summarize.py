"""Interprocedural access summarization: loop IR -> USR summaries.

This is the Section 2 construction: a bottom-up, structural data-flow
pass over the region tree that produces per-array (WF, RO, RW) summaries
represented as USRs.  Statement summaries are composed in program order
(Fig. 2(a)), IF branches merge under mutually exclusive gates, DO loops
aggregate (Fig. 2(b)), and call sites translate the callee's summary into
the caller's index space (array renaming + base offsets, modelling
Fortran's reshaping at call boundaries).

Scalars are executed symbolically; conditionally incremented scalars that
defeat closed forms (CIVs, Section 3.3) are modelled with *prefix atoms*
``$civ_c_label(i)`` denoting the scalar's value on entry to iteration
``i`` -- exactly the paper's ``CIV@k`` names of Fig. 7(b) -- plus
recorded increment information so the runtime can precompute them
(CIV-COMP) and the factorizer can exploit their monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import profiling as _profiling
from ..symbolic import ArrayRef, BoolExpr, Expr, sym
from ..usr import (
    EMPTY,
    LoopSummaries,
    Summary,
    aggregate_loop,
    compose,
    merge_branches,
    usr_gate,
    usr_leaf,
    usr_union,
)
from ..lmad import point
from .ast import (
    AssignArray,
    AssignScalar,
    Call,
    Do,
    If,
    IRStmt,
    Program,
    Subroutine,
    While,
)
from .convert import to_bool, to_expr

__all__ = [
    "CIVInfo",
    "ReductionInfo",
    "RegionSummary",
    "LoopAnalysisInput",
    "Summarizer",
    "summarize_loop",
]


@dataclass(frozen=True)
class CIVInfo:
    """A conditionally incremented induction variable of the target loop.

    ``prefix_array`` names the virtual prefix-sum array: its ``i``-th
    entry is the CIV's value on entry to iteration ``i``; entry
    ``upper+1`` is the final value (the paper's ``CIV@5``).
    ``nonnegative`` records whether every increment is provably >= 0,
    which makes the prefix array monotone.
    """

    name: str
    prefix_array: str
    loop_label: str
    nonnegative: bool


@dataclass(frozen=True)
class ReductionInfo:
    """A reduction candidate: ``A[e] = A[e] + expr`` statements."""

    array: str
    #: True when the loop also writes the array outside update statements
    #: (the EXT-RRED shape of Section 4).
    has_other_writes: bool
    #: True when every update of the array has the additive spine
    #: ``A[e] = A[e] +/- delta``.  Only additive updates commute under
    #: the runtime's delta-merge; a non-additive update (``max``,
    #: ``*``, ...) may run as a reduction only if proven non-overlapping.
    additive: bool = True


@dataclass
class RegionSummary:
    """Per-array summaries plus the symbolic scalar state at region exit."""

    arrays: dict[str, Summary] = field(default_factory=dict)
    scalars: dict[str, Expr] = field(default_factory=dict)
    #: arrays updated by reduction-shaped statements in this region
    reduction_arrays: set[str] = field(default_factory=set)
    #: arrays with at least one non-additive update (cannot delta-merge)
    nonadditive_updates: set[str] = field(default_factory=set)
    #: arrays written by non-reduction statements in this region
    plain_written: set[str] = field(default_factory=set)
    #: region contained constructs the converter could not represent
    approximate: bool = False

    def array_summary(self, name: str) -> Summary:
        return self.arrays.get(name, Summary())


@dataclass
class LoopAnalysisInput:
    """Everything the analyzer needs about one target loop."""

    label: str
    index: str
    lower: Expr
    upper: Expr
    summaries: dict[str, LoopSummaries]
    body_summary: RegionSummary
    reductions: dict[str, ReductionInfo]
    civs: list[CIVInfo]
    monotone_arrays: frozenset[str]
    approximate: bool
    #: scalars carrying a loop-level flow dependence (read-before-write,
    #: not a CIV): forbids parallelization regardless of array summaries
    scalar_flow_deps: frozenset[str] = frozenset()
    is_while: bool = False
    trip_symbol: Optional[str] = None


def _demote(summary: Summary) -> Summary:
    """Most conservative reclassification: everything becomes RW (and,
    for the reduction gate, everything counts as an exposed read)."""
    accessed = summary.all_accessed()
    return Summary(wf=EMPTY, ro=EMPTY, rw=accessed, exposed=accessed)


class Summarizer:
    """Summarizes a program's regions; memoizes subroutine summaries.

    With ``interprocedural=False`` (the commercial-compiler baseline
    model) call sites are not translated: every array of the program
    becomes a conservative whole-array RW access at the call, exactly the
    "lacks interprocedural dependence analysis" behaviour the paper
    attributes to ifort/xlf.
    """

    def __init__(self, program: Program, interprocedural: bool = True):
        self.program = program
        self.interprocedural = interprocedural
        self._sub_cache: dict[str, RegionSummary] = {}
        self._fresh = 0

    # -- helpers -----------------------------------------------------------
    def fresh_symbol(self, base: str) -> Expr:
        self._fresh += 1
        return sym(f"${base}.{self._fresh}")

    # -- region summarization ------------------------------------------------
    def summarize_region(
        self,
        stmts: tuple[IRStmt, ...],
        scalars: dict[str, Expr],
        civ_names: Optional[dict[str, Expr]] = None,
    ) -> RegionSummary:
        """Summarize a statement sequence starting from *scalars*.

        *civ_names* maps CIV scalar names to their entry-value expressions;
        assignments of shape ``c = c + e`` to those names are tracked
        without destroying the prefix-atom representation.
        """
        region = RegionSummary(scalars=dict(scalars))
        for stmt in stmts:
            step = self._summarize_stmt(stmt, region, civ_names or {})
            self._merge_sequential(region, step)
        return region

    def _merge_sequential(self, region: RegionSummary, step: RegionSummary) -> None:
        for name, summary in step.arrays.items():
            if name in region.arrays:
                region.arrays[name] = compose(region.arrays[name], summary)
            else:
                region.arrays[name] = summary
        region.scalars = step.scalars
        region.reduction_arrays |= step.reduction_arrays
        region.nonadditive_updates |= step.nonadditive_updates
        region.plain_written |= step.plain_written
        region.approximate |= step.approximate

    def _summarize_stmt(
        self,
        stmt: IRStmt,
        region: RegionSummary,
        civ_names: dict[str, Expr],
    ) -> RegionSummary:
        scalars = region.scalars
        if isinstance(stmt, AssignScalar):
            return self._do_assign_scalar(stmt, scalars)
        if isinstance(stmt, AssignArray):
            return self._do_assign_array(stmt, scalars)
        if isinstance(stmt, If):
            return self._do_if(stmt, scalars, civ_names)
        if isinstance(stmt, Do):
            return self._do_loop(stmt, scalars)
        if isinstance(stmt, While):
            return self._do_while(stmt, scalars)
        if isinstance(stmt, Call):
            return self._do_call(stmt, scalars)
        raise TypeError(f"unknown statement {stmt!r}")

    # -- statements -----------------------------------------------------------
    def _do_assign_scalar(
        self, stmt: AssignScalar, scalars: dict[str, Expr]
    ) -> RegionSummary:
        out = RegionSummary(scalars=dict(scalars))
        value = to_expr(stmt.expr, scalars)
        reads = self._collect_reads(stmt.expr, scalars)
        if value is None:
            value = self.fresh_symbol(stmt.name)
            out.approximate = True
        out.scalars[stmt.name] = value
        for arr, usr in reads.items():
            out.arrays[arr] = Summary.read(usr)
        return out

    def _do_assign_array(
        self, stmt: AssignArray, scalars: dict[str, Expr]
    ) -> RegionSummary:
        out = RegionSummary(scalars=dict(scalars))
        index = to_expr(stmt.index, scalars)
        reads = self._collect_reads(stmt.expr, scalars)
        # Index-expression reads count too (e.g. A[B[i]] reads B).
        for arr, usr in self._collect_reads(stmt.index, scalars).items():
            reads[arr] = usr_union(reads.get(arr, EMPTY), usr)
        if index is None:
            # Unknown write target: the whole array becomes RW.
            decl = self.program.array_decl(stmt.array)
            size = (
                to_expr(decl.size, {}) if decl is not None else None
            )
            from ..lmad import interval

            whole = usr_leaf(
                interval(1, size if size is not None else sym("$unknown"))
            )
            out.arrays[stmt.array] = Summary.read_write(whole)
            out.approximate = True
        else:
            target = usr_leaf(point(index))
            if stmt.is_update:
                from .parser import is_additive_update

                out.arrays[stmt.array] = Summary.read_write(target)
                out.reduction_arrays.add(stmt.array)
                if not is_additive_update(stmt.expr, stmt.array, stmt.index):
                    out.nonadditive_updates.add(stmt.array)
                # Only the self-read ``A[index]`` is part of the update;
                # any OTHER element of the same array read by the RHS
                # (``A[e] = A[e] + A[f]``) is a genuine exposed read and
                # must stay in the summary, or flow dependences through
                # it would be invisible to the independence equations.
                self_reads = reads.pop(stmt.array, None)
                if self_reads is not None and self_reads != target:
                    from ..usr.build import usr_subtract

                    other = usr_subtract(self_reads, target)
                    if other is not EMPTY:
                        reads[stmt.array] = other
            else:
                out.arrays[stmt.array] = Summary.write(target)
                out.plain_written.add(stmt.array)
        for arr, usr in reads.items():
            read_summary = Summary.read(usr)
            if arr in out.arrays:
                out.arrays[arr] = compose(read_summary, out.arrays[arr])
            else:
                out.arrays[arr] = read_summary
        return out

    def _collect_reads(self, expr, scalars: dict[str, Expr]) -> dict:
        """Array elements read while evaluating *expr*, as USRs."""
        from .ast import ArrayRead, BinOp, Intrinsic, UnaryOp

        out: dict[str, object] = {}

        def walk(e) -> None:
            if isinstance(e, ArrayRead):
                idx = to_expr(e.index, scalars)
                if idx is not None:
                    leaf = usr_leaf(point(idx))
                else:
                    from ..lmad import interval

                    decl = self.program.array_decl(e.array)
                    size = to_expr(decl.size, {}) if decl else sym("$unknown")
                    leaf = usr_leaf(interval(1, size))
                out[e.array] = usr_union(out.get(e.array, EMPTY), leaf)
                walk(e.index)
            elif isinstance(e, BinOp):
                walk(e.left)
                walk(e.right)
            elif isinstance(e, UnaryOp):
                walk(e.arg)
            elif isinstance(e, Intrinsic):
                for a in e.args:
                    walk(a)

        walk(expr)
        return out

    def _do_if(
        self, stmt: If, scalars: dict[str, Expr], civ_names: dict[str, Expr]
    ) -> RegionSummary:
        cond = to_bool(stmt.cond, scalars)
        then_region = self.summarize_region(stmt.then_body, scalars, civ_names)
        else_region = self.summarize_region(stmt.else_body, scalars, civ_names)
        # Reads performed by evaluating the condition itself.
        cond_reads = self._collect_reads(stmt.cond, scalars)
        out = RegionSummary(scalars={})
        if cond is None:
            # Unconvertible gate: merge both branches conservatively (all
            # touched locations demoted to RW -- sound overestimation).
            # sorted: insertion order here decides downstream iteration
            # order (and thus e.g. the first tier-0 screening miss), so
            # it must not depend on per-process hash randomization
            for name in sorted(set(then_region.arrays) | set(else_region.arrays)):
                merged = usr_union(
                    then_region.array_summary(name).all_accessed(),
                    else_region.array_summary(name).all_accessed(),
                )
                out.arrays[name] = Summary.read_write(merged)
            out.approximate = True
            out.scalars = dict(scalars)
            assigned = sorted(set(then_region.scalars) | set(else_region.scalars))
            for name in assigned:
                t = then_region.scalars.get(name, scalars.get(name))
                e = else_region.scalars.get(name, scalars.get(name))
                if t == e and t is not None:
                    out.scalars[name] = t
                else:
                    out.scalars[name] = self.fresh_symbol(name)
        else:
            for name in sorted(set(then_region.arrays) | set(else_region.arrays)):
                out.arrays[name] = merge_branches(
                    cond,
                    then_region.array_summary(name),
                    else_region.array_summary(name),
                )
            out.scalars = dict(scalars)
            for name in sorted(set(then_region.scalars) | set(else_region.scalars)):
                t = then_region.scalars.get(name, scalars.get(name))
                e = else_region.scalars.get(name, scalars.get(name))
                if t == e and t is not None:
                    out.scalars[name] = t
                elif name in civ_names:
                    # CIV merge handled by the caller's prefix atoms: keep
                    # the entry value so later uses see the iteration-start
                    # value (increments live at iteration end).
                    out.scalars[name] = scalars[name]
                else:
                    out.scalars[name] = self.fresh_symbol(name)
        out.reduction_arrays = then_region.reduction_arrays | else_region.reduction_arrays
        out.nonadditive_updates = (
            then_region.nonadditive_updates | else_region.nonadditive_updates
        )
        out.plain_written = then_region.plain_written | else_region.plain_written
        out.approximate |= then_region.approximate or else_region.approximate
        for arr, usr in cond_reads.items():
            read_summary = Summary.read(usr)
            if arr in out.arrays:
                out.arrays[arr] = compose(read_summary, out.arrays[arr])
            else:
                out.arrays[arr] = read_summary
        return out

    # -- loops ------------------------------------------------------------------
    def _loop_bounds(
        self, stmt: Do, scalars: dict[str, Expr]
    ) -> tuple[Optional[Expr], Optional[Expr]]:
        return (to_expr(stmt.lower, scalars), to_expr(stmt.upper, scalars))

    def _do_loop(self, stmt: Do, scalars: dict[str, Expr]) -> RegionSummary:
        from .scalars import assigned_scalars, read_before_write

        lower, upper = self._loop_bounds(stmt, scalars)
        body_scalars = dict(scalars)
        body_scalars[stmt.index] = sym(stmt.index)
        # Scalars assigned inside the loop have unknown values at the
        # entry of iterations after the first; only expose the opaque to
        # scalars actually read before written (defined-before-use
        # scalars keep exact symbolic values).
        exposed = read_before_write(stmt.body)
        for name in assigned_scalars(stmt.body):
            if name != stmt.index and name in exposed:
                self._fresh += 1
                body_scalars[name] = ArrayRef(
                    f"$entry_{name}.{self._fresh}", [sym(stmt.index)]
                ).as_expr()
        body = self.summarize_region(stmt.body, body_scalars)
        out = RegionSummary(scalars=dict(scalars))
        out.reduction_arrays = set(body.reduction_arrays)
        out.nonadditive_updates = set(body.nonadditive_updates)
        out.plain_written = set(body.plain_written)
        out.approximate = body.approximate
        if lower is None or upper is None:
            out.approximate = True
            for name, summary in body.arrays.items():
                out.arrays[name] = _demote(
                    Summary.read_write(summary.all_accessed())
                )
            return out
        for name, summary in body.arrays.items():
            ls = aggregate_loop(stmt.index, lower, upper, summary)
            out.arrays[name] = ls.aggregate
        # Scalar exit values: last-iteration value when it only depends on
        # the index and loop-entry state; otherwise opaque.
        for name, value in body.scalars.items():
            if name == stmt.index:
                continue
            if name in scalars and value == scalars[name]:
                out.scalars[name] = value
                continue
            if value is not None and stmt.index in value.free_symbols():
                out.scalars[name] = value.substitute({stmt.index: upper})
            elif value is not None and not _mentions_fresh(value):
                out.scalars[name] = value
            else:
                out.scalars[name] = self.fresh_symbol(name)
        return out

    def _do_while(self, stmt: While, scalars: dict[str, Expr]) -> RegionSummary:
        """A while loop summarizes like a do-loop with opaque trip count."""
        label = stmt.label or f"while.{self._fresh}"
        trip = f"$trips_{label}"
        index = f"$w_{label}"
        body_scalars = dict(scalars)
        body_scalars[index] = sym(index)
        body = self.summarize_region(stmt.body, body_scalars)
        out = RegionSummary(scalars=dict(scalars))
        out.reduction_arrays = set(body.reduction_arrays)
        out.nonadditive_updates = set(body.nonadditive_updates)
        out.plain_written = set(body.plain_written)
        out.approximate = body.approximate
        for name, summary in body.arrays.items():
            ls = aggregate_loop(index, sym(index) * 0 + 1, sym(trip), summary)
            out.arrays[name] = ls.aggregate
        for name, value in body.scalars.items():
            if name == index:
                continue
            if name in scalars and value == scalars[name]:
                out.scalars[name] = value
            else:
                out.scalars[name] = self.fresh_symbol(name)
        return out

    # -- calls --------------------------------------------------------------------
    def summarize_subroutine(self, name: str) -> RegionSummary:
        """Summary of a subroutine body in terms of its formals (memoized)."""
        if name in self._sub_cache:
            return self._sub_cache[name]
        sub = self.program.subroutines[name]
        scalars = {p: sym(p) for p in sub.scalar_params}
        summary = self.summarize_region(sub.body, scalars)
        self._sub_cache[name] = summary
        return summary

    def _opaque_call(self, stmt: Call, scalars: dict[str, Expr]) -> RegionSummary:
        """Intra-procedural baseline: a call clobbers its array arguments
        (whole-array RW) and yields no information."""
        out = RegionSummary(scalars=dict(scalars))
        out.approximate = True
        for arg in stmt.args:
            if arg.is_array():
                usr = _whole_array_usr(self.program, arg.array)
                summary = Summary.read_write(usr)
                if arg.array in out.arrays:
                    out.arrays[arg.array] = compose(out.arrays[arg.array], summary)
                else:
                    out.arrays[arg.array] = summary
        return out

    def _do_call(self, stmt: Call, scalars: dict[str, Expr]) -> RegionSummary:
        sub = self.program.subroutines.get(stmt.callee)
        if sub is None:
            raise KeyError(f"call to unknown subroutine {stmt.callee!r}")
        if not self.interprocedural:
            return self._opaque_call(stmt, scalars)
        callee = self.summarize_subroutine(stmt.callee)
        # Bind formals to actuals.
        scalar_binding: dict[str, Expr] = {}
        array_binding: dict[str, tuple[str, Optional[Expr]]] = {}
        approx = callee.approximate
        scalar_formals = iter(sub.scalar_params)
        array_formals = iter(sub.array_params)
        for arg in stmt.args:
            if arg.is_array():
                formal = next(array_formals)
                offset = None
                if arg.offset is not None:
                    offset = to_expr(arg.offset, scalars)
                    if offset is None:
                        approx = True
                array_binding[formal] = (arg.array, offset)
            else:
                formal = next(scalar_formals)
                value = to_expr(arg.scalar, scalars)
                if value is None:
                    value = self.fresh_symbol(formal)
                    approx = True
                scalar_binding[formal] = value
        out = RegionSummary(scalars=dict(scalars))
        out.approximate = approx
        # Translate each callee-array summary into the caller's space.
        for formal, summary in callee.arrays.items():
            target, offset = array_binding.get(formal, (formal, None))
            translated = _translate_summary(
                summary, scalar_binding, array_binding, offset
            )
            if formal in callee.reduction_arrays:
                out.reduction_arrays.add(target)
            if formal in callee.nonadditive_updates:
                out.nonadditive_updates.add(target)
            if formal in callee.plain_written:
                out.plain_written.add(target)
            if target in out.arrays:
                out.arrays[target] = compose(out.arrays[target], translated)
            else:
                out.arrays[target] = translated
        return out


def _mentions_fresh(expr: Expr) -> bool:
    return any(name.startswith("$") for name in expr.free_symbols())


def _translate_summary(
    summary: Summary,
    scalar_binding: dict[str, Expr],
    array_binding: dict[str, tuple[str, Optional[Expr]]],
    offset: Optional[Expr],
) -> Summary:
    """Substitute formals by actuals and shift bases by the array offset."""
    mapping = dict(scalar_binding)
    renames = {formal: actual for formal, (actual, _off) in array_binding.items()}
    out = summary.substitute(mapping)
    out = Summary(
        wf=_rename_arrays(out.wf, renames),
        ro=_rename_arrays(out.ro, renames),
        rw=_rename_arrays(out.rw, renames),
        exposed=_rename_arrays(out.exposed, renames),
    )
    if offset is not None:
        out = Summary(
            wf=_shift_usr(out.wf, offset),
            ro=_shift_usr(out.ro, offset),
            rw=_shift_usr(out.rw, offset),
            exposed=_shift_usr(out.exposed, offset),
        )
    return out


def _rename_arrays(usr, renames: dict[str, str]):
    """Rename ArrayRef atoms inside all expressions of a USR (index arrays
    passed as parameters keep pointing at the caller's arrays)."""
    if not renames:
        return usr
    from ..usr import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union
    from ..usr.build import usr_call, usr_gate, usr_intersect, usr_recurrence, usr_subtract

    def rename_expr(e: Expr) -> Expr:
        out = e
        for atom in e.atoms():
            if isinstance(atom, ArrayRef) and atom.array in renames:
                new_atom = ArrayRef(
                    renames[atom.array], [rename_expr(i) for i in atom.indices]
                )
                out = _replace_atom(out, atom, new_atom)
        return out

    def rename_bool(b: BoolExpr) -> BoolExpr:
        from ..symbolic import AndB, Cmp, Divides, NotB, OrB, b_and, b_or, b_not as bn

        if isinstance(b, Cmp):
            from ..symbolic.boolean import _make_cmp

            return _make_cmp(rename_expr(b.expr), b.op)
        if isinstance(b, Divides):
            from ..symbolic import divides

            return divides(b.k, rename_expr(b.expr))
        if isinstance(b, AndB):
            return b_and(*(rename_bool(a) for a in b.args))
        if isinstance(b, OrB):
            return b_or(*(rename_bool(a) for a in b.args))
        if isinstance(b, NotB):
            return bn(rename_bool(b.arg))
        return b

    def walk(node):
        if isinstance(node, Leaf):
            from ..lmad import LMAD

            return Leaf(
                LMAD(
                    [rename_expr(d) for d in x.strides],
                    [rename_expr(s) for s in x.spans],
                    rename_expr(x.base),
                )
                for x in node.lmads
            )
        if isinstance(node, Union):
            return usr_union(*(walk(a) for a in node.args))
        if isinstance(node, Intersect):
            return usr_intersect(*(walk(a) for a in node.args))
        if isinstance(node, Subtract):
            return usr_subtract(walk(node.left), walk(node.right))
        if isinstance(node, Gate):
            return usr_gate(rename_bool(node.cond), walk(node.body))
        if isinstance(node, CallSite):
            return usr_call(node.callee, walk(node.body))
        if isinstance(node, Recurrence):
            return usr_recurrence(
                node.index,
                rename_expr(node.lower),
                rename_expr(node.upper),
                walk(node.body),
                partial=node.partial,
            )
        raise TypeError(f"unknown USR node {node!r}")

    return walk(usr)


def _replace_atom(expr: Expr, old: ArrayRef, new: ArrayRef) -> Expr:
    """Replace one atom by another throughout an expression."""
    from ..symbolic.expr import Expr as E

    out: dict = {}
    for mono, coeff in expr.terms:
        new_mono = tuple(
            sorted(
                ((new if a == old else a, p) for a, p in mono),
                key=lambda ap: ap[0]._order_key(),
            )
        )
        out[new_mono] = out.get(new_mono, 0) + coeff
    return E._from_terms(out)


def _shift_usr(usr, offset: Expr):
    """Displace every LMAD base by *offset* (array section passing)."""
    from ..usr import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union
    from ..usr.build import usr_call, usr_gate, usr_intersect, usr_recurrence, usr_subtract

    if isinstance(usr, Leaf):
        return Leaf(x.shifted(offset) for x in usr.lmads)
    if isinstance(usr, Union):
        return usr_union(*(_shift_usr(a, offset) for a in usr.args))
    if isinstance(usr, Intersect):
        return usr_intersect(*(_shift_usr(a, offset) for a in usr.args))
    if isinstance(usr, Subtract):
        return usr_subtract(_shift_usr(usr.left, offset), _shift_usr(usr.right, offset))
    if isinstance(usr, Gate):
        return usr_gate(usr.cond, _shift_usr(usr.body, offset))
    if isinstance(usr, CallSite):
        return usr_call(usr.callee, _shift_usr(usr.body, offset))
    if isinstance(usr, Recurrence):
        return usr_recurrence(
            usr.index, usr.lower, usr.upper, _shift_usr(usr.body, offset),
            partial=usr.partial,
        )
    raise TypeError(f"unknown USR node {usr!r}")


# -- target-loop analysis input ---------------------------------------------------


def _find_civs(stmt: Do) -> list[str]:
    """Scalars only ever assigned as ``c = c + e`` inside the loop body."""
    from .ast import ArrayRead, BinOp, Var

    assigned: dict[str, list] = {}

    def walk(stmts) -> None:
        for s in stmts:
            if isinstance(s, AssignScalar):
                assigned.setdefault(s.name, []).append(s.expr)
            elif isinstance(s, If):
                walk(s.then_body)
                walk(s.else_body)
            elif isinstance(s, (Do, While)):
                walk(s.body)

    walk(stmt.body)
    civs = []
    for name, exprs in assigned.items():
        def is_increment(e) -> bool:
            return (
                isinstance(e, BinOp)
                and e.op == "+"
                and (
                    (isinstance(e.left, Var) and e.left.name == name)
                    or (isinstance(e.right, Var) and e.right.name == name)
                )
            )

        if all(is_increment(e) for e in exprs):
            civs.append(name)
    return civs


def summarize_loop(
    program: Program, label: str, interprocedural: bool = True
) -> LoopAnalysisInput:
    """Produce the analyzer's input for one labelled loop.

    The loop body is summarized as a function of the loop index; CIVs get
    prefix atoms; the per-array summaries are aggregated via Fig. 2(b).
    """
    loop = program.find_loop(label)
    if loop is None:
        raise KeyError(f"no loop labelled {label!r} in program {program.name!r}")
    summarizer = Summarizer(program, interprocedural=interprocedural)
    scalars: dict[str, Expr] = {p: sym(p) for p in program.params}
    is_while = isinstance(loop, While)
    if is_while:
        from ..symbolic import as_expr

        index = f"$w_{label}"
        lower = as_expr(1)
        upper = sym(f"$trips_{label}")
        trip_symbol = f"$trips_{label}"
        body_stmts = loop.body
        civ_candidates = _find_civs(Do(index, None, None, loop.body, label))  # type: ignore[arg-type]
    else:
        index = loop.index
        lower = to_expr(loop.lower, scalars)
        upper = to_expr(loop.upper, scalars)
        trip_symbol = None
        body_stmts = loop.body
        civ_candidates = _find_civs(loop)
        if lower is None or upper is None:
            raise ValueError(f"loop {label!r} has unanalyzable bounds")

    from .scalars import assigned_scalars, read_before_write

    civs: list[CIVInfo] = []
    body_scalars = dict(scalars)
    body_scalars[index] = sym(index)
    civ_entry: dict[str, Expr] = {}
    assigned = assigned_scalars(body_stmts)
    exposed = read_before_write(body_stmts)
    for name in civ_candidates:
        prefix = f"$civ_{name}_{label}"
        entry = ArrayRef(prefix, [sym(index)]).as_expr()
        body_scalars[name] = entry
        civ_entry[name] = entry
        civs.append(
            CIVInfo(name=name, prefix_array=prefix, loop_label=label, nonnegative=True)
        )
    # Scalars assigned in the body have unknown per-iteration entry
    # values; scalars read before written (and not CIVs) carry a
    # loop-level flow dependence.
    scalar_deps: set[str] = set()
    for name in assigned:
        if name == index or name in civ_entry:
            continue
        body_scalars[name] = ArrayRef(
            f"$entry_{name}_{label}", [sym(index)]
        ).as_expr()
        if name in exposed and name in assigned:
            scalar_deps.add(name)

    with _profiling.timer("usr.build"):
        body = summarizer.summarize_region(body_stmts, body_scalars, civ_entry)

    # CIV aggregation refinement (Section 3.3): rewrite gated intervals
    # ending at the iteration's total increment into ungated intervals
    # ending at the next prefix value.
    monotone: set[str] = set()
    if civs:
        from .civagg import civ_aggregate_region, civ_increments_nonneg

        body = civ_aggregate_region(body, civs, index, body_stmts, body_scalars)
        index_bounds = {index: (lower, upper)}
        for info in civs:
            if civ_increments_nonneg(
                body_stmts, info.name, body_scalars, index_bounds
            ):
                monotone.add(info.prefix_array)

    summaries: dict[str, LoopSummaries] = {}
    with _profiling.timer("usr.build"):
        for name, summary in body.arrays.items():
            summaries[name] = aggregate_loop(index, lower, upper, summary)

    reductions: dict[str, ReductionInfo] = {}
    for arr in body.reduction_arrays:
        reductions[arr] = ReductionInfo(
            array=arr,
            has_other_writes=arr in body.plain_written,
            additive=arr not in body.nonadditive_updates,
        )
    return LoopAnalysisInput(
        label=label,
        index=index,
        lower=lower,
        upper=upper,
        summaries=summaries,
        body_summary=body,
        reductions=reductions,
        civs=civs,
        monotone_arrays=frozenset(monotone),
        approximate=body.approximate,
        scalar_flow_deps=frozenset(scalar_deps),
        is_while=is_while,
        trip_symbol=trip_symbol,
    )


def _whole_array_usr(program: Program, name: str):
    from ..lmad import interval

    decl = program.array_decl(name)
    size = to_expr(decl.size, {}) if decl is not None else None
    return usr_leaf(interval(1, size if size is not None else sym("$unknown")))
