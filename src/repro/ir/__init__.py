"""The loop IR substrate: mini-Fortran AST, parser, interpreter and the
interprocedural USR summarizer."""

from .ast import (
    ArrayDecl,
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Call,
    CallArg,
    Do,
    If,
    Intrinsic,
    IRExpr,
    IRStmt,
    Num,
    Program,
    Subroutine,
    UnaryOp,
    Var,
    While,
)
from .convert import to_bool, to_expr
from .interp import InterpError, IterationRecord, LoopTrace, Machine, RunResult
from .parser import ParseError, parse_expression, parse_program
from .summarize import (
    CIVInfo,
    LoopAnalysisInput,
    ReductionInfo,
    RegionSummary,
    Summarizer,
    summarize_loop,
)

__all__ = [
    "Program", "Subroutine", "ArrayDecl",
    "IRExpr", "Num", "Var", "ArrayRead", "BinOp", "UnaryOp", "Intrinsic",
    "IRStmt", "AssignScalar", "AssignArray", "If", "Do", "While", "Call",
    "CallArg",
    "parse_program", "parse_expression", "ParseError",
    "Machine", "RunResult", "LoopTrace", "IterationRecord", "InterpError",
    "to_expr", "to_bool",
    "Summarizer", "summarize_loop", "LoopAnalysisInput", "RegionSummary",
    "CIVInfo", "ReductionInfo",
]
