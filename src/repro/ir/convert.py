"""IR-expression to symbolic-expression conversion.

The summarizer symbolically executes scalar code; this module lowers IR
expressions into the canonical :class:`~repro.symbolic.Expr` /
:class:`~repro.symbolic.BoolExpr` domains.  Conversion can fail (``None``)
on constructs outside the symbolic language (boolean-valued arithmetic
positions and the like); callers then fall back to conservative
summaries.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..symbolic import (
    ArrayRef,
    BoolExpr,
    Expr,
    b_and,
    b_not,
    b_or,
    cmp_eq,
    cmp_ge,
    cmp_gt,
    cmp_le,
    cmp_lt,
    cmp_ne,
    floor_div,
    ne0,
    smax,
    smin,
    sym,
)
from .ast import ArrayRead, BinOp, Intrinsic, IRExpr, Num, UnaryOp, Var

__all__ = ["to_expr", "to_bool"]

_CMP_MAKERS = {
    "==": cmp_eq,
    "!=": cmp_ne,
    "<": cmp_lt,
    "<=": cmp_le,
    ">": cmp_gt,
    ">=": cmp_ge,
}


def to_expr(
    expr: IRExpr, scalars: Mapping[str, Expr], renames: Optional[Mapping[str, str]] = None
) -> Optional[Expr]:
    """Lower an integer-valued IR expression; None when not representable.

    *scalars* maps in-scope scalar names to their current symbolic value;
    unmapped names become free symbols.  *renames* maps array names (used
    when translating callee summaries into the caller's arrays).
    """
    if isinstance(expr, Num):
        from ..symbolic import as_expr

        return as_expr(expr.value)
    if isinstance(expr, Var):
        if expr.name in scalars:
            return scalars[expr.name]
        return sym(expr.name)
    if isinstance(expr, ArrayRead):
        index = to_expr(expr.index, scalars, renames)
        if index is None:
            return None
        name = renames.get(expr.array, expr.array) if renames else expr.array
        return ArrayRef(name, [index]).as_expr()
    if isinstance(expr, BinOp):
        if expr.op in ("and", "or") or expr.op in _CMP_MAKERS:
            return None  # boolean-valued in an arithmetic position
        left = to_expr(expr.left, scalars, renames)
        right = to_expr(expr.right, scalars, renames)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right.is_constant() and right.constant_value() > 0:
                return floor_div(left, right.constant_value())
            return None
        if expr.op == "%":
            return None  # modulo stays opaque
        return None
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            inner = to_expr(expr.arg, scalars, renames)
            return None if inner is None else -inner
        return None
    if isinstance(expr, Intrinsic):
        args = [to_expr(a, scalars, renames) for a in expr.args]
        if any(a is None for a in args):
            return None
        if expr.name == "min":
            return smin(*args)  # type: ignore[arg-type]
        if expr.name == "max":
            return smax(*args)  # type: ignore[arg-type]
        return None
    return None


def to_bool(
    expr: IRExpr, scalars: Mapping[str, Expr], renames: Optional[Mapping[str, str]] = None
) -> Optional[BoolExpr]:
    """Lower a condition-position IR expression to a boolean predicate."""
    if isinstance(expr, BinOp):
        if expr.op in _CMP_MAKERS:
            left = to_expr(expr.left, scalars, renames)
            right = to_expr(expr.right, scalars, renames)
            if left is None or right is None:
                return None
            return _CMP_MAKERS[expr.op](left, right)
        if expr.op == "and":
            a = to_bool(expr.left, scalars, renames)
            b = to_bool(expr.right, scalars, renames)
            if a is None or b is None:
                return None
            return b_and(a, b)
        if expr.op == "or":
            a = to_bool(expr.left, scalars, renames)
            b = to_bool(expr.right, scalars, renames)
            if a is None or b is None:
                return None
            return b_or(a, b)
    if isinstance(expr, UnaryOp) and expr.op == "not":
        inner = to_bool(expr.arg, scalars, renames)
        return None if inner is None else b_not(inner)
    # Plain integer expression in condition position: nonzero test.
    value = to_expr(expr, scalars, renames)
    if value is not None:
        return ne0(value)
    return None
