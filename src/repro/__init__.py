"""repro: reproduction of "Logical Inference Techniques for Loop
Parallelization" (Oancea & Rauchwerger, PLDI 2012).

Layers, bottom-up:

* :mod:`repro.symbolic` -- symbolic integer/boolean algebra, ranges,
  Fourier-Motzkin elimination;
* :mod:`repro.lmad` -- linear memory access descriptors and their
  predicate extraction;
* :mod:`repro.usr` -- the USR set-expression language, data-flow summary
  construction, reshaping, estimates, BOUNDS-COMP;
* :mod:`repro.pdag` -- the predicate language, simplification and the
  complexity-ordered cascade;
* :mod:`repro.core` -- the FACTOR inference algorithm, independence
  equations and the hybrid analyzer (the paper's contribution);
* :mod:`repro.ir` -- the mini-Fortran loop IR: parser, interpreter,
  interprocedural summarizer;
* :mod:`repro.runtime` -- simulated multiprocessor, conditional
  parallelization executor, LRPD speculation, inspector;
* :mod:`repro.baselines` -- the commercial-compiler model and classical
  dependence tests;
* :mod:`repro.workloads` -- the 26 benchmark models of Tables 1-3;
* :mod:`repro.evaluation` -- regenerates every table and figure;
* :mod:`repro.fuzz` -- the differential fuzzing harness (generator,
  three-way soundness oracle, delta-debugging shrinker);
* :mod:`repro.api` -- the stable Engine facade: one cached, concurrent
  entry point for analyze/plan/execute (see ``docs/API.md``);
* :mod:`repro.server` -- the network serving subsystem: asyncio
  JSON-lines server, digest-sharded engine pool, admission control and
  the load-generation harness (see ``docs/SERVER.md``).

Quickstart::

    from repro.api import Engine, EngineConfig

    engine = Engine(EngineConfig())
    compiled = engine.compile(SOURCE)
    plan = compiled.plan("my_loop")
    report = compiled.execute("my_loop", params, arrays)
"""

__version__ = "1.2.0"

from . import (
    api,
    baselines,
    core,
    evaluation,
    fuzz,
    ir,
    lmad,
    pdag,
    runtime,
    server,
    symbolic,
    usr,
    workloads,
)

__all__ = [
    "symbolic", "lmad", "usr", "pdag", "core", "ir", "runtime",
    "baselines", "workloads", "evaluation", "fuzz", "api", "server",
    "__version__",
]
