"""repro: reproduction of "Logical Inference Techniques for Loop
Parallelization" (Oancea & Rauchwerger, PLDI 2012).

Layers, bottom-up:

* :mod:`repro.symbolic` -- symbolic integer/boolean algebra, ranges,
  Fourier-Motzkin elimination;
* :mod:`repro.lmad` -- linear memory access descriptors and their
  predicate extraction;
* :mod:`repro.usr` -- the USR set-expression language, data-flow summary
  construction, reshaping, estimates, BOUNDS-COMP;
* :mod:`repro.pdag` -- the predicate language, simplification and the
  complexity-ordered cascade;
* :mod:`repro.core` -- the FACTOR inference algorithm, independence
  equations and the hybrid analyzer (the paper's contribution);
* :mod:`repro.ir` -- the mini-Fortran loop IR: parser, interpreter,
  interprocedural summarizer;
* :mod:`repro.runtime` -- simulated multiprocessor, conditional
  parallelization executor, LRPD speculation, inspector;
* :mod:`repro.baselines` -- the commercial-compiler model and classical
  dependence tests;
* :mod:`repro.workloads` -- the 26 benchmark models of Tables 1-3;
* :mod:`repro.evaluation` -- regenerates every table and figure.

Quickstart::

    from repro.ir import parse_program
    from repro.core import analyze_loop
    from repro.runtime import HybridExecutor

    program = parse_program(SOURCE)
    plan = analyze_loop(program, "my_loop")
    report = HybridExecutor(program, plan).run(params, arrays)
"""

__version__ = "1.0.0"

from . import baselines, core, evaluation, ir, lmad, pdag, runtime, symbolic, usr, workloads

__all__ = [
    "symbolic", "lmad", "usr", "pdag", "core", "ir", "runtime",
    "baselines", "workloads", "evaluation", "__version__",
]
