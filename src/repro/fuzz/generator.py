"""Seeded random generator of loop programs in the mini-Fortran IR.

Every program has one labelled target loop (``fuzz_loop``) whose body is
drawn from a weighted grammar over the features the analysis pipeline
claims to handle: affine subscripts (including loop-invariant symbolic
offsets), CIV-style conditionally-incremented induction variables,
nested DO loops, conditionals, additive reduction updates, privatizable
temporaries (scalar and array), indirect subscripts through an index
array, and while-loops with an unknown trip count.

Two invariants make a generated case usable as a differential-test
input:

* **determinism** -- a case is a pure function of ``(seed, config)``;
  the only entropy source is one ``random.Random(seed)``;
* **runtime safety** -- every subscript template carries the concrete
  bounds it can reach (parameter values are known at generation time),
  and each array is declared exactly as large as the maximum index any
  of its subscripts can produce, so the interpreter can never fault on
  a generated program.  A crash anywhere in the pipeline is therefore a
  bug in the pipeline, never in the input.

The generated AST is rendered to concrete syntax and *re-parsed*, so a
case's :class:`~repro.ir.ast.Program` is always exactly what
``parse_program(case.source)`` yields (the parser is the component that
marks reduction-update shapes); corpus files can store the source text
alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from ..ir.ast import (
    ArrayDecl,
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Call,
    Do,
    If,
    Intrinsic,
    IRExpr,
    IRStmt,
    Num,
    Program,
    Subroutine,
    UnaryOp,
    Var,
    While,
)
from ..ir.parser import parse_program

__all__ = [
    "GeneratorConfig",
    "FuzzCase",
    "generate_case",
    "render_program",
    "render_stmt",
    "render_expr",
    "TARGET_LABEL",
]

#: Label of the loop every generated program targets.
TARGET_LABEL = "fuzz_loop"


@dataclass(frozen=True)
class GeneratorConfig:
    """Weighted grammar knobs.  All probabilities are independent."""

    #: maximum trip count of the target loop (N is drawn from [0, max_trip])
    max_trip: int = 9
    #: statements per loop body (before nesting expansion)
    min_body_stmts: int = 1
    max_body_stmts: int = 5
    #: recursion depth of generated right-hand-side expressions
    max_expr_depth: int = 2
    #: probability the target loop is a while-loop with a scalar counter
    p_while: float = 0.12
    #: probability of drawing a zero-/one-trip loop (degenerate shapes)
    p_degenerate: float = 0.08
    #: probability a body slot becomes a nested DO loop
    p_nested: float = 0.18
    #: probability a body slot becomes an if/else conditional
    p_if: float = 0.30
    #: probability a generated if has an else branch
    p_else: float = 0.45
    #: probability a body slot becomes an additive reduction update
    p_reduction: float = 0.25
    #: probability a body slot assigns a scalar temporary
    p_scalar_temp: float = 0.25
    #: probability the program carries a conditionally-incremented CIV
    p_civ: float = 0.20
    #: probability a subscript is indirect (through the IDX array)
    p_indirect: float = 0.18
    #: probability a subscript carries a loop-invariant symbolic offset
    p_param_offset: float = 0.30
    #: probability an array write targets the privatizable temp array T
    p_private_temp: float = 0.25
    #: candidate exact-test fallback strategies (drawn per case)
    exact_strategies: tuple = ("inspector", "tls")

    def digest_text(self) -> str:
        """Stable text form of every knob, for cache keys."""
        fields = sorted(self.__dataclass_fields__)
        return "|".join(f"{k}={getattr(self, k)!r}" for k in fields)


@dataclass
class FuzzCase:
    """One generated differential-test input."""

    seed: int
    program: Program
    #: concrete syntax; ``parse_program(source)`` == ``program``
    source: str
    params: dict
    arrays: dict
    label: str = TARGET_LABEL
    exact_strategy: str = "inspector"

    def reparsed(self) -> "FuzzCase":
        """A copy whose program is freshly parsed from ``source``."""
        return replace(self, program=parse_program(self.source))


# -- rendering (AST -> concrete syntax) -------------------------------------


def render_expr(expr: IRExpr) -> str:
    """Fully parenthesized concrete syntax for *expr* (round-trips)."""
    if isinstance(expr, Num):
        if expr.value < 0:
            return f"(0 - {-expr.value})"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRead):
        return f"{expr.array}[{render_expr(expr.index)}]"
    if isinstance(expr, BinOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return f"(not {render_expr(expr.arg)})"
        return f"(- {render_expr(expr.arg)})"
    if isinstance(expr, Intrinsic):
        inside = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({inside})"
    raise TypeError(f"cannot render expression {expr!r}")


def render_stmt(stmt: IRStmt, indent: int = 0) -> list:
    """Concrete-syntax lines for one statement."""
    pad = "  " * indent
    if isinstance(stmt, AssignScalar):
        return [f"{pad}{stmt.name} = {render_expr(stmt.expr)}"]
    if isinstance(stmt, AssignArray):
        return [
            f"{pad}{stmt.array}[{render_expr(stmt.index)}] = "
            f"{render_expr(stmt.expr)}"
        ]
    if isinstance(stmt, If):
        lines = [f"{pad}if {render_expr(stmt.cond)} then"]
        for s in stmt.then_body:
            lines.extend(render_stmt(s, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for s in stmt.else_body:
                lines.extend(render_stmt(s, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, Do):
        head = (
            f"{pad}do {stmt.index} = {render_expr(stmt.lower)}, "
            f"{render_expr(stmt.upper)}"
        )
        if stmt.label:
            head += f" @ {stmt.label}"
        lines = [head]
        for s in stmt.body:
            lines.extend(render_stmt(s, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, While):
        head = f"{pad}while {render_expr(stmt.cond)}"
        if stmt.label:
            head += f" @ {stmt.label}"
        lines = [head]
        for s in stmt.body:
            lines.extend(render_stmt(s, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, Call):
        parts = []
        for arg in stmt.args:
            if arg.is_array():
                text = f"{arg.array}[]"
                if arg.offset is not None:
                    text += f" + {render_expr(arg.offset)}"
                parts.append(text)
            else:
                parts.append(render_expr(arg.scalar))
        return [f"{pad}call {stmt.callee}({', '.join(parts)})"]
    raise TypeError(f"cannot render statement {stmt!r}")


def _render_sub(sub: Subroutine) -> list:
    formals = [f"{p}" for p in sub.scalar_params]
    formals += [f"{p}[]" for p in sub.array_params]
    lines = [f"subroutine {sub.name}({', '.join(formals)})"]
    for s in sub.body:
        lines.extend(render_stmt(s, 1))
    lines.append("end")
    return lines


def render_program(program: Program) -> str:
    """Concrete syntax for a whole program (parses back identically)."""
    lines = [f"program {program.name}"]
    if program.params:
        lines.append("param " + ", ".join(program.params))
    if program.arrays:
        decls = ", ".join(
            f"{d.name}({render_expr(d.size)})" for d in program.arrays
        )
        lines.append("array " + decls)
    for sub in program.subroutines.values():
        lines.append("")
        lines.extend(_render_sub(sub))
    lines.append("")
    lines.append("main")
    for s in program.main:
        lines.extend(render_stmt(s, 1))
    lines.append("end")
    lines.append("end")
    return "\n".join(lines) + "\n"


# -- generation --------------------------------------------------------------


class _Gen:
    """One generation run: carries the rng, name pools and bounds state."""

    DATA_ARRAYS = ("A", "B")
    TEMP_ARRAY = "T"
    IDX_ARRAY = "IDX"
    #: index-array contents are drawn from [1, IDX_MAX]
    IDX_MAX = 12

    def __init__(self, seed: int, config: GeneratorConfig):
        self.rng = random.Random(seed)
        self.seed = seed
        self.config = config
        #: per-array maximum index any subscript template can produce
        self.max_index: dict = {
            name: 1 for name in (*self.DATA_ARRAYS, self.TEMP_ARRAY)
        }
        self.max_index[self.IDX_ARRAY] = 1
        #: scalar temporaries defined so far in the current body
        self.temps: list = []
        self.temp_counter = 0
        self.civ_enabled = False
        #: arrays subscripted by the CIV: sized after generation, once
        #: the total per-iteration increment is known
        self.civ_arrays: set = set()
        self.civ_inc_total = 0
        #: increments only at the target-loop body level (an increment
        #: inside a nested DO would run more than once per iteration and
        #: break the conservative bound)
        self.civ_allow_inc = True
        self.params: dict = {}

    # -- parameters ---------------------------------------------------------
    def draw_params(self) -> None:
        cfg = self.config
        if self.rng.random() < cfg.p_degenerate:
            n = self.rng.choice([0, 1])
        else:
            n = self.rng.randint(2, cfg.max_trip)
        self.params["N"] = n
        self.params["M"] = self.rng.randint(1, 4)
        self.params["K1"] = self.rng.randint(1, 6)
        self.params["K2"] = self.rng.randint(1, 6)

    # -- subscripts ---------------------------------------------------------
    def subscript(self, vars_in_scope: dict, array: str) -> IRExpr:
        """Draw a subscript template; record the array's index bound.

        *vars_in_scope* maps variable name -> (lo, hi) concrete range.
        Every template's reachable index interval stays within
        [1, recorded bound].
        """
        rng = self.rng
        cfg = self.config
        choices = []  # (weight, builder) where builder -> (expr, lo, hi)

        def affine(var, lo, hi):
            def build():
                a = rng.choice([1, 1, 1, 2])
                c = rng.randint(max(0, 1 - a * lo), 5)
                expr: IRExpr = Var(var)
                if a != 1:
                    expr = BinOp("*", Num(a), expr)
                if c != 0:
                    expr = BinOp("+", expr, Num(c))
                return expr, a * lo + c, a * hi + c
            return build

        def constant():
            c = rng.randint(1, 6)
            return Num(c), c, c

        for var, (lo, hi) in vars_in_scope.items():
            choices.append((4.0, affine(var, lo, hi)))
        choices.append((1.0, lambda: constant()))

        if vars_in_scope and rng.random() < cfg.p_param_offset:
            # K + i: loop-invariant symbolic offset -- the classic
            # runtime-disambiguated subscript.
            var, (lo, hi) = rng.choice(list(vars_in_scope.items()))
            k = rng.choice(["K1", "K2"])
            kv = self.params[k]

            def param_offset():
                return (
                    BinOp("+", Var(k), Var(var)),
                    kv + lo,
                    kv + hi,
                )

            choices.append((4.0, param_offset))

        if vars_in_scope and rng.random() < cfg.p_indirect and array != self.IDX_ARRAY:
            var, (lo, hi) = rng.choice(list(vars_in_scope.items()))
            shift = max(0, 1 - lo)

            def indirect():
                idx_expr: IRExpr = Var(var)
                if shift:
                    idx_expr = BinOp("+", idx_expr, Num(shift))
                self._bump(self.IDX_ARRAY, hi + shift)
                return ArrayRead(self.IDX_ARRAY, idx_expr), 1, self.IDX_MAX

            choices.append((2.5, indirect))

        if self.civ_enabled and array != self.IDX_ARRAY:
            def civ():
                # The reachable bound depends on how many increment
                # sites end up in the body; record the array and size it
                # after generation (see :meth:`generate`).
                self.civ_arrays.add(array)
                return Var("civ"), 1, 1
            choices.append((2.5, civ))

        total = sum(w for w, _ in choices)
        pick = rng.uniform(0, total)
        acc = 0.0
        builder = choices[-1][1]
        for w, b in choices:
            acc += w
            if pick <= acc:
                builder = b
                break
        expr, lo, hi = builder()
        self._bump(array, hi)
        return expr

    def _bump(self, array: str, hi: int) -> None:
        self.max_index[array] = max(self.max_index[array], hi, 1)

    # -- expressions --------------------------------------------------------
    def expr(self, vars_in_scope: dict, depth: Optional[int] = None) -> IRExpr:
        rng = self.rng
        if depth is None:
            depth = rng.randint(0, self.config.max_expr_depth)
        if depth <= 0:
            roll = rng.random()
            if roll < 0.35:
                return Num(rng.randint(-4, 9))
            if roll < 0.60 and vars_in_scope:
                return Var(rng.choice(list(vars_in_scope)))
            if roll < 0.72 and self.temps:
                return Var(rng.choice(self.temps))
            if roll < 0.80:
                return Var(rng.choice(["N", "K1", "K2"]))
            array = rng.choice([*self.DATA_ARRAYS, self.TEMP_ARRAY])
            return ArrayRead(array, self.subscript(vars_in_scope, array))
        roll = rng.random()
        if roll < 0.80:
            op = rng.choice(["+", "+", "-", "*"])
            return BinOp(
                op,
                self.expr(vars_in_scope, depth - 1),
                self.expr(vars_in_scope, depth - 1),
            )
        return Intrinsic(
            rng.choice(["min", "max"]),
            (
                self.expr(vars_in_scope, depth - 1),
                self.expr(vars_in_scope, depth - 1),
            ),
        )

    def condition(self, vars_in_scope: dict) -> IRExpr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.40 and vars_in_scope:
            var = rng.choice(list(vars_in_scope))
            divisor = rng.choice([2, 2, 3])
            return BinOp("==", BinOp("%", Var(var), Num(divisor)), Num(0))
        if roll < 0.70 and vars_in_scope:
            var = rng.choice(list(vars_in_scope))
            rhs = rng.choice(["K1", "K2", "N"])
            op = rng.choice(["<", "<=", ">", ">=", "!="])
            return BinOp(op, Var(var), Var(rhs))
        left = self.expr(vars_in_scope, depth=1)
        op = rng.choice(["<", "<=", ">", "=="])
        return BinOp(op, left, Num(rng.randint(-2, 8)))

    # -- statements ---------------------------------------------------------
    def body(self, vars_in_scope: dict, depth: int, budget: int) -> tuple:
        """A loop/branch body: *budget* statement slots, nesting allowed
        while *depth* > 0."""
        rng = self.rng
        cfg = self.config
        stmts = []
        for _ in range(budget):
            roll = rng.random()
            if roll < cfg.p_if and depth > 0:
                stmts.append(self._if(vars_in_scope, depth))
            elif roll < cfg.p_if + cfg.p_nested and depth > 0:
                stmts.append(self._nested_do(vars_in_scope, depth))
            elif roll < cfg.p_if + cfg.p_nested + cfg.p_scalar_temp:
                stmts.append(self._scalar_temp(vars_in_scope))
            elif roll < cfg.p_if + cfg.p_nested + cfg.p_scalar_temp + cfg.p_reduction:
                stmts.append(self._reduction(vars_in_scope))
            else:
                stmts.append(self._array_write(vars_in_scope))
        return tuple(stmts)

    def _pick_array(self) -> str:
        if self.rng.random() < self.config.p_private_temp:
            return self.TEMP_ARRAY
        return self.rng.choice(self.DATA_ARRAYS)

    def _array_write(self, vars_in_scope: dict) -> IRStmt:
        array = self._pick_array()
        index = self.subscript(vars_in_scope, array)
        return AssignArray(array, index, self.expr(vars_in_scope))

    def _reduction(self, vars_in_scope: dict) -> IRStmt:
        array = self._pick_array()
        index = self.subscript(vars_in_scope, array)
        op = self.rng.choice(["+", "+", "-"])
        rhs = BinOp(op, ArrayRead(array, index), self.expr(vars_in_scope, depth=1))
        return AssignArray(array, index, rhs, is_update=True)

    def _scalar_temp(self, vars_in_scope: dict) -> IRStmt:
        # Reuse an existing temp (write-before-read within the iteration
        # keeps it privatizable) or mint a new one.
        if self.temps and self.rng.random() < 0.5:
            name = self.rng.choice(self.temps)
        else:
            name = f"t{self.temp_counter}"
            self.temp_counter += 1
        stmt = AssignScalar(name, self.expr(vars_in_scope))
        if name not in self.temps:
            self.temps.append(name)
        return stmt

    def _if(self, vars_in_scope: dict, depth: int) -> IRStmt:
        cond = self.condition(vars_in_scope)
        then_budget = self.rng.randint(1, 2)
        # Temporaries minted inside a branch are only conditionally
        # written; hide them from later statements so no read can ever
        # see an unbound scalar.
        outer_temps = list(self.temps)
        then_body = self.body(vars_in_scope, depth - 1, then_budget)
        self.temps = list(outer_temps)
        else_body: tuple = ()
        if self.rng.random() < self.config.p_else:
            else_body = self.body(vars_in_scope, depth - 1, self.rng.randint(1, 2))
            self.temps = list(outer_temps)
        if self.civ_enabled and self.civ_allow_inc and self.rng.random() < 0.5:
            # The paper's CIV shape: the induction increment sits under a
            # conditional.
            inc = self.rng.choice([1, 2])
            self.civ_inc_total += inc
            then_body = then_body + (
                AssignScalar("civ", BinOp("+", Var("civ"), Num(inc))),
            )
        return If(cond, then_body, else_body)

    def _nested_do(self, vars_in_scope: dict, depth: int) -> IRStmt:
        rng = self.rng
        m = self.params["M"]
        inner = f"j{depth}"
        scope = dict(vars_in_scope)
        scope[inner] = (1, m)
        # Occasionally use the blocked subscript (i-1)*M + j: disjoint
        # per-outer-iteration footprints that only reshaping/LMAD
        # aggregation can prove independent.
        allow_inc = self.civ_allow_inc
        self.civ_allow_inc = False
        body = list(self.body(scope, depth - 1, rng.randint(1, 2)))
        self.civ_allow_inc = allow_inc
        if vars_in_scope and rng.random() < 0.5:
            outer = rng.choice(list(vars_in_scope))
            olo, ohi = vars_in_scope[outer]
            shift = max(0, 1 - olo)
            array = rng.choice(self.DATA_ARRAYS)
            index = BinOp(
                "+",
                BinOp("*", BinOp("-", BinOp("+", Var(outer), Num(shift)), Num(1)), Num(m)),
                Var(inner),
            )
            self._bump(array, (ohi + shift - 1) * m + m)
            body.append(AssignArray(array, index, self.expr(scope, depth=1)))
        return Do(inner, Num(1), Num(m), tuple(body), label=None)

    # -- whole program ------------------------------------------------------
    def generate(self) -> FuzzCase:
        rng = self.rng
        cfg = self.config
        self.draw_params()
        n = self.params["N"]
        self.civ_enabled = rng.random() < cfg.p_civ
        is_while = rng.random() < cfg.p_while

        prelude: list = []
        if self.civ_enabled:
            prelude.append(AssignScalar("civ", Num(1)))

        budget = rng.randint(cfg.min_body_stmts, cfg.max_body_stmts)
        if is_while:
            # while i < N with i starting at 0: trip count N (unknown to
            # the analyzer), body sees i in [0, N-1].
            prelude.append(AssignScalar("i", Num(0)))
            scope = {"i": (0, max(n - 1, 0))}
            self.temps = []
            body = self.body(scope, depth=2, budget=budget)
            body = body + (AssignScalar("i", BinOp("+", Var("i"), Num(1))),)
            loop: IRStmt = While(
                BinOp("<", Var("i"), Var("N")), body, label=TARGET_LABEL
            )
        else:
            scope = {"i": (1, max(n, 1))}
            self.temps = []
            body = self.body(scope, depth=2, budget=budget)
            loop = Do("i", Num(1), Var("N"), body, label=TARGET_LABEL)

        # Size CIV-subscripted arrays now that every increment site is
        # known: civ starts at 1 and gains at most civ_inc_total per trip.
        civ_cap = 1 + self.civ_inc_total * max(n, 1)
        for name in self.civ_arrays:
            self._bump(name, civ_cap)

        arrays = []
        init: dict = {}
        for name in (*self.DATA_ARRAYS, self.TEMP_ARRAY):
            size = self.max_index[name] + 2
            arrays.append(ArrayDecl(name, Num(size)))
            init[name] = [rng.randint(-9, 20) for _ in range(size)]
        idx_size = max(self.max_index[self.IDX_ARRAY] + 2, self.IDX_MAX)
        arrays.append(ArrayDecl(self.IDX_ARRAY, Num(idx_size)))
        init[self.IDX_ARRAY] = [
            rng.randint(1, self.IDX_MAX) for _ in range(idx_size)
        ]

        program = Program(
            params=("N", "M", "K1", "K2"),
            arrays=tuple(arrays),
            subroutines={},
            main=tuple(prelude) + (loop,),
            name=f"fuzz{self.seed}",
        )
        source = render_program(program)
        # Re-parse: the parser is what marks reduction-update shapes, and
        # this guarantees source and program can never drift apart.
        program = parse_program(source)
        return FuzzCase(
            seed=self.seed,
            program=program,
            source=source,
            params=dict(self.params),
            arrays=init,
            label=TARGET_LABEL,
            exact_strategy=rng.choice(list(cfg.exact_strategies)),
        )


def generate_case(seed: int, config: Optional[GeneratorConfig] = None) -> FuzzCase:
    """Generate the differential-test case for *seed* (deterministic)."""
    return _Gen(seed, config or GeneratorConfig()).generate()
