"""Differential fuzzing of the whole analysis + runtime pipeline.

The paper's central claim is *soundness*: whenever an extracted
sufficient-independence predicate (or an exact fallback) validates a
loop, parallel execution must produce the sequential result.  This
package stress-tests that claim at scale:

* :mod:`.generator` -- a seeded random generator of loop programs in the
  mini-Fortran IR, every language feature behind a weighted grammar knob;
* :mod:`.oracle` -- the three-way differential driver: full analyzer
  plan vs. the interpreter's trace-derived true dependences vs. the
  executor's parallel-against-sequential memory comparison;
* :mod:`.shrink` -- delta-debugging of failing cases into minimal repro
  programs, persisted to ``tests/regression/corpus/`` and replayed by
  the regression suite forever after.

Entry point: ``repro-eval fuzz --seeds N --jobs J``.
"""

from .generator import FuzzCase, GeneratorConfig, generate_case, render_program
from .oracle import (
    OUTCOMES,
    CaseResult,
    FuzzCache,
    FuzzReport,
    format_fuzz_report,
    fuzz_engine,
    run_case,
    run_fuzz,
    run_seed,
)
from .shrink import (
    CorpusCase,
    ReplayResult,
    load_corpus_case,
    replay_corpus_case,
    shrink_case,
    write_corpus_case,
)

__all__ = [
    "FuzzCase", "GeneratorConfig", "generate_case", "render_program",
    "OUTCOMES", "CaseResult", "FuzzCache", "FuzzReport", "fuzz_engine",
    "run_case", "run_fuzz", "run_seed", "format_fuzz_report",
    "CorpusCase", "ReplayResult", "shrink_case", "write_corpus_case",
    "load_corpus_case", "replay_corpus_case",
]
