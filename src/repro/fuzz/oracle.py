"""The three-way differential soundness oracle.

For every generated case the oracle runs three independent views of the
same loop and cross-checks them:

1. **analysis** -- the full static pipeline (the harness's
   :func:`fuzz_engine` compiling and planning the case) produces a
   :class:`LoopPlan` and its classification;
2. **trace** -- the reference interpreter re-executes the program with a
   trace target (:mod:`repro.ir.interp` role 2), yielding the *true*
   cross-iteration dependences of this run;
3. **execution** -- :class:`repro.runtime.HybridExecutor` evaluates the
   cascades, applies the per-array transforms, runs the loop with
   iteration-isolated memory and compares the merged final state against
   the sequential ground truth.

The verdict vocabulary:

* ``sound-parallel`` -- the runtime validated the loop and the parallel
  memory state matches sequential execution;
* ``sound-sequential`` -- the loop ran sequentially and the trace shows
  it was right to (dependences exist, or a scalar dependence or <= 1
  trip makes parallelism pointless);
* ``precision-gap`` -- the trace proves this run independent but the
  system still ran it sequentially.  A completeness (not soundness)
  miss: recorded, never failed;
* ``unsound`` -- the system parallelized and either the final memory
  diverged from sequential execution, or a predicate claimed
  independence for an array whose trace shows a cross-iteration
  dependence.  Always a bug;
* ``crash`` -- any pipeline layer raised on a well-formed input.
  Always a bug (the generator guarantees in-bounds programs).
"""

from __future__ import annotations

import copy
import time
import traceback
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..api.cache import JsonDiskCache
from ..api.engine import Engine, EngineConfig
from ..core.analyzer import LoopPlan
from ..ir.interp import LoopTrace, Machine
from .generator import FuzzCase, GeneratorConfig, generate_case

__all__ = [
    "FUZZ_VERSION",
    "OUTCOMES",
    "CaseResult",
    "FuzzReport",
    "FuzzCache",
    "fuzz_engine",
    "classify_outcome",
    "run_case",
    "run_seed",
    "run_fuzz",
    "format_fuzz_report",
]

#: Bump when generator grammar or oracle semantics change: invalidates
#: every cached per-seed verdict by construction.
FUZZ_VERSION = 1

#: Verdict vocabulary, in reporting order.
OUTCOMES = (
    "sound-parallel",
    "sound-sequential",
    "precision-gap",
    "unsound",
    "crash",
)

#: Outcomes that fail a fuzz run.
FAILING_OUTCOMES = ("unsound", "crash")

#: Predicate-size bound used when analyzing generated programs.  The
#: default cap (Section 3.6) is sized for the curated benchmarks;
#: adversarial random programs can push FACTOR's included/disjoint
#: recursion orders of magnitude past them, so the harness trades a
#: little precision (a capped predicate folds to false = exact/TLS
#: fallback, still sound) for bounded per-seed analysis time.
ANALYSIS_SIZE_CAP = 3_000

#: Inference budget (factor/included/disjoint subproblems) per cascade
#: when analyzing generated programs; same rationale and soundness
#: argument as :data:`ANALYSIS_SIZE_CAP`.
ANALYSIS_WORK_CAP = 4_000

#: The harness's long-lived engine (lazily built).  It carries the
#: tightened caps above and skips the disk cache: generated programs
#: are unique per seed, so only the in-memory compile/plan memos pay
#: off (repeated oracle calls on one case, e.g. during shrinking).
_FUZZ_ENGINE: Optional[Engine] = None


def fuzz_engine() -> Engine:
    global _FUZZ_ENGINE
    if _FUZZ_ENGINE is None:
        _FUZZ_ENGINE = Engine(
            EngineConfig(
                size_cap=ANALYSIS_SIZE_CAP,
                work_cap=ANALYSIS_WORK_CAP,
                use_disk_cache=False,
            )
        )
    return _FUZZ_ENGINE


@dataclass
class CaseResult:
    """Verdict for one seed."""

    seed: int
    outcome: str
    #: the plan's Table 1-3 label ('?' when analysis crashed)
    classification: str = "?"
    parallel: bool = False
    #: did the trace show any cross-iteration dependence?
    dependent: Optional[bool] = None
    trips: int = 0
    exact_strategy: str = "inspector"
    #: execution backend the case ran on
    backend: str = "sequential"
    detail: str = ""
    cached: bool = False

    @property
    def failed(self) -> bool:
        return self.outcome in FAILING_OUTCOMES

    def to_json(self) -> dict:
        out = asdict(self)
        out.pop("cached", None)
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "CaseResult":
        payload.pop("cached", None)
        return cls(cached=True, **payload)


def _per_array_dependences(trace: LoopTrace) -> dict:
    """Per-array trace verdicts: name -> (has_any_dep, has_flow_dep).

    *any* covers flow, anti and output dependences; *flow* covers a
    location written in one iteration and expose-read in a different one
    (either order -- the executor's privatization only licenses output
    dependences).
    """
    writers: dict = {}
    readers: dict = {}
    for rec in trace.iterations:
        for arr, locs in rec.writes.items():
            for loc in locs:
                writers.setdefault((arr, loc), set()).add(rec.iteration)
        for arr, locs in rec.exposed_reads.items():
            for loc in locs:
                readers.setdefault((arr, loc), set()).add(rec.iteration)
    verdict: dict = {}

    def mark(arr: str, any_dep: bool, flow_dep: bool) -> None:
        prev_any, prev_flow = verdict.get(arr, (False, False))
        verdict[arr] = (prev_any or any_dep, prev_flow or flow_dep)

    for (arr, _loc), owners in writers.items():
        if len(owners) > 1:
            mark(arr, True, False)
    for key, reads in readers.items():
        arr = key[0]
        owners = writers.get(key, set())
        for r in reads:
            if owners - {r}:
                mark(arr, True, True)
                break
    return verdict


#: decision.via values that constitute an *independence claim* by the
#: analysis (static proof, predicate cascade, or exact USR evaluation);
#: 'speculation' is trace-derived and consistent by construction.
_CLAIMING_VIAS = ("static", "predicate", "inspector")


def classify_outcome(
    plan: LoopPlan, trace: Optional[LoopTrace], report
) -> tuple:
    """(outcome, detail) from the three views of one case."""
    trace_iters = trace.iterations if trace is not None else []
    dependent = (
        trace.has_cross_iteration_dependence() if trace is not None else False
    )
    if report.parallel and not report.correct:
        return (
            "unsound",
            "parallel final memory diverges from sequential ground truth",
        )
    if report.parallel and trace is not None:
        per_array = _per_array_dependences(trace)
        for arr, decision in report.decisions.items():
            any_dep, flow_dep = per_array.get(arr, (False, False))
            if decision.via not in _CLAIMING_VIAS:
                continue
            if decision.strategy == "shared" and any_dep:
                return (
                    "unsound",
                    f"{arr}: claimed fully independent (via {decision.via}, "
                    f"stage {decision.passed_stage}) but the trace has a "
                    "cross-iteration dependence",
                )
            if decision.strategy == "private" and flow_dep:
                return (
                    "unsound",
                    f"{arr}: claimed flow-independent (via {decision.via}) "
                    "but the trace has a cross-iteration flow dependence",
                )
    if report.parallel:
        return ("sound-parallel", "")
    if (
        not dependent
        and len(trace_iters) > 1
        and not plan.has_scalar_dependence()
    ):
        return (
            "precision-gap",
            "trace shows this run independent, but the loop ran sequentially",
        )
    return ("sound-sequential", "")


def run_case(
    case: FuzzCase,
    backend: str = "sequential",
    jobs: Optional[int] = None,
    chunk: Optional[dict] = None,
) -> CaseResult:
    """Run the three-way oracle on one case.

    *backend*/*jobs*/*chunk* select the execution backend for view 3,
    so the same differential harness that validates the analysis also
    validates every real execution backend against the interpreter.
    """
    base = CaseResult(seed=case.seed, outcome="crash",
                      exact_strategy=case.exact_strategy, backend=backend)
    compiled = fuzz_engine().compile(case.source, program=case.program)
    try:
        plan = compiled.plan(case.label)
        base.classification = plan.classification()
    except Exception as exc:  # noqa: BLE001 -- any crash is the finding
        base.detail = f"analyzer: {type(exc).__name__}: {exc}\n" + (
            traceback.format_exc(limit=6)
        )
        return base
    try:
        machine = Machine(
            case.program,
            params=case.params,
            arrays=copy.deepcopy(case.arrays),
            trace_label=case.label,
        )
        seq = machine.run()
    except Exception as exc:  # noqa: BLE001
        base.detail = f"interpreter: {type(exc).__name__}: {exc}"
        return base
    trace = seq.trace
    base.trips = len(trace.iterations) if trace is not None else 0
    base.dependent = (
        trace.has_cross_iteration_dependence() if trace is not None else False
    )
    try:
        report = compiled.execute(
            case.label,
            case.params,
            case.arrays,
            plan=plan,
            exact_strategy=case.exact_strategy,
            backend=backend,
            jobs=jobs,
            chunk=chunk,
        )
    except Exception as exc:  # noqa: BLE001
        base.detail = f"executor: {type(exc).__name__}: {exc}\n" + (
            traceback.format_exc(limit=6)
        )
        return base
    base.parallel = report.parallel
    base.outcome, base.detail = classify_outcome(plan, trace, report)
    return base


def run_seed(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    backend: str = "sequential",
    jobs: Optional[int] = None,
    chunk: Optional[dict] = None,
) -> CaseResult:
    """Generate and judge one seed (deterministic end to end)."""
    return run_case(
        generate_case(seed, config), backend=backend, jobs=jobs, chunk=chunk
    )


# -- batch driver ------------------------------------------------------------


class FuzzCache(JsonDiskCache):
    """Persistent per-seed verdict cache (same store as ``batch``).

    Keys digest the fuzz format version, every generator knob and the
    seed; any grammar or oracle change (a :data:`FUZZ_VERSION` bump)
    orphans old entries rather than serving them.
    """

    def seed_key(
        self,
        seed: int,
        config: GeneratorConfig,
        backend: str = "sequential",
        backend_jobs: Optional[int] = None,
        chunk: Optional[dict] = None,
    ) -> str:
        # The whole execution configuration is part of the key: verdicts
        # SHOULD be identical across jobs/chunk specs (that is a pinned
        # property), but a chunk-boundary bug is exactly what backend
        # fuzzing exists to catch -- serving a cached verdict from a
        # different configuration would mask it.
        digest = self.digest(
            f"fuzz\0v{FUZZ_VERSION}\0{config.digest_text()}\0"
            f"b{backend}\0j{backend_jobs}\0c{sorted((chunk or {}).items())}"
        )
        return f"fuzz-s{seed}-{digest}"

    def load_seed(
        self,
        seed: int,
        config: GeneratorConfig,
        backend: str = "sequential",
        backend_jobs: Optional[int] = None,
        chunk: Optional[dict] = None,
    ) -> Optional[CaseResult]:
        payload = self.load_json(
            self.seed_key(seed, config, backend, backend_jobs, chunk)
        )
        if payload is None:
            return None
        try:
            return CaseResult.from_json(payload)
        except TypeError:
            return None  # foreign schema: treat as a miss

    def store_seed(
        self,
        seed: int,
        config: GeneratorConfig,
        result: CaseResult,
        backend: str = "sequential",
        backend_jobs: Optional[int] = None,
        chunk: Optional[dict] = None,
    ) -> None:
        self.store_json(
            self.seed_key(seed, config, backend, backend_jobs, chunk),
            result.to_json(),
        )


@dataclass
class FuzzReport:
    """Aggregate of one fuzz run."""

    results: list = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def counts(self) -> dict:
        out = {name: 0 for name in OUTCOMES}
        for r in self.results:
            out[r.outcome] = out.get(r.outcome, 0) + 1
        return out

    @property
    def failures(self) -> list:
        return [r for r in self.results if r.failed]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def classification_histogram(self) -> list:
        hist: dict = {}
        for r in self.results:
            hist[r.classification] = hist.get(r.classification, 0) + 1
        return sorted(hist.items(), key=lambda kv: (-kv[1], kv[0]))

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    seeds: int,
    seed_start: int = 0,
    jobs: Optional[int] = None,
    config: Optional[GeneratorConfig] = None,
    cache: Optional[FuzzCache] = None,
    backend: str = "sequential",
    backend_jobs: Optional[int] = None,
    chunk: Optional[dict] = None,
) -> FuzzReport:
    """Judge seeds ``[seed_start, seed_start + seeds)`` concurrently.

    Fans out on the fuzz engine's worker pool and (when *cache* is
    given) consults the persistent on-disk store; a cached seed is pure
    disk I/O.  *backend*/*backend_jobs*/*chunk* run every case's
    execution view on a real backend (verdicts are cached per backend).
    """
    config = config or GeneratorConfig()

    def one(seed: int) -> CaseResult:
        if cache is not None:
            hit = cache.load_seed(seed, config, backend, backend_jobs, chunk)
            if hit is not None:
                return hit
        result = run_seed(seed, config, backend=backend,
                          jobs=backend_jobs, chunk=chunk)
        if cache is not None and not result.failed:
            # Failures are never cached: they are meant to be re-run
            # (and shrunk) until fixed.
            cache.store_seed(seed, config, result, backend,
                             backend_jobs, chunk)
        return result

    started = time.perf_counter()
    results = fuzz_engine().map_items(
        one, range(seed_start, seed_start + seeds), jobs
    )
    return FuzzReport(results=results, elapsed_s=time.perf_counter() - started)


def format_fuzz_report(report: FuzzReport, verbose_failures: int = 5) -> str:
    """Human-readable soundness/precision summary of a fuzz run."""
    from ..evaluation.tables import format_fuzz_table

    lines = [format_fuzz_table(report)]
    for r in report.failures[:verbose_failures]:
        first = r.detail.strip().splitlines()
        lines.append(
            f"  seed {r.seed}: {r.outcome} [{r.classification}] "
            f"{first[0] if first else ''}"
        )
    if len(report.failures) > verbose_failures:
        lines.append(f"  ... and {len(report.failures) - verbose_failures} more")
    return "\n".join(lines)
