"""Delta-debugging of failing fuzz cases into minimal repro programs.

A failure (``unsound`` or ``crash``) found by the oracle is rarely
minimal: the generated program carries statements, branches, nested
loops and large inputs that have nothing to do with the bug.  The
shrinker repeatedly applies outcome-preserving reductions --

* delete statements from any body (target loop, branches, nested loops,
  prelude);
* replace an ``if`` by one of its branches;
* flatten a nested ``do`` into its body (with the inner index pinned);
* shrink numeric literals toward 1 and parameter values toward 0;
* zero array initial contents and drop unused arrays;

-- re-running the oracle after each candidate and keeping any change
that still reproduces the *same* outcome class.  The result is written
to ``tests/regression/corpus/`` as a JSON document holding the source
text, inputs, seed and shrink provenance; the regression suite replays
every corpus entry forever after (a replay fails while the bug exists
and passes once it is fixed -- entries stay as permanent guards).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional

from ..ir.ast import AssignScalar, Do, If, IRStmt, Num, Program, While
from .generator import FuzzCase, render_program
from .oracle import CaseResult, fuzz_engine, run_case

__all__ = [
    "ShrinkResult",
    "shrink_case",
    "CorpusCase",
    "ReplayResult",
    "write_corpus_case",
    "load_corpus_case",
    "replay_corpus_case",
    "corpus_dir",
]

#: Upper bound on oracle invocations per shrink (keeps shrinking O(s)).
DEFAULT_BUDGET = 400

#: Corpus schema version.
CORPUS_SCHEMA = 1


@dataclass
class ShrinkResult:
    """A minimized failing case plus its provenance."""

    case: FuzzCase
    outcome: str
    detail: str
    oracle_calls: int
    #: statements before -> after, for the provenance line
    stmts_before: int
    stmts_after: int

    @property
    def provenance(self) -> str:
        return (
            f"shrunk by repro.fuzz.shrink from generator seed "
            f"{self.case.seed}: {self.stmts_before} -> {self.stmts_after} "
            f"statement(s) in {self.oracle_calls} oracle call(s)"
        )


def _count_stmts(stmts) -> int:
    total = 0
    for s in stmts:
        total += 1
        if isinstance(s, If):
            total += _count_stmts(s.then_body) + _count_stmts(s.else_body)
        elif isinstance(s, (Do, While)):
            total += _count_stmts(s.body)
    return total


def _crash_sig(detail: str) -> str:
    """'layer: ExceptionType' prefix of a crash detail -- shrinking a
    crash must preserve it, so a reduction can never swap the real bug
    for an artificial one (e.g. an out-of-bounds from zeroed inputs)."""
    head = detail.strip().splitlines()[0] if detail.strip() else ""
    return ":".join(head.split(":", 2)[:2])


class _Shrinker:
    def __init__(self, case: FuzzCase, oracle: Callable, budget: int):
        self.oracle = oracle
        self.budget = budget
        self.calls = 0
        baseline = oracle(case)
        self.target_outcome = baseline.outcome
        self.target_sig = (
            _crash_sig(baseline.detail) if baseline.outcome == "crash" else None
        )
        self.detail = baseline.detail
        self.case = case

    def _attempt(self, candidate: FuzzCase) -> bool:
        """Accept *candidate* when it reproduces the target outcome."""
        if self.calls >= self.budget:
            return False
        if candidate.program.find_loop(candidate.label) is None:
            return False  # must keep the target loop
        self.calls += 1
        try:
            result = self.oracle(candidate)
        except Exception:  # noqa: BLE001 -- a broken candidate is just rejected
            return False
        if result.outcome != self.target_outcome:
            return False
        if self.target_sig is not None and _crash_sig(result.detail) != self.target_sig:
            return False
        self.case = candidate
        self.detail = result.detail
        return True

    def _with_program(self, program: Program) -> FuzzCase:
        source = render_program(program)
        return replace(
            self.case, program=fuzz_engine().parse(source), source=source
        )

    # -- statement-level passes ---------------------------------------------
    def _rebuild(self, edit_path: tuple, replacement) -> Optional[Program]:
        """Program with the statement at *edit_path* replaced by the
        statements in *replacement* (empty tuple = deletion)."""

        def rebuild_body(stmts: tuple, path: tuple) -> tuple:
            head, rest = path[0], path[1:]
            out = []
            for idx, s in enumerate(stmts):
                if idx != head:
                    out.append(s)
                    continue
                if not rest:
                    out.extend(replacement)
                    continue
                branch, sub = rest[0], rest[1:]
                if isinstance(s, If):
                    bodies = [s.then_body, s.else_body]
                    bodies[branch] = rebuild_body(bodies[branch], sub)
                    out.append(If(s.cond, bodies[0], bodies[1]))
                elif isinstance(s, Do):
                    out.append(
                        Do(s.index, s.lower, s.upper,
                           rebuild_body(s.body, sub), s.label)
                    )
                elif isinstance(s, While):
                    out.append(
                        While(s.cond, rebuild_body(s.body, sub), s.label)
                    )
                else:  # pragma: no cover -- paths only point into compounds
                    out.append(s)
            return tuple(out)

        main = rebuild_body(self.case.program.main, edit_path)
        return replace(self.case.program, main=main)

    def _paths(self) -> list:
        """Every statement path in main, innermost first (deleting inner
        statements first keeps outer structure shrinkable afterwards).

        A path is (i0, branch, i1, branch, ..., ik): alternating body
        index and, under compound statements, the branch selector
        (If: 0=then, 1=else; loops: 0=body).
        """
        paths: list = []

        def walk(stmts, prefix):
            for idx, s in enumerate(stmts):
                here = prefix + (idx,)
                if isinstance(s, If):
                    walk(s.then_body, here + (0,))
                    walk(s.else_body, here + (1,))
                elif isinstance(s, (Do, While)):
                    walk(s.body, here + (0,))
                paths.append(here)
        walk(self.case.program.main, ())
        paths.sort(key=len, reverse=True)
        return paths

    def _stmt_at(self, path: tuple) -> Optional[IRStmt]:
        node: tuple = self.case.program.main
        stmt: Optional[IRStmt] = None
        i = 0
        while i < len(path):
            stmt = node[path[i]]
            i += 1
            if i >= len(path):
                return stmt
            branch = path[i]
            i += 1
            if isinstance(stmt, If):
                node = stmt.then_body if branch == 0 else stmt.else_body
            elif isinstance(stmt, (Do, While)):
                node = stmt.body
            else:
                return None
        return stmt

    def pass_delete(self) -> bool:
        changed = False
        progress = True
        while progress and self.calls < self.budget:
            progress = False
            for path in self._paths():
                stmt = self._stmt_at(path)
                if stmt is None:
                    continue
                if isinstance(stmt, (Do, While)) and stmt.label == self.case.label:
                    continue  # never delete the target loop itself
                program = self._rebuild(path, ())
                if program is not None and self._attempt(self._with_program(program)):
                    changed = progress = True
                    break  # paths are stale; recompute
        return changed

    def pass_unwrap(self) -> bool:
        """Replace ifs by a branch; flatten unlabelled nested loops."""
        changed = True
        any_change = False
        while changed and self.calls < self.budget:
            changed = False
            for path in self._paths():
                stmt = self._stmt_at(path)
                candidates = []
                if isinstance(stmt, If):
                    if stmt.then_body:
                        candidates.append(stmt.then_body)
                    if stmt.else_body:
                        candidates.append(stmt.else_body)
                elif isinstance(stmt, Do) and stmt.label != self.case.label:
                    # Pin the inner index at its lower bound so body
                    # references stay bound.
                    candidates.append(
                        (AssignScalar(stmt.index, stmt.lower),) + stmt.body
                    )
                for repl in candidates:
                    program = self._rebuild(path, repl)
                    if program is not None and self._attempt(
                        self._with_program(program)
                    ):
                        changed = any_change = True
                        break
                if changed:
                    break
        return any_change

    # -- input-level passes -------------------------------------------------
    def pass_params(self) -> bool:
        changed = False
        for name in list(self.case.params):
            value = self.case.params[name]
            for smaller in (0, 1, 2, value // 2):
                if smaller >= value:
                    continue
                params = dict(self.case.params)
                params[name] = smaller
                if self._attempt(replace(self.case, params=params)):
                    changed = True
                    break
        return changed

    def pass_arrays(self) -> bool:
        changed = False
        for name in list(self.case.arrays):
            data = self.case.arrays[name]
            if any(v != 0 for v in data):
                zeroed = dict(self.case.arrays)
                zeroed[name] = [0] * len(data)
                if self._attempt(replace(self.case, arrays=zeroed)):
                    changed = True
            if any(v > 1 for v in self.case.arrays[name]):
                ones = dict(self.case.arrays)
                ones[name] = [min(v, 1) for v in self.case.arrays[name]]
                if self._attempt(replace(self.case, arrays=ones)):
                    changed = True
        return changed

    def pass_literals(self) -> bool:
        """Shrink Num literals toward 1, one site at a time."""
        changed = False
        sites = _num_sites(self.case.program.main)
        for site_index, value in sites:
            for smaller in (1, value // 2):
                if smaller >= value or smaller < 1:
                    continue
                main = _replace_num(self.case.program.main, site_index, smaller)
                program = replace(self.case.program, main=main)
                if self._attempt(self._with_program(program)):
                    changed = True
                    break
        return changed

    def run(self) -> ShrinkResult:
        before = _count_stmts(self.case.program.main)
        progress = True
        while progress and self.calls < self.budget:
            progress = False
            progress |= self.pass_delete()
            progress |= self.pass_unwrap()
            progress |= self.pass_params()
            progress |= self.pass_arrays()
            progress |= self.pass_literals()
        return ShrinkResult(
            case=self.case,
            outcome=self.target_outcome,
            detail=self.detail,
            oracle_calls=self.calls,
            stmts_before=before,
            stmts_after=_count_stmts(self.case.program.main),
        )


def _num_sites(main: tuple) -> list:
    """(pre-order index, value) of every Num > 1 in main's statements."""
    sites: list = []
    counter = [0]

    def visit_expr(e):
        if isinstance(e, Num):
            if e.value > 1:
                sites.append((counter[0], e.value))
            counter[0] += 1
            return
        for attr in ("left", "right", "arg", "index", "cond", "expr"):
            child = getattr(e, attr, None)
            if child is not None and not isinstance(child, (str, bool, int)):
                visit_expr(child)
        for child in getattr(e, "args", ()):
            visit_expr(child)

    def visit_stmt(s):
        for attr in ("expr", "index", "cond", "lower", "upper"):
            child = getattr(s, attr, None)
            if child is not None and not isinstance(child, (str, bool, int)):
                visit_expr(child)
        for body in (getattr(s, "body", ()), getattr(s, "then_body", ()),
                     getattr(s, "else_body", ())):
            for inner in body:
                visit_stmt(inner)

    for s in main:
        visit_stmt(s)
    return sites


def _replace_num(main: tuple, site_index: int, new_value: int) -> tuple:
    """Main with the Num at pre-order *site_index* replaced."""
    counter = [0]

    def map_expr(e):
        if isinstance(e, Num):
            here = counter[0]
            counter[0] += 1
            return Num(new_value) if here == site_index else e
        from ..ir.ast import ArrayRead, BinOp, Intrinsic, UnaryOp

        if isinstance(e, BinOp):
            return BinOp(e.op, map_expr(e.left), map_expr(e.right))
        if isinstance(e, UnaryOp):
            return UnaryOp(e.op, map_expr(e.arg))
        if isinstance(e, ArrayRead):
            return ArrayRead(e.array, map_expr(e.index))
        if isinstance(e, Intrinsic):
            return Intrinsic(e.name, tuple(map_expr(a) for a in e.args))
        return e

    def map_stmt(s):
        from ..ir.ast import AssignArray

        if isinstance(s, AssignScalar):
            return AssignScalar(s.name, map_expr(s.expr))
        if isinstance(s, AssignArray):
            return AssignArray(
                s.array, map_expr(s.index), map_expr(s.expr), s.is_update
            )
        if isinstance(s, If):
            return If(
                map_expr(s.cond),
                tuple(map_stmt(x) for x in s.then_body),
                tuple(map_stmt(x) for x in s.else_body),
            )
        if isinstance(s, Do):
            return Do(
                s.index, map_expr(s.lower), map_expr(s.upper),
                tuple(map_stmt(x) for x in s.body), s.label,
            )
        if isinstance(s, While):
            return While(
                map_expr(s.cond), tuple(map_stmt(x) for x in s.body), s.label
            )
        return s

    return tuple(map_stmt(s) for s in main)


def shrink_case(
    case: FuzzCase,
    oracle: Callable = run_case,
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Minimize *case* while preserving its oracle outcome class."""
    return _Shrinker(case, oracle, budget).run()


# -- corpus persistence and replay -------------------------------------------


@dataclass
class CorpusCase:
    """One persisted regression program."""

    seed: int
    source: str
    params: dict
    arrays: dict
    label: str
    exact_strategy: str
    #: outcome the case originally produced (the bug being guarded)
    original_outcome: str
    original_detail: str
    provenance: str

    def to_case(self) -> FuzzCase:
        return FuzzCase(
            seed=self.seed,
            program=fuzz_engine().parse(self.source),
            source=self.source,
            params=dict(self.params),
            arrays={k: list(v) for k, v in self.arrays.items()},
            label=self.label,
            exact_strategy=self.exact_strategy,
        )


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    path: str
    ok: bool
    outcome: str
    message: str


def corpus_dir(root: Optional[Path] = None) -> Path:
    """The regression-corpus directory (repo-relative by default)."""
    if root is not None:
        return Path(root)
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "regression" / "corpus"
        if candidate.is_dir():
            return candidate
    return Path("tests/regression/corpus")


def write_corpus_case(shrunk: ShrinkResult, directory: Path) -> Path:
    """Persist a minimized failure as a corpus JSON document."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    case = shrunk.case
    payload = {
        "schema": CORPUS_SCHEMA,
        "seed": case.seed,
        "label": case.label,
        "exact_strategy": case.exact_strategy,
        "params": case.params,
        "arrays": case.arrays,
        "source": case.source,
        "original_outcome": shrunk.outcome,
        "original_detail": shrunk.detail,
        "provenance": shrunk.provenance,
    }
    path = directory / f"seed{case.seed}-{shrunk.outcome}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_corpus_case(path: Path) -> CorpusCase:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"{path}: unknown corpus schema {payload.get('schema')!r}")
    return CorpusCase(
        seed=payload["seed"],
        source=payload["source"],
        params=payload["params"],
        arrays=payload["arrays"],
        label=payload["label"],
        exact_strategy=payload.get("exact_strategy", "inspector"),
        original_outcome=payload.get("original_outcome", "?"),
        original_detail=payload.get("original_detail", ""),
        provenance=payload.get("provenance", "?"),
    )


def replay_corpus_case(
    entry: CorpusCase, path: str = "<memory>", oracle: Callable = run_case
) -> ReplayResult:
    """Re-judge a corpus entry.  OK iff the guarded bug stays fixed
    (the oracle reports a non-failing outcome)."""
    try:
        result: CaseResult = oracle(entry.to_case())
        outcome, detail = result.outcome, result.detail
    except Exception as exc:  # noqa: BLE001 -- replay must never blow up pytest
        outcome, detail = "crash", f"{type(exc).__name__}: {exc}"
    ok = outcome not in ("unsound", "crash")
    message = (
        f"{path}: seed {entry.seed} ({entry.provenance}) -> {outcome}"
        + (f": {detail}" if detail else "")
        + (f" [originally {entry.original_outcome}: "
           f"{entry.original_detail}]" if not ok else "")
    )
    return ReplayResult(path=str(path), ok=ok, outcome=outcome, message=message)
