"""Baseline analyzers: a commercial-compiler model (static-only,
intra-procedural) and the classical GCD/Banerjee/Range dependence tests."""

from .dependence_tests import (
    DependenceVerdict,
    banerjee_test,
    gcd_test,
    range_test,
)
from .static_affine import BaselineVerdict, StaticAffineCompiler

__all__ = [
    "StaticAffineCompiler",
    "BaselineVerdict",
    "DependenceVerdict",
    "gcd_test",
    "banerjee_test",
    "range_test",
]
