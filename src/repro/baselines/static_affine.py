"""A model of the commercial auto-parallelizers the paper compares against.

The paper attributes ifort's and xlf's losses to two missing
capabilities (Section 6.1): interprocedural dependence analysis, and
runtime validation of parallelization (conditional parallelization,
inspector/executor, speculation).  ``StaticAffineCompiler`` is the
hybrid analyzer with exactly those capabilities removed:

* call sites are opaque (whole-array read-write clobbers);
* no CIV aggregation, monotonicity rule or USR reshaping;
* a loop is parallelized only when it is *statically* proven independent
  -- predicates must fold to true at compile time; anything requiring a
  runtime test runs sequentially.

It still performs privatization and static reduction recognition, which
commercial compilers do handle intra-procedurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analyzer import HybridAnalyzer, LoopPlan
from ..ir.ast import Program

__all__ = ["BaselineVerdict", "StaticAffineCompiler"]


@dataclass(frozen=True)
class BaselineVerdict:
    """The baseline's decision for one loop."""

    label: str
    parallel: bool
    reason: str


class StaticAffineCompiler:
    """ifort/xlf stand-in: static-only, intra-procedural parallelization."""

    def __init__(self, program: Program):
        self.program = program
        self._analyzer = HybridAnalyzer(
            program,
            use_monotonicity=False,
            use_reshaping=False,
            use_civagg=False,
            interprocedural=False,
        )

    def analyze(self, label: str) -> BaselineVerdict:
        try:
            plan = self._analyzer.analyze(label)
        except (KeyError, ValueError):
            return BaselineVerdict(label, False, "unanalyzable")
        return self.judge(plan)

    def judge(self, plan: LoopPlan) -> BaselineVerdict:
        if plan.approximate:
            return BaselineVerdict(plan.label, False, "opaque construct (call/IO)")
        if plan.analysis is not None and plan.analysis.scalar_flow_deps:
            civs = {c.name for c in plan.civs}
            if plan.analysis.scalar_flow_deps - civs:
                return BaselineVerdict(plan.label, False, "scalar recurrence")
        if plan.civs:
            return BaselineVerdict(plan.label, False, "induction variable without closed form")
        for array, aplan in plan.arrays.items():
            if aplan.needs_exact:
                return BaselineVerdict(
                    plan.label, False, f"{array}: dependence not provable statically"
                )
            if aplan.runtime_cascades():
                return BaselineVerdict(
                    plan.label, False, f"{array}: requires runtime test"
                )
            if aplan.transform == "reduction" and aplan.needs_bounds_comp:
                # xlf's observed behaviour: it parallelizes such reductions
                # with atomics, which the paper measures as slower than
                # sequential; model as not-parallel for timing purposes.
                return BaselineVerdict(
                    plan.label, False, f"{array}: reduction bounds unknown"
                )
        return BaselineVerdict(plan.label, True, "statically independent")
