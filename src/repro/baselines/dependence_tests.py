"""Classical dependence tests: GCD, Banerjee, and a Range Test.

These are the Section 1/7 points of comparison: the affine tests that
static analyzers (and our baseline compiler model) are built from, plus
Blume & Eigenmann's Range Test which handles a class of symbolic
non-linear subscripts via monotonicity.  They operate on single
subscript pairs ``a1*i + b1`` (write) vs ``a2*i + b2`` (read) over an
iteration range, and on per-iteration symbolic access ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from ..symbolic import (
    BoolExpr,
    Expr,
    ExprLike,
    as_expr,
    b_and,
    cmp_gt,
    sym,
)
from ..symbolic.monotone import provably_nonneg, provably_positive
from ..symbolic.ranges import bounds_of, try_sign

__all__ = ["gcd_test", "banerjee_test", "range_test", "DependenceVerdict"]


@dataclass(frozen=True)
class DependenceVerdict:
    """Outcome of a dependence test: ``independent`` is definitive only
    when True; False means 'could not disprove'."""

    independent: bool
    reason: str


def gcd_test(a1: int, b1: int, a2: int, b2: int) -> DependenceVerdict:
    """GCD test for ``a1*i + b1 == a2*j + b2`` having integer solutions.

    If ``gcd(a1, a2)`` does not divide ``b2 - b1`` the subscripts can
    never collide, for any iteration pair.
    """
    g = gcd(abs(a1), abs(a2))
    if g == 0:
        return DependenceVerdict(b1 != b2, "degenerate: constant subscripts")
    if (b2 - b1) % g != 0:
        return DependenceVerdict(True, f"gcd {g} does not divide {b2 - b1}")
    return DependenceVerdict(False, "gcd test inconclusive")


def banerjee_test(
    a1: int, b1: int, a2: int, b2: int, lower: int, upper: int
) -> DependenceVerdict:
    """Banerjee's inequality for a single-index subscript pair.

    Dependence requires ``a1*i - a2*j = b2 - b1`` for some
    ``lower <= i, j <= upper``; if ``b2 - b1`` falls outside the
    attainable ``[min, max]`` of the left side, no dependence exists.
    """
    if upper < lower:
        return DependenceVerdict(True, "empty iteration space")

    def term_range(a: int) -> tuple[int, int]:
        lo, hi = a * lower, a * upper
        return (min(lo, hi), max(lo, hi))

    lo1, hi1 = term_range(a1)
    lo2, hi2 = term_range(a2)
    lo, hi = lo1 - hi2, hi1 - lo2
    diff = b2 - b1
    if diff < lo or diff > hi:
        return DependenceVerdict(True, f"{diff} outside Banerjee bounds [{lo},{hi}]")
    return DependenceVerdict(False, "Banerjee bounds admit a solution")


def range_test(
    low: ExprLike,
    high: ExprLike,
    index: str,
    lower: ExprLike,
    upper: ExprLike,
    monotone: frozenset[str] = frozenset(),
) -> DependenceVerdict:
    """Blume-Eigenmann-style Range Test over symbolic access ranges.

    The per-iteration access range of the loop ``index`` is
    ``[low(index), high(index)]``; if the ranges of consecutive
    iterations are provably separated (``low(i+1) > high(i)`` and the
    range is monotone), no two iterations overlap.
    """
    low_e, high_e = as_expr(low), as_expr(high)
    shift = {index: sym(index) + 1}
    step_gap = low_e.substitute(shift) - high_e
    step_lo = low_e.substitute(shift) - low_e
    bounds = {index: (as_expr(lower), as_expr(upper))}
    gap_ok = (
        try_sign(step_gap, bounds) == "+"
        or provably_positive(step_gap, monotone, bounds)
    )
    mono_ok = (
        try_sign(step_lo, bounds) in ("+", "0")
        or provably_nonneg(step_lo, monotone, bounds)
    )
    if gap_ok and mono_ok:
        return DependenceVerdict(True, "ranges strictly increasing and disjoint")
    # Symmetric decreasing case.
    step_gap_d = low_e - high_e.substitute(shift)
    step_hi_d = high_e - high_e.substitute(shift)
    gap_ok_d = (
        try_sign(step_gap_d, bounds) == "+"
        or provably_positive(step_gap_d, monotone, bounds)
    )
    mono_ok_d = (
        try_sign(step_hi_d, bounds) in ("+", "0")
        or provably_nonneg(step_hi_d, monotone, bounds)
    )
    if gap_ok_d and mono_ok_d:
        return DependenceVerdict(True, "ranges strictly decreasing and disjoint")
    return DependenceVerdict(False, "range test inconclusive")
