"""PDAG: the predicate language of Section 3.

Nodes and evaluation with cost accounting (:mod:`.nodes`), the Section
3.5 simplifications (:mod:`.simplify`) and the complexity-ordered
predicate cascade (:mod:`.cascade`).
"""

from .cascade import (
    Cascade,
    CascadeOutcome,
    CascadeStage,
    build_cascade,
    strengthen_to_depth,
)
from .nodes import (
    EvalStats,
    PAnd,
    PCall,
    PDAG,
    PFALSE,
    PLeaf,
    PLoopAnd,
    POr,
    PTRUE,
    p_and,
    p_call,
    p_leaf,
    p_loop_and,
    p_or,
)
from .simplify import extract_common_factors, hoist_invariants, simplify

__all__ = [
    "PDAG", "PLeaf", "PAnd", "POr", "PLoopAnd", "PCall", "PTRUE", "PFALSE",
    "EvalStats", "p_leaf", "p_and", "p_or", "p_loop_and", "p_call",
    "simplify", "extract_common_factors", "hoist_invariants",
    "Cascade", "CascadeOutcome", "CascadeStage", "build_cascade",
    "strengthen_to_depth",
]
