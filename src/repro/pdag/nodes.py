"""PDAG -- the predicate language targeted by the USR translation (Sec. 3).

Like the USR it mirrors, the predicate language is a DAG: leaves are
symbolic boolean expressions (:class:`~repro.symbolic.BoolExpr`), interior
nodes are logical conjunction/disjunction, *loop conjunctions*
(``AND_{i=lo..hi} P(i)`` -- irreducible conjunctions across loop
iterations, the source of O(N) runtime cost) and call-site barriers.

Evaluation counts the leaf predicates executed, which is the quantity the
paper's RTov (runtime-overhead) columns measure.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..symbolic import FALSE, TRUE, BoolExpr, EvalEnv, Expr, ExprLike, as_expr

__all__ = [
    "PDAG",
    "PLeaf",
    "PAnd",
    "POr",
    "PLoopAnd",
    "PCall",
    "PTRUE",
    "PFALSE",
    "EvalStats",
    "p_leaf",
    "p_and",
    "p_or",
    "p_loop_and",
    "p_call",
]


class EvalStats:
    """Mutable counter of predicate-evaluation work (modelled runtime)."""

    __slots__ = ("leaf_evals", "loop_iterations")

    def __init__(self) -> None:
        self.leaf_evals = 0
        self.loop_iterations = 0

    @property
    def total_steps(self) -> int:
        return self.leaf_evals + self.loop_iterations

    def __repr__(self) -> str:
        return (
            f"EvalStats(leaves={self.leaf_evals}, "
            f"iterations={self.loop_iterations})"
        )


class PDAG:
    """Base class of predicate-DAG nodes.  Immutable and hashable (hash
    cached -- predicates are DAGs with heavy sharing).

    ``evaluate`` optionally takes a *memo* dictionary mapping leaf nodes
    to already-computed truth values under the current (top-level)
    environment.  A cascade passes one memo across all of its stages, so
    sub-predicates shared between the O(1)/O(N)/full stages evaluate
    once.  The memo is dropped when entering a loop conjunction (the
    environment changes per iteration) and never alters the modelled
    cost: :class:`EvalStats` counters advance exactly as if every leaf
    had been re-evaluated, keeping the paper's RTov accounting intact.
    """

    __slots__ = ("_hash_cache", "_free_cache", "_count_cache")

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        raise NotImplementedError

    def children(self) -> tuple["PDAG", ...]:
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        """Free symbols, cached per node: predicates are DAGs with heavy
        structural sharing, and the constructors (`p_loop_and`) and the
        hoisting passes query this on every visit -- an uncached walk is
        exponential on factored predicates."""
        cached = getattr(self, "_free_cache", None)
        if cached is None:
            cached = self._free_symbols()
            self._free_cache = cached
        return cached

    def _free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, Expr]) -> "PDAG":
        raise NotImplementedError

    def key(self) -> tuple:
        raise NotImplementedError

    def loop_depth(self) -> int:
        """Nesting depth of loop-conjunction nodes: the O(N^depth) model."""
        inner = max((c.loop_depth() for c in self.children()), default=0)
        return inner + (1 if isinstance(self, PLoopAnd) else 0)

    def is_true(self) -> bool:
        return isinstance(self, PLeaf) and self.cond.is_true()

    def is_false(self) -> bool:
        return isinstance(self, PLeaf) and self.cond.is_false()

    def node_count(self) -> int:
        """Tree node count (shared subgraphs counted per occurrence),
        cached per node -- the size-cap checks in FACTOR query this on
        every inference step."""
        cached = getattr(self, "_count_cache", None)
        if cached is None:
            cached = 1 + sum(c.node_count() for c in self.children())
            self._count_cache = cached
        return cached

    def complexity_label(self) -> str:
        """Human-readable cost class: ``O(1)``, ``O(N)``, ``O(N^2)``..."""
        d = self.loop_depth()
        if d == 0:
            return "O(1)"
        if d == 1:
            return "O(N)"
        return f"O(N^{d})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.key() == other.key()

    def __hash__(self) -> int:
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((type(self).__name__,) + self.key())
            self._hash_cache = cached
        return cached


class PLeaf(PDAG):
    """A symbolic boolean leaf."""

    __slots__ = ("cond",)

    def __init__(self, cond: BoolExpr):
        self.cond = cond

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        if stats is not None:
            stats.leaf_evals += 1
        if memo is not None:
            cached = memo.get(self)
            if cached is not None:
                return cached
            result = self.cond.evaluate(env)
            memo[self] = result
            return result
        return self.cond.evaluate(env)

    def children(self) -> tuple[PDAG, ...]:
        return ()

    def _free_symbols(self) -> frozenset[str]:
        return self.cond.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> PDAG:
        return p_leaf(self.cond.substitute(mapping))

    def key(self) -> tuple:
        return (self.cond,)

    def __repr__(self) -> str:
        return repr(self.cond)


PTRUE = PLeaf(TRUE)
PFALSE = PLeaf(FALSE)


class _NaryP(PDAG):
    __slots__ = ("args",)
    _symbol: str

    def __init__(self, args: Iterable[PDAG]):
        self.args = tuple(args)
        if len(self.args) < 2:
            raise ValueError(f"{type(self).__name__} needs >= 2 operands")

    def children(self) -> tuple[PDAG, ...]:
        return self.args

    def _free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out

    def key(self) -> tuple:
        return (frozenset(self.args),)

    def __repr__(self) -> str:
        return "(" + f" {self._symbol} ".join(repr(a) for a in self.args) + ")"


class PAnd(_NaryP):
    """Flat n-ary conjunction."""

    __slots__ = ()
    _symbol = "AND"

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        return all(a.evaluate(env, stats, memo) for a in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> PDAG:
        return p_and(*(a.substitute(mapping) for a in self.args))


class POr(_NaryP):
    """Flat n-ary disjunction."""

    __slots__ = ()
    _symbol = "OR"

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        return any(a.evaluate(env, stats, memo) for a in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> PDAG:
        return p_or(*(a.substitute(mapping) for a in self.args))


class PLoopAnd(PDAG):
    """``AND_{index=lower..upper} body`` -- an irreducible loop conjunction.

    Evaluation iterates the index range, modelling the paper's parallel
    and-reduction tests of O(N) (or deeper) complexity.  An empty range is
    vacuously true.
    """

    __slots__ = ("index", "lower", "upper", "body")

    def __init__(self, index: str, lower: ExprLike, upper: ExprLike, body: PDAG):
        self.index = index
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.body = body

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        # The body runs under per-iteration environments: the shared
        # cascade memo (keyed on the top-level env) must not leak in.
        lo = self.lower.evaluate(env)
        hi = self.upper.evaluate(env)
        child_env = dict(env)
        for i in range(lo, hi + 1):
            if stats is not None:
                stats.loop_iterations += 1
            child_env[self.index] = i
            if not self.body.evaluate(child_env, stats):
                return False
        return True

    def children(self) -> tuple[PDAG, ...]:
        return (self.body,)

    def _free_symbols(self) -> frozenset[str]:
        out = self.lower.free_symbols() | self.upper.free_symbols()
        out |= self.body.free_symbols() - {self.index}
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> PDAG:
        clean = {k: v for k, v in mapping.items() if k != self.index}
        return p_loop_and(
            self.index,
            self.lower.substitute(clean),
            self.upper.substitute(clean),
            self.body.substitute(clean),
        )

    def key(self) -> tuple:
        return (self.index, self.lower, self.upper, self.body)

    def __repr__(self) -> str:
        return f"(AND_{{{self.index}={self.lower!r}..{self.upper!r}}} {self.body!r})"


class PCall(PDAG):
    """A call-site barrier in the predicate program (``P ./ callee``)."""

    __slots__ = ("callee", "body")

    def __init__(self, callee: str, body: PDAG):
        self.callee = callee
        self.body = body

    def evaluate(
        self,
        env: EvalEnv,
        stats: Optional[EvalStats] = None,
        memo: Optional[dict] = None,
    ) -> bool:
        return self.body.evaluate(env, stats, memo)

    def children(self) -> tuple[PDAG, ...]:
        return (self.body,)

    def _free_symbols(self) -> frozenset[str]:
        return self.body.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> PDAG:
        return p_call(self.callee, self.body.substitute(mapping))

    def key(self) -> tuple:
        return (self.callee, self.body)

    def __repr__(self) -> str:
        return f"({self.body!r} ./ {self.callee})"


# -- smart constructors ------------------------------------------------------


def p_leaf(cond: BoolExpr) -> PDAG:
    """Leaf constructor reusing the canonical true/false instances."""
    if cond.is_true():
        return PTRUE
    if cond.is_false():
        return PFALSE
    return PLeaf(cond)


def _flatten_p(cls: type, args: Iterable[PDAG]) -> list[PDAG]:
    out: list[PDAG] = []
    seen: set[PDAG] = set()
    for a in args:
        parts = a.args if isinstance(a, cls) else (a,)
        for p in parts:
            if p not in seen:
                seen.add(p)
                out.append(p)
    return out


def _absorb(args: list[PDAG], inner: type) -> list[PDAG]:
    """Absorption: in an OR, drop ``A and B`` when ``A`` is present (and
    dually in an AND).  ``inner`` is the opposite node class: operands are
    viewed as sets of its parts; an operand whose part set is a strict
    superset of another operand's is redundant."""
    if len(args) < 2:
        return args
    part_sets = [
        frozenset(a.args) if isinstance(a, inner) else frozenset((a,)) for a in args
    ]
    kept: list[PDAG] = []
    for i, a in enumerate(args):
        redundant = False
        for j, other in enumerate(part_sets):
            if i == j:
                continue
            if other < part_sets[i] or (other == part_sets[i] and j < i):
                redundant = True
                break
        if not redundant:
            kept.append(a)
    return kept


def p_and(*args: PDAG) -> PDAG:
    """Conjunction with flattening, deduplication, absorption and
    constant folding.

    Adjacent boolean leaves are merged into one leaf so that the leaf
    layer (:func:`repro.symbolic.b_and`) can fold them further.
    """
    flat = _absorb(_flatten_p(PAnd, args), POr)
    if any(a.is_false() for a in flat):
        return PFALSE
    kept = [a for a in flat if not a.is_true()]
    if not kept:
        return PTRUE
    leaves = [a for a in kept if isinstance(a, PLeaf)]
    others = [a for a in kept if not isinstance(a, PLeaf)]
    merged: list[PDAG] = []
    if leaves:
        from ..symbolic import b_and

        merged.append(p_leaf(b_and(*(leaf.cond for leaf in leaves))))
    merged.extend(others)
    merged = [m for m in merged if not m.is_true()]
    if not merged:
        return PTRUE
    if any(m.is_false() for m in merged):
        return PFALSE
    if len(merged) == 1:
        return merged[0]
    return PAnd(merged)


def p_or(*args: PDAG) -> PDAG:
    """Disjunction with flattening, deduplication, absorption and
    constant folding."""
    flat = _absorb(_flatten_p(POr, args), PAnd)
    if any(a.is_true() for a in flat):
        return PTRUE
    kept = [a for a in flat if not a.is_false()]
    if not kept:
        return PFALSE
    leaves = [a for a in kept if isinstance(a, PLeaf)]
    others = [a for a in kept if not isinstance(a, PLeaf)]
    merged: list[PDAG] = []
    if leaves:
        from ..symbolic import b_or

        merged.append(p_leaf(b_or(*(leaf.cond for leaf in leaves))))
    merged.extend(others)
    merged = [m for m in merged if not m.is_false()]
    if not merged:
        return PFALSE
    if any(m.is_true() for m in merged):
        return PTRUE
    if len(merged) == 1:
        return merged[0]
    return POr(merged)


def p_loop_and(index: str, lower: ExprLike, upper: ExprLike, body: PDAG) -> PDAG:
    """Loop conjunction; invariant bodies collapse (sound strengthening:
    a non-executing loop is vacuously true, the invariant body implies
    the conjunction otherwise)."""
    if body.is_true():
        return PTRUE
    if index not in body.free_symbols():
        return body
    if body.is_false():
        # AND over a possibly-empty range of false: true only when the
        # range is empty; as a *sufficient* condition, fold to false.
        return PFALSE
    return PLoopAnd(index, lower, upper, body)


def p_call(callee: str, body: PDAG) -> PDAG:
    """Call barrier; constants pass through."""
    if body.is_true() or body.is_false():
        return body
    return PCall(callee, body)
