"""Predicate-program simplification (Section 3.5).

Three cooperating transformations raise predicate quality and lower
runtime cost:

* **flattening** of repeated and/or compositions into n-ary nodes
  (performed eagerly by the smart constructors);
* **common-factor extraction**: ``AND(B1 or A, ..., Bp or A) ->
  AND(B1,...,Bp) or A`` -- an equivalence that both removes redundancy
  and exposes ``A`` for hoisting;
* **invariant hoisting**: loop-invariant operands of an and/or node under
  a loop conjunction move outside the loop node; leaves that still
  mention the loop index are first strengthened via the symbolic
  Fourier-Motzkin elimination of Fig. 6(b), which is how the O(N)
  predicate ``AND_i 8*NP < NS+6`` of the paper's Fig. 3(a) example
  collapses to the O(1) predicate ``8*NP < NS+6``.

All rewrites are either equivalences or sound strengthenings (the PDAG
has no negative positions), preserving the sufficiency invariant
``P => (S = {})``.
"""

from __future__ import annotations

from .. import profiling as _profiling
from ..symbolic import eliminate_symbol
from ..symbolic.intern import Memo
from .nodes import (
    PAnd,
    PCall,
    PDAG,
    PLeaf,
    PLoopAnd,
    POr,
    p_and,
    p_call,
    p_leaf,
    p_loop_and,
    p_or,
)

__all__ = ["simplify", "extract_common_factors", "hoist_invariants"]

_MAX_PASSES = 8


def extract_common_factors(node: PDAG) -> PDAG:
    """Apply ``AND(B or A, ...) -> AND(B...) or A`` (and its dual) once."""
    if isinstance(node, PAnd):
        ors = [a for a in node.args if isinstance(a, POr)]
        if len(ors) == len(node.args) and len(ors) >= 2:
            common = set(ors[0].args)
            for other in ors[1:]:
                common &= set(other.args)
            if common:
                residues = []
                for o in ors:
                    rest = [a for a in o.args if a not in common]
                    if not rest:
                        # This disjunct is exactly the common part: the
                        # whole conjunction reduces to it.
                        return p_or(*common)
                    residues.append(p_or(*rest))
                return p_or(*common, p_and(*residues))
    if isinstance(node, POr):
        ands = [a for a in node.args if isinstance(a, PAnd)]
        if len(ands) == len(node.args) and len(ands) >= 2:
            common = set(ands[0].args)
            for other in ands[1:]:
                common &= set(other.args)
            if common:
                residues = []
                for o in ands:
                    rest = [a for a in o.args if a not in common]
                    if not rest:
                        return p_and(*common)
                    residues.append(p_and(*rest))
                return p_and(*common, p_or(*residues))
    return node


def _try_eliminate(leaf: PLeaf, index: str, lower, upper) -> PDAG:
    """Strengthen a leaf mentioning the loop index into an invariant one
    via Fourier-Motzkin; keep the original when elimination fails."""
    if index not in leaf.free_symbols():
        return leaf
    reduced = eliminate_symbol(leaf.cond, index, lower, upper)
    if index in reduced.free_symbols() or reduced.is_false():
        return leaf
    return p_leaf(reduced)


_HOIST_MEMO = Memo("pdag.hoist_invariants", max_size=200_000)


def hoist_invariants(node: PDAG) -> PDAG:
    """One bottom-up pass of invariant hoisting across loop nodes.

    Memoized: predicate DAGs share subtrees heavily and simplification
    runs to a fixpoint, so identical nodes recur constantly.
    """
    cached = _HOIST_MEMO.get(node)
    if cached is not None:
        return cached
    return _HOIST_MEMO.put(node, _hoist_invariants(node))


def _hoist_invariants(node: PDAG) -> PDAG:
    if isinstance(node, PLeaf):
        return node
    if isinstance(node, PAnd):
        return extract_common_factors(p_and(*(hoist_invariants(a) for a in node.args)))
    if isinstance(node, POr):
        return extract_common_factors(p_or(*(hoist_invariants(a) for a in node.args)))
    if isinstance(node, PCall):
        return p_call(node.callee, hoist_invariants(node.body))
    if isinstance(node, PLoopAnd):
        body = hoist_invariants(node.body)
        index, lower, upper = node.index, node.lower, node.upper
        # Re-expose merged boolean leaves to the structural hoisting below.
        from ..symbolic import AndB, OrB

        if isinstance(body, PLeaf) and isinstance(body.cond, AndB):
            body = PAnd([p_leaf(c) for c in body.cond.args])
        elif isinstance(body, PLeaf) and isinstance(body.cond, OrB):
            body = POr([p_leaf(c) for c in body.cond.args])
        if isinstance(body, PLeaf):
            body = _try_eliminate(body, index, lower, upper)
        if isinstance(body, PAnd):
            parts = [
                _try_eliminate(a, index, lower, upper) if isinstance(a, PLeaf) else a
                for a in body.args
            ]
            invariant = [a for a in parts if index not in a.free_symbols()]
            variant = [a for a in parts if index in a.free_symbols()]
            if invariant:
                if variant:
                    return p_and(
                        *invariant, p_loop_and(index, lower, upper, p_and(*variant))
                    )
                return p_and(*invariant)
            body = p_and(*parts)
        if isinstance(body, POr):
            parts = [
                _try_eliminate(a, index, lower, upper) if isinstance(a, PLeaf) else a
                for a in body.args
            ]
            invariant = [a for a in parts if index not in a.free_symbols()]
            variant = [a for a in parts if index in a.free_symbols()]
            if invariant:
                # AND_i (inv or var_i)  <=  inv or AND_i var_i : sufficient.
                if variant:
                    return p_or(
                        *invariant, p_loop_and(index, lower, upper, p_or(*variant))
                    )
                return p_or(*invariant)
            body = p_or(*parts)
        return p_loop_and(index, lower, upper, body)
    raise TypeError(f"unknown PDAG node {node!r}")


_SIMPLIFY_MEMO = Memo("pdag.simplify", max_size=100_000)


@_profiling.timed("pdag.simplify")
def simplify(node: PDAG) -> PDAG:
    """Run hoisting + factor extraction to a (bounded) fixpoint.

    Memoized on the input node: the analyzer simplifies the same factored
    predicates once per array per run, and cascade construction
    re-simplifies each strengthened stage.
    """
    cached = _SIMPLIFY_MEMO.get(node)
    if cached is not None:
        return cached
    current = node
    for _ in range(_MAX_PASSES):
        improved = hoist_invariants(current)
        if improved == current:
            break
        current = improved
    return _SIMPLIFY_MEMO.put(node, current)
