"""Cascading predicates by runtime complexity (Section 3.5, last part).

The complete predicate program is factored into a sequence of sufficient
conditions of increasing cost: an O(1) term obtained by dropping every
loop node, an O(N) term obtained by replacing *inner* loop nodes (nest
depth > 1) with false -- the paper's Fig. 9(a) MAFILLSM_DO7 example --
and so on up to the full predicate.  At run time the cascade is evaluated
in order and the first success short-circuits the rest; if all fail the
caller falls back to an exact test (USR evaluation or speculation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import profiling as _profiling
from ..symbolic import EvalEnv
from ..symbolic.intern import Memo
from .nodes import EvalStats, PAnd, PCall, PDAG, PFALSE, PLeaf, PLoopAnd, POr, p_and, p_call, p_loop_and, p_or
from .simplify import simplify

__all__ = ["strengthen_to_depth", "build_cascade", "Cascade", "CascadeOutcome"]


def strengthen_to_depth(node: PDAG, max_depth: int, _depth: int = 0) -> PDAG:
    """Replace loop nodes nested deeper than *max_depth* with false.

    ``max_depth=0`` yields the O(1) separation (every loop node dropped),
    ``max_depth=1`` the O(N) separation of Fig. 9(a), and so on.  The
    result is simplified, which re-runs invariant hoisting so that
    predicates whose loop bodies were invariant survive the cut.
    """
    if isinstance(node, PLeaf):
        return node
    if isinstance(node, PAnd):
        return p_and(*(strengthen_to_depth(a, max_depth, _depth) for a in node.args))
    if isinstance(node, POr):
        return p_or(*(strengthen_to_depth(a, max_depth, _depth) for a in node.args))
    if isinstance(node, PCall):
        return p_call(node.callee, strengthen_to_depth(node.body, max_depth, _depth))
    if isinstance(node, PLoopAnd):
        if _depth + 1 > max_depth:
            return PFALSE
        return p_loop_and(
            node.index,
            node.lower,
            node.upper,
            strengthen_to_depth(node.body, max_depth, _depth + 1),
        )
    raise TypeError(f"unknown PDAG node {node!r}")


@dataclass(frozen=True)
class CascadeStage:
    """One stage of the cascade: a label like ``O(1)`` plus its predicate."""

    label: str
    predicate: PDAG


@dataclass
class CascadeOutcome:
    """Result of running a cascade: which stage succeeded (or none) and the
    accumulated evaluation cost."""

    passed: bool
    stage_label: Optional[str]
    stage_index: Optional[int]
    stats: EvalStats


class Cascade:
    """An ordered sequence of increasingly expensive sufficient predicates."""

    def __init__(self, stages: list[CascadeStage]):
        self.stages = stages

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def evaluate(self, env: EvalEnv) -> CascadeOutcome:
        """Evaluate stages in order; the first success wins (Section 5:
        'the first successful predicate disables the evaluation of the
        rest').

        A single leaf-evaluation memo is shared across the stages: each
        stage is a strengthened copy of the full predicate, so the
        invariant leaves it shares with cheaper stages evaluate only
        once per cascade run.  The modelled cost (:class:`EvalStats`)
        still counts every logical evaluation.
        """
        stats = EvalStats()
        memo: dict = {}
        outcome = None
        for i, stage in enumerate(self.stages):
            if stage.predicate.evaluate(env, stats, memo):
                outcome = CascadeOutcome(True, stage.label, i, stats)
                break
        if outcome is None:
            outcome = CascadeOutcome(False, None, None, stats)
        _profiling.count("cascade.runs")
        _profiling.count("cascade.leaf_evals", stats.leaf_evals)
        return outcome

    def cheapest_label(self) -> Optional[str]:
        return self.stages[0].label if self.stages else None

    def __repr__(self) -> str:
        inside = ", ".join(f"{s.label}: {s.predicate!r}" for s in self.stages)
        return f"Cascade[{inside}]"


#: Memo for :func:`build_cascade`: cascade factoring re-simplifies the
#: predicate once per depth, and identical predicates recur across arrays
#: and across repeated full-suite analysis runs.
_CASCADE_MEMO = Memo("pdag.build_cascade", max_size=100_000)


def build_cascade(pred: PDAG) -> Cascade:
    """Factor *pred* into the complexity-ordered cascade.

    Stages are deduplicated: a depth-k stage identical to a cheaper stage
    (or provably false) is dropped.  The full predicate always terminates
    the cascade unless a cheaper stage is already equivalent to it.
    Memoized on the predicate (cascades are immutable once built).
    """
    cached = _CASCADE_MEMO.get(pred)
    if cached is not None:
        return cached
    return _CASCADE_MEMO.put(pred, _build_cascade(pred))


def _build_cascade(pred: PDAG) -> Cascade:
    full = simplify(pred)
    max_depth = full.loop_depth()
    stages: list[CascadeStage] = []
    seen: set[PDAG] = set()
    for depth in range(0, max_depth + 1):
        candidate = simplify(strengthen_to_depth(full, depth))
        if candidate.is_false() or candidate in seen:
            continue
        seen.add(candidate)
        label = "O(1)" if depth == 0 else ("O(N)" if depth == 1 else f"O(N^{depth})")
        stages.append(CascadeStage(label, candidate))
        if candidate == full:
            break
    if not stages:
        stages.append(CascadeStage(full.complexity_label(), full))
    return Cascade(stages)
