"""Real-execution benchmark harness (``repro-eval bench``).

The evaluation tables simulate the paper's machines through a cost
model; this harness measures the *actual* wall-clock cost of running
validated parallel loops on every execution backend
(:mod:`repro.runtime.backends`), and writes the measurements to a
schema-stable ``BENCH_<suite>.json`` trajectory document so CI (and
future PRs) can track execution performance over time.

Schema contract, pinned by ``tools/check_bench_schema.py`` and
``tests/unit/test_bench_schema.py``:

* :data:`BENCH_VERSION` is part of every document; readers reject
  unknown versions;
* documents are serialized with
  :func:`repro.api.protocol.canonical_json` -- sorted keys, indent 1 --
  so ``parse -> re-serialize`` is byte-identical and diffs between
  trajectory points are meaningful;
* only measured quantities vary between runs: the key set and the
  workload/backend structure are functions of the suite alone.

Every workload asserts backend/interpreter equivalence as it runs
(``correct`` is the executor's ground-truth comparison); a bench run
with any equivalence failure exits non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..api import Engine, EngineConfig
from ..api.protocol import canonical_json
from ..runtime.backends import BACKENDS, ChunkSpec, available_backends

__all__ = [
    "BENCH_VERSION",
    "BenchWorkload",
    "BENCH_SUITES",
    "run_bench",
    "format_bench",
    "write_bench",
    "bench_path",
]

#: Bump on any change to the BENCH_*.json document shape.
BENCH_VERSION = 1


@dataclass
class BenchWorkload:
    """One measured loop: a program plus concrete inputs."""

    name: str
    source: str
    loop: str
    params: dict
    arrays: Callable[[], dict] = field(repr=False, default=dict)
    description: str = ""


def _permutation(n: int) -> list:
    """A deterministic permutation of 1..n (no RNG: bench inputs must
    be identical across runs and platforms)."""
    if n <= 2:
        return list(range(1, n + 1))
    out = [0] * n
    step = 7919  # prime; avoid degenerate strides for the usual n
    while n % step == 0 or step % n == 0:
        step += 2
    pos = 0
    for value in range(1, n + 1):
        pos = (pos + step) % n
        while out[pos] != 0:
            pos = (pos + 1) % n
        out[pos] = value
    return out


_SAXPY = """
program saxpy
param N
array A(N), B(N)

main
  do i = 1, N @ bench
    B[i] = (A[i] * 3) + i
  end
end
"""

_GATHER = """
program gather
param N
array A(N), B(N), C(N), IDX(N)

main
  do i = 1, N @ bench
    C[i] = A[IDX[i]] + B[i]
  end
end
"""

_STENCIL = """
program stencil
param N, M
array A(M), B(N)

main
  do i = 1, N @ bench
    t = A[i] + A[i + 1]
    B[i] = t + min(A[i], A[i + 1])
  end
end
"""

_HISTOGRAM = """
program histogram
param N, K
array H(K), V(N), IDX(N)

main
  do i = 1, N @ bench
    H[IDX[i]] = H[IDX[i]] + V[i]
  end
end
"""

_COARSE = """
program coarse
param N, M
array S(N), W(M)

main
  do i = 1, N @ bench
    do j = 1, M
      S[i] = S[i] + (W[j] * i)
    end
  end
end
"""


def _saxpy(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="saxpy",
        source=_SAXPY,
        loop="bench",
        params={"N": n},
        arrays=lambda: {"A": [(i * 13) % 97 for i in range(n)]},
        description="fully-parallel affine map (vectorizable)",
    )


def _gather(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="gather",
        source=_GATHER,
        loop="bench",
        params={"N": n},
        arrays=lambda: {
            "A": [(i * 31) % 211 for i in range(n)],
            "B": [i % 17 for i in range(n)],
            "IDX": _permutation(n),
        },
        description="indirect gather through an index permutation",
    )


def _stencil(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="stencil",
        source=_STENCIL,
        loop="bench",
        params={"N": n, "M": n + 1},
        arrays=lambda: {"A": [(i * 7) % 129 for i in range(n + 1)]},
        description="read-only 2-point stencil with a scalar temporary",
    )


def _histogram(n: int, k: int) -> BenchWorkload:
    return BenchWorkload(
        name="histogram",
        source=_HISTOGRAM,
        loop="bench",
        params={"N": n, "K": k},
        arrays=lambda: {
            "V": [(i * 5) % 43 for i in range(n)],
            "IDX": [(i * 7919) % k + 1 for i in range(n)],
        },
        description="indirect additive reduction (delta-merged)",
    )


def _coarse(n: int, m: int) -> BenchWorkload:
    return BenchWorkload(
        name="coarse",
        source=_COARSE,
        loop="bench",
        params={"N": n, "M": m},
        arrays=lambda: {"W": [(i * 3) % 29 for i in range(m)]},
        description="coarse-grain iterations (nested inner loop)",
    )


#: Named workload suites.  'smoke' is the tiny CI configuration; 'core'
#: is the trajectory suite committed as BENCH_core.json.
BENCH_SUITES: dict = {
    "core": lambda: [
        _saxpy(4000),
        _gather(2500),
        _stencil(2500),
        _histogram(2500, 64),
        _coarse(48, 160),
    ],
    "smoke": lambda: [
        _saxpy(1500),
        _histogram(800, 16),
    ],
}


def run_bench(
    suite: str = "core",
    backends: Optional[list] = None,
    jobs: int = 4,
    chunk: Optional[dict] = None,
    repeat: int = 3,
    engine: Optional[Engine] = None,
) -> dict:
    """Measure every workload of *suite* on every backend.

    Returns the BENCH document (see the module docstring for the schema
    contract).  Per (workload, backend) the *best* of ``repeat`` runs is
    recorded -- the usual defence against scheduler noise.
    """
    make = BENCH_SUITES.get(suite)
    if make is None:
        raise KeyError(
            f"unknown bench suite {suite!r}; valid: {sorted(BENCH_SUITES)}"
        )
    if backends is None:
        backends = available_backends()
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise KeyError(
            f"unknown backend(s) {unknown}; valid: {list(BACKENDS)}"
        )
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1 (got {repeat})")
    chunk_spec = ChunkSpec.from_json(chunk)
    engine = engine or Engine(EngineConfig(use_disk_cache=False))
    workload_docs = []
    wins = []
    equivalence_ok = True
    for workload in make():
        compiled = engine.compile(workload.source)
        results: dict = {}
        sequential_wall = None
        last_report = None
        for backend in backends:
            best = None
            all_correct = True
            for _ in range(repeat):
                report = compiled.execute(
                    workload.loop,
                    workload.params,
                    workload.arrays(),
                    backend=backend,
                    jobs=jobs,
                    chunk=chunk_spec.to_json(),
                )
                # every repeat run must match the interpreter -- an
                # intermittent divergence in a non-best run is still a
                # divergence
                all_correct = all_correct and report.correct
                if best is None or report.wall_s < best.wall_s:
                    best = report
            equivalence_ok = equivalence_ok and all_correct
            last_report = best
            results[backend] = {
                "backend_used": best.backend_used,
                "chunks": best.chunks,
                "correct": all_correct,
                "jobs": best.jobs,
                "parallel": best.parallel,
                "wall_s": round(best.wall_s, 6),
            }
            if backend == "sequential":
                sequential_wall = best.wall_s
        for backend, entry in results.items():
            if sequential_wall and entry["wall_s"] > 0:
                speedup = round(sequential_wall / entry["wall_s"], 3)
            else:
                # no sequential baseline in this run: never fabricate a
                # number into the trajectory document
                speedup = None
            entry["speedup"] = speedup
            if (
                backend != "sequential"
                and speedup is not None
                and entry["backend_used"] == backend
                and entry["parallel"]
                and speedup > 1.0
            ):
                wins.append(
                    {"backend": backend, "speedup": speedup,
                     "workload": workload.name}
                )
        # seq_work/trips come from the ground-truth capture every report
        # already carries -- no extra execution needed
        workload_docs.append(
            {
                "description": workload.description,
                "loop": workload.loop,
                "name": workload.name,
                "results": results,
                "seq_work": last_report.seq_work,
                "trips": len(last_report.iteration_costs),
            }
        )
    wins.sort(key=lambda w: (w["workload"], w["backend"]))
    return {
        "backends": list(backends),
        "chunk": chunk_spec.to_json(),
        "equivalence_ok": equivalence_ok,
        "jobs": jobs,
        "parallel_wins": wins,
        "repeat": repeat,
        "suite": suite,
        "version": BENCH_VERSION,
        "workloads": workload_docs,
    }


def bench_path(suite: str, directory: str = ".") -> Path:
    return Path(directory) / f"BENCH_{suite}.json"


def write_bench(doc: dict, directory: str = ".") -> Path:
    """Serialize *doc* to its trajectory file in canonical form."""
    path = bench_path(doc["suite"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(doc) + "\n")
    return path


def format_bench(doc: dict) -> str:
    """Human-readable summary of one bench document."""
    lines = []
    header = (
        f"{'workload':<12} {'backend':<11} {'used':<11} "
        f"{'wall_s':>10} {'speedup':>8} {'chunks':>6} {'ok':>3}"
    )
    lines.append(
        f"suite {doc['suite']}: jobs={doc['jobs']} "
        f"chunk={doc['chunk']['policy']} repeat={doc['repeat']}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload in doc["workloads"]:
        for backend in doc["backends"]:
            entry = workload["results"][backend]
            speedup = entry["speedup"]
            speedup_text = "-" if speedup is None else f"{speedup:.3f}"
            lines.append(
                f"{workload['name']:<12} {backend:<11} "
                f"{entry['backend_used']:<11} {entry['wall_s']:>10.6f} "
                f"{speedup_text:>8} {entry['chunks']:>6} "
                f"{'yes' if entry['correct'] else 'NO':>3}"
            )
    if doc["parallel_wins"]:
        best = max(doc["parallel_wins"], key=lambda w: w["speedup"])
        lines.append(
            f"{len(doc['parallel_wins'])} parallel win(s); best: "
            f"{best['backend']} {best['speedup']:.3f}x on {best['workload']}"
        )
    else:
        lines.append("no parallel backend beat sequential on this host")
    lines.append(
        "equivalence: " + ("ok" if doc["equivalence_ok"] else "FAILED")
    )
    return "\n".join(lines)
