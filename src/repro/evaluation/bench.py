"""Real-execution benchmark harness (``repro-eval bench``).

The evaluation tables simulate the paper's machines through a cost
model; this harness measures the *actual* wall-clock cost of running
validated parallel loops on every execution backend
(:mod:`repro.runtime.backends`), and writes the measurements to a
schema-stable ``BENCH_<suite>.json`` trajectory document so CI (and
future PRs) can track execution performance over time.

Schema contract, pinned by ``tools/check_bench_schema.py`` and
``tests/unit/test_bench_schema.py``:

* :data:`BENCH_VERSION` is part of every document; readers reject
  unknown versions;
* documents are serialized with
  :func:`repro.api.protocol.canonical_json` -- sorted keys, indent 1 --
  so ``parse -> re-serialize`` is byte-identical and diffs between
  trajectory points are meaningful;
* only measured quantities vary between runs: the key set and the
  workload/backend structure are functions of the suite alone.

Every workload asserts backend/interpreter equivalence as it runs
(``correct`` is the executor's ground-truth comparison); a bench run
with any equivalence failure exits non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..api import Engine, EngineConfig
from ..api.protocol import canonical_json
from ..runtime.backends import BACKENDS, ChunkSpec, available_backends

__all__ = [
    "BENCH_VERSION",
    "BenchWorkload",
    "BENCH_SUITES",
    "run_bench",
    "run_compile_bench",
    "run_speculation_bench",
    "format_bench",
    "format_compile_bench",
    "format_speculation_bench",
    "write_bench",
    "bench_path",
]

#: Bump on any change to the BENCH_*.json document shape.
BENCH_VERSION = 1


@dataclass
class BenchWorkload:
    """One measured loop: a program plus concrete inputs."""

    name: str
    source: str
    loop: str
    params: dict
    arrays: Callable[[], dict] = field(repr=False, default=dict)
    description: str = ""


def _permutation(n: int) -> list:
    """A deterministic permutation of 1..n (no RNG: bench inputs must
    be identical across runs and platforms)."""
    if n <= 2:
        return list(range(1, n + 1))
    out = [0] * n
    step = 7919  # prime; avoid degenerate strides for the usual n
    while n % step == 0 or step % n == 0:
        step += 2
    pos = 0
    for value in range(1, n + 1):
        pos = (pos + step) % n
        while out[pos] != 0:
            pos = (pos + 1) % n
        out[pos] = value
    return out


_SAXPY = """
program saxpy
param N
array A(N), B(N)

main
  do i = 1, N @ bench
    B[i] = (A[i] * 3) + i
  end
end
"""

_GATHER = """
program gather
param N
array A(N), B(N), C(N), IDX(N)

main
  do i = 1, N @ bench
    C[i] = A[IDX[i]] + B[i]
  end
end
"""

_STENCIL = """
program stencil
param N, M
array A(M), B(N)

main
  do i = 1, N @ bench
    t = A[i] + A[i + 1]
    B[i] = t + min(A[i], A[i + 1])
  end
end
"""

_HISTOGRAM = """
program histogram
param N, K
array H(K), V(N), IDX(N)

main
  do i = 1, N @ bench
    H[IDX[i]] = H[IDX[i]] + V[i]
  end
end
"""

_COARSE = """
program coarse
param N, M
array S(N), W(M)

main
  do i = 1, N @ bench
    do j = 1, M
      S[i] = S[i] + (W[j] * i)
    end
  end
end
"""


def _saxpy(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="saxpy",
        source=_SAXPY,
        loop="bench",
        params={"N": n},
        arrays=lambda: {"A": [(i * 13) % 97 for i in range(n)]},
        description="fully-parallel affine map (vectorizable)",
    )


def _gather(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="gather",
        source=_GATHER,
        loop="bench",
        params={"N": n},
        arrays=lambda: {
            "A": [(i * 31) % 211 for i in range(n)],
            "B": [i % 17 for i in range(n)],
            "IDX": _permutation(n),
        },
        description="indirect gather through an index permutation",
    )


def _stencil(n: int) -> BenchWorkload:
    return BenchWorkload(
        name="stencil",
        source=_STENCIL,
        loop="bench",
        params={"N": n, "M": n + 1},
        arrays=lambda: {"A": [(i * 7) % 129 for i in range(n + 1)]},
        description="read-only 2-point stencil with a scalar temporary",
    )


def _histogram(n: int, k: int) -> BenchWorkload:
    return BenchWorkload(
        name="histogram",
        source=_HISTOGRAM,
        loop="bench",
        params={"N": n, "K": k},
        arrays=lambda: {
            "V": [(i * 5) % 43 for i in range(n)],
            "IDX": [(i * 7919) % k + 1 for i in range(n)],
        },
        description="indirect additive reduction (delta-merged)",
    )


def _coarse(n: int, m: int) -> BenchWorkload:
    return BenchWorkload(
        name="coarse",
        source=_COARSE,
        loop="bench",
        params={"N": n, "M": m},
        arrays=lambda: {"W": [(i * 3) % 29 for i in range(m)]},
        description="coarse-grain iterations (nested inner loop)",
    )


#: Named workload suites.  'smoke' is the tiny CI configuration; 'core'
#: is the trajectory suite committed as BENCH_core.json.  The
#: 'speculation' suite is special-cased (see
#: :func:`run_speculation_bench`): its document has its own shape.
BENCH_SUITES: dict = {
    "core": lambda: [
        _saxpy(4000),
        _gather(2500),
        _stencil(2500),
        _histogram(2500, 64),
        _coarse(48, 160),
    ],
    "smoke": lambda: [
        _saxpy(1500),
        _histogram(800, 16),
    ],
}


# -- the speculation suite ----------------------------------------------------
#
# Loops the static cascade cannot validate: a non-additive indirect
# update (or scatter) whose independence depends entirely on the runtime
# contents of IDX.  These are the precision-gap shapes the speculative
# backend exists to win.  The gap workloads scatter sparsely into
# *large* shared arrays -- the regime the paper's O(accesses) shadow
# structures are designed for: the reference backend's per-iteration
# snapshots cost O(memory) per iteration, while speculation traces and
# undoes only what the loop actually touches.

_SPEC_UPDATE = """
program specupd
param N, M, K
array H(K), IDX(N), W(M)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + W[j] * i
    end
    H[IDX[i]] = t + H[IDX[i]] * 2
  end
end
"""

_SPEC_SCATTER = """
program specscat
param N, M, K
array OUT(K), IDX(N), W(M)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + W[j] + i
    end
    OUT[IDX[i]] = t
  end
end
"""

_SPEC_MAXUPD = """
program specmax
param N, M, K
array H(K), IDX(N), W(M)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + (W[j] * i)
    end
    H[IDX[i]] = max(H[IDX[i]], t)
  end
end
"""

_SPEC_TWOWAY = """
program spectwo
param N, M, K
array X(K), Y(K), IDX(N), W(M)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + W[j] - i
    end
    X[IDX[i]] = t
    Y[IDX[i]] = t + i
  end
end
"""


def _weights(m: int) -> list:
    return [(j * 11) % 23 for j in range(m)]


def _spec_workload(name, source, n, m, k, idx, description):
    return BenchWorkload(
        name=name,
        source=source,
        loop="bench",
        params={"N": n, "M": m, "K": k},
        arrays=lambda: {"IDX": idx, "W": _weights(m)},
        description=description,
    )


def _speculation_gap(n: int, m: int, k: int) -> list:
    """Commit-expected workloads: runtime-independent index vectors
    scattering sparsely into arrays of *k* cells."""
    # odd strides are coprime to the power-of-two k, so n < k indices
    # are pairwise distinct
    spread = [((i * 7919) % k) + 1 for i in range(n)]
    stride = [((i * 4099) % k) + 1 for i in range(n)]
    return [
        _spec_workload(
            "update_spread", _SPEC_UPDATE, n, m, k, spread,
            "non-additive indirect update, spread distinct indices",
        ),
        _spec_workload(
            "update_stride", _SPEC_UPDATE, n, m, k, stride,
            "non-additive indirect update, strided distinct indices",
        ),
        _spec_workload(
            "scatter_spread", _SPEC_SCATTER, n, m, k, spread,
            "indirect scatter, spread distinct indices",
        ),
        _spec_workload(
            "max_update", _SPEC_MAXUPD, n, m, k, spread,
            "indirect max-update, spread distinct indices",
        ),
        _spec_workload(
            "two_way_scatter", _SPEC_TWOWAY, n, m, k, stride,
            "two-array indirect scatter, strided distinct indices",
        ),
    ]


# Conflict loops carry their weight in a scalar-only inner loop: array
# tracing overhead on reads the LRPD test never needs would inflate the
# optimistic run, and the loss ratio is supposed to charge the
# *misspeculation*, not the tracer.
_CONF_UPDATE = """
program confupd
param N, M, K
array H(K), IDX(N)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + (i * j) - j
    end
    H[IDX[i]] = t + H[IDX[i]] * 2
  end
end
"""

_CONF_MAXUPD = """
program confmax
param N, M, K
array H(K), IDX(N)

main
  do i = 1, N @ bench
    t = 0
    do j = 1, M
      t = t + (i * j) - j
    end
    H[IDX[i]] = max(H[IDX[i]], t)
  end
end
"""


def _conf_workload(name, source, n, m, idx, description):
    return BenchWorkload(
        name=name,
        source=source,
        loop="bench",
        params={"N": n, "M": m, "K": n},
        arrays=lambda: {"IDX": idx},
        description=description,
    )


def _speculation_conflict(n: int, m: int) -> list:
    """Rollback-expected workloads: duplicated indices force true flow
    conflicts through the update's self-read."""
    dup = [((i * 3) % 8) + 1 for i in range(n)]
    hot = [(i % 4) + 1 for i in range(n)]
    return [
        _conf_workload(
            "update_dup", _CONF_UPDATE, n, m, dup,
            "indirect update over 8 duplicated cells",
        ),
        _conf_workload(
            "update_hot", _CONF_MAXUPD, n, m, hot,
            "indirect max-update over 4 hot cells",
        ),
    ]


def run_speculation_bench(
    jobs: int = 4,
    repeat: int = 3,
    engine: Optional[Engine] = None,
    trips: int = 128,
    inner: int = 320,
    cells: int = 32768,
) -> dict:
    """Measure the speculative backend on the precision-gap workloads
    (``repro-eval bench --suite speculation``).

    Unlike :func:`run_bench`, all contenders run over the *same frozen*
    :class:`~repro.runtime.backends.LoopTask`
    (:meth:`~repro.runtime.executor.HybridExecutor.capture_task`), so
    the comparison is execution-only.  Three walls are timed per
    workload:

    * ``sequential_wall_s`` (gap section only) -- the reference
      :class:`~repro.runtime.backends.SequentialBackend`, the same
      baseline every other BENCH document's ``speedup`` is measured
      against.  Its per-iteration snapshots cost O(memory) per
      iteration, which is exactly what the paper's O(accesses) shadow
      structures avoid.  The reference executes iterations
      independently, so it is only meaningful on loops that really are
      independent -- conflict workloads skip it;
    * ``inorder_wall_s`` -- bare
      :func:`~repro.runtime.backends.speculative.sequential_execute`:
      no tracing, no snapshots, the floor cost of just running the loop
      in order;
    * ``speculative_wall_s`` -- the full optimistic pipeline: marked
      parallel run, LRPD validation, commit (or rollback plus in-order
      re-execution).

    ``gap.win_fraction`` counts workloads where speculation commits and
    beats the reference baseline.  ``conflict.max_loss`` is the
    misspeculation penalty measured against the *stricter* in-order
    wall (``speculative_wall_s / inorder_wall_s``) -- a rollback hidden
    behind the reference's snapshot cost would be a meaningless number.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1 (got {repeat})")
    from time import perf_counter

    from ..runtime.backends import get_backend
    from ..runtime.backends.speculative import sequential_execute

    engine = engine or Engine(EngineConfig(use_disk_cache=False))
    reference = get_backend("sequential")
    backend = get_backend("speculative")

    def best_of(fn):
        wall = None
        out = None
        for _ in range(repeat):
            start = perf_counter()
            result = fn()
            elapsed = perf_counter() - start
            if wall is None or elapsed < wall:
                wall = elapsed
                out = result
        return wall, out

    equivalence_ok = True
    sections: dict = {}
    for section, workloads, expect_commit in (
        ("gap", _speculation_gap(trips, inner, cells), True),
        ("conflict", _speculation_conflict(48, 800), False),
    ):
        docs = []
        for workload in workloads:
            compiled = engine.compile(workload.source)
            task = compiled.executor(
                workload.loop, backend="speculative"
            ).capture_task(workload.params, workload.arrays())
            inorder_wall, (inorder_arrays, _scalars) = best_of(
                lambda: sequential_execute(task)
            )
            spec_wall, run = best_of(
                lambda: backend.execute(task, jobs=jobs)
            )
            outcome = run.speculation
            correct = (
                run.arrays == inorder_arrays
                and outcome["committed"] == expect_commit
            )
            entry = {
                "committed": outcome["committed"],
                "description": workload.description,
                "inorder_wall_s": round(inorder_wall, 6),
                "name": workload.name,
                "rollbacks": outcome["rollbacks"],
                "speculative_wall_s": round(spec_wall, 6),
                "traced_accesses": outcome["traced_accesses"],
                "trips": len(task.iterations),
            }
            if section == "gap":
                # the reference backend only means anything on a loop
                # whose iterations really are independent -- i.e. the
                # commit-expected section
                ref_wall, ref_run = best_of(
                    lambda: reference.execute(task, jobs=jobs)
                )
                correct = correct and ref_run.arrays == inorder_arrays
                entry["sequential_wall_s"] = round(ref_wall, 6)
                entry["speedup"] = (
                    round(ref_wall / spec_wall, 3) if spec_wall > 0 else None
                )
            else:
                entry["loss"] = (
                    round(spec_wall / inorder_wall, 3)
                    if inorder_wall > 0
                    else None
                )
            entry["correct"] = correct
            equivalence_ok = equivalence_ok and correct
            docs.append(entry)
        sections[section] = docs
    wins = [
        w for w in sections["gap"]
        if w["committed"] and w["speedup"] is not None and w["speedup"] > 1.0
    ]
    losses = [
        w["loss"] for w in sections["conflict"] if w["loss"] is not None
    ]
    return {
        "conflict": {
            "max_loss": round(max(losses), 3) if losses else None,
            "workloads": sections["conflict"],
        },
        "equivalence_ok": equivalence_ok,
        "gap": {
            "win_fraction": round(len(wins) / len(sections["gap"]), 3),
            "workloads": sections["gap"],
        },
        "jobs": jobs,
        "repeat": repeat,
        "suite": "speculation",
        "version": BENCH_VERSION,
    }


def format_speculation_bench(doc: dict) -> str:
    """Human-readable summary of one speculation bench document."""
    lines = [
        f"suite speculation: jobs={doc['jobs']} repeat={doc['repeat']}"
    ]
    header = (
        f"{'workload':<16} {'outcome':<9} {'ref_s':>10} {'inorder_s':>10} "
        f"{'spec_s':>10} {'ratio':>7} {'ok':>3}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for section, key in (("gap", "speedup"), ("conflict", "loss")):
        for entry in doc[section]["workloads"]:
            ratio = entry[key]
            outcome = "commit" if entry["committed"] else "rollback"
            ref = entry.get("sequential_wall_s")
            lines.append(
                f"{entry['name']:<16} {outcome:<9} "
                f"{'-' if ref is None else f'{ref:.6f}':>10} "
                f"{entry['inorder_wall_s']:>10.6f} "
                f"{entry['speculative_wall_s']:>10.6f} "
                f"{'-' if ratio is None else f'{ratio:.3f}':>7} "
                f"{'yes' if entry['correct'] else 'NO':>3}"
            )
    lines.append(
        f"gap win fraction: {doc['gap']['win_fraction']:.3f}  "
        f"conflict max loss: {doc['conflict']['max_loss']}"
    )
    lines.append(
        "equivalence: " + ("ok" if doc["equivalence_ok"] else "FAILED")
    )
    return "\n".join(lines)


# -- the compile suite --------------------------------------------------------
#
# Every other suite measures *execution*; this one measures the
# analyzer's cold path -- what a request pays the first time a program
# arrives, before any cache has seen it.  Two corpora are timed, each
# once with Tier-0 screening on (the default) and once with
# ``tiering=False``:
#
# * ``fuzz`` -- the loadgen fuzz mix (the same seeded generator the
#   serving benchmark drives), analysis-shaped like real traffic;
# * ``workloads`` -- the curated ``core`` bench corpus.
#
# Every measurement is fully cold: all process-global memos
# (hash-consing, cascade, Fourier-Motzkin, reshape, ...) are dropped
# before each analysis.  Both modes are measured in alternating order
# within each repeat round so neither systematically benefits from
# interpreter warm-up, and the best of ``repeat`` rounds is kept per
# (item, mode).  The document also carries the equivalence evidence:
# per-item plan fingerprints (tier-provenance fields stripped) must be
# identical across modes -- screening may only short-circuit the
# analysis, never change its answer.

#: Tier-provenance fields of AnalyzeResponse (protocol v5); stripped
#: before the cross-mode plan comparison because they are *about* the
#: tiering knob rather than the analysis result.
_TIER_FIELDS = ("tier_used", "screening", "escalation_reason")


def _plan_fingerprint(plan) -> dict:
    from ..api.protocol import AnalyzeResponse

    doc = AnalyzeResponse.from_plan(plan, digest="bench").to_json()
    for name in _TIER_FIELDS:
        doc.pop(name, None)
    return doc


def _cold_analyze(source: str, loop: str, options: dict, tiering: bool):
    """One fully cold analysis: drop every process-global memo, then
    time ``HybridAnalyzer.analyze`` alone (parsing is outside the timer
    -- tiering cannot touch it)."""
    from time import perf_counter

    from ..core.analyzer import HybridAnalyzer
    from ..ir.parser import parse_program
    from ..symbolic.intern import clear_caches

    program = parse_program(source)
    analyzer = HybridAnalyzer(program, tiering=tiering, **options)
    clear_caches()
    start = perf_counter()
    plan = analyzer.analyze(loop)
    return perf_counter() - start, plan


def _quantile_ms(times: list, q: float) -> float:
    """Nearest-rank quantile of *times* (seconds), in milliseconds."""
    ordered = sorted(times)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return round(ordered[rank] * 1e3, 3)


def _compile_corpora(seed: int, programs: int) -> dict:
    """The two measured corpora as ``name -> (source, loop, options)``
    lists.  Imported lazily: loadgen imports this module for
    :data:`BENCH_SUITES`, so a top-level import would be a cycle."""
    from ..server.loadgen import build_mix

    fuzz = [
        (f"fuzz{i:02d}", item.source, item.loop, dict(item.options))
        for i, item in enumerate(
            build_mix(seed=seed, programs=programs, include_workloads=False)
        )
    ]
    workloads = [
        (w.name, w.source, w.loop, {}) for w in BENCH_SUITES["core"]()
    ]
    return {"fuzz": fuzz, "workloads": workloads}


def run_compile_bench(
    seed: int = 0,
    programs: int = 16,
    repeat: int = 3,
) -> dict:
    """Measure cold analyze latency, tiered vs ``tiering=off``
    (``repro-eval bench --suite compile``).

    Returns the ``BENCH_compile.json`` document: per-corpus p50/p99 for
    both modes, the Tier-0 resolution fraction, and the cross-mode
    divergence count (which must be 0 -- ``equivalence_ok`` carries it
    to the exit code exactly like the execution suites).
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1 (got {repeat})")
    if programs < 1:
        raise ValueError(f"programs must be >= 1 (got {programs})")
    divergences = 0
    sections: dict = {}
    for section, items in _compile_corpora(seed, programs).items():
        entries = []
        tiered_times = []
        baseline_times = []
        tier0 = 0
        for name, source, loop, options in items:
            best: dict = {True: None, False: None}
            plans: dict = {True: None, False: None}
            for round_index in range(repeat):
                # alternate which mode goes first so interpreter/branch
                # warm-up noise cannot systematically favour one mode
                modes = (True, False) if round_index % 2 == 0 else (False, True)
                for tiering in modes:
                    wall, plan = _cold_analyze(source, loop, options, tiering)
                    plans[tiering] = plan
                    if best[tiering] is None or wall < best[tiering]:
                        best[tiering] = wall
            divergent = (
                _plan_fingerprint(plans[True])
                != _plan_fingerprint(plans[False])
            )
            divergences += divergent
            tiered_times.append(best[True])
            baseline_times.append(best[False])
            tier0 += plans[True].tier_used == "tier0"
            entries.append({
                "baseline_ms": round(best[False] * 1e3, 3),
                "divergent": divergent,
                "escalation_reason": plans[True].escalation_reason,
                "name": name,
                "screening": plans[True].screening,
                "speedup": (
                    round(best[False] / best[True], 3)
                    if best[True] > 0 else None
                ),
                "tier_used": plans[True].tier_used,
                "tiered_ms": round(best[True] * 1e3, 3),
            })
        tiered_p50 = _quantile_ms(tiered_times, 0.50)
        baseline_p50 = _quantile_ms(baseline_times, 0.50)
        tiered_p99 = _quantile_ms(tiered_times, 0.99)
        baseline_p99 = _quantile_ms(baseline_times, 0.99)
        sections[section] = {
            "baseline": {"p50_ms": baseline_p50, "p99_ms": baseline_p99},
            "items": entries,
            "speedup_p50": (
                round(baseline_p50 / tiered_p50, 3) if tiered_p50 > 0 else None
            ),
            "speedup_p99": (
                round(baseline_p99 / tiered_p99, 3) if tiered_p99 > 0 else None
            ),
            "tier0_fraction": round(tier0 / len(items), 3),
            "tiered": {"p50_ms": tiered_p50, "p99_ms": tiered_p99},
        }
    return {
        "divergences": divergences,
        "equivalence_ok": divergences == 0,
        "programs": programs,
        "repeat": repeat,
        "sections": sections,
        "seed": seed,
        "suite": "compile",
        "version": BENCH_VERSION,
    }


def format_compile_bench(doc: dict) -> str:
    """Human-readable summary of one compile bench document."""
    lines = [
        f"suite compile: seed={doc['seed']} programs={doc['programs']} "
        f"repeat={doc['repeat']}"
    ]
    header = (
        f"{'item':<14} {'tier':<6} {'screening':<10} "
        f"{'tiered_ms':>10} {'base_ms':>10} {'speedup':>8} {'ok':>3}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for section, body in sorted(doc["sections"].items()):
        for entry in body["items"]:
            speedup = entry["speedup"]
            lines.append(
                f"{entry['name']:<14} {entry['tier_used']:<6} "
                f"{entry['screening']:<10} {entry['tiered_ms']:>10.3f} "
                f"{entry['baseline_ms']:>10.3f} "
                f"{'-' if speedup is None else f'{speedup:.3f}':>8} "
                f"{'NO' if entry['divergent'] else 'yes':>3}"
            )
        lines.append(
            f"[{section}] tier0 {body['tier0_fraction']:.0%}  "
            f"p50 {body['tiered']['p50_ms']:.3f}ms vs "
            f"{body['baseline']['p50_ms']:.3f}ms "
            f"({body['speedup_p50']}x)  "
            f"p99 {body['tiered']['p99_ms']:.3f}ms vs "
            f"{body['baseline']['p99_ms']:.3f}ms "
            f"({body['speedup_p99']}x)"
        )
    lines.append(
        "equivalence: "
        + ("ok" if doc["equivalence_ok"]
           else f"FAILED ({doc['divergences']} divergent)")
    )
    return "\n".join(lines)


def run_bench(
    suite: str = "core",
    backends: Optional[list] = None,
    jobs: int = 4,
    chunk: Optional[dict] = None,
    repeat: int = 3,
    engine: Optional[Engine] = None,
) -> dict:
    """Measure every workload of *suite* on every backend.

    Returns the BENCH document (see the module docstring for the schema
    contract).  Per (workload, backend) the *best* of ``repeat`` runs is
    recorded -- the usual defence against scheduler noise.
    """
    make = BENCH_SUITES.get(suite)
    if make is None:
        raise KeyError(
            f"unknown bench suite {suite!r}; valid: {sorted(BENCH_SUITES)}"
        )
    if backends is None:
        backends = available_backends()
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise KeyError(
            f"unknown backend(s) {unknown}; valid: {list(BACKENDS)}"
        )
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1 (got {repeat})")
    chunk_spec = ChunkSpec.from_json(chunk)
    engine = engine or Engine(EngineConfig(use_disk_cache=False))
    workload_docs = []
    wins = []
    equivalence_ok = True
    for workload in make():
        compiled = engine.compile(workload.source)
        results: dict = {}
        sequential_wall = None
        last_report = None
        for backend in backends:
            best = None
            all_correct = True
            for _ in range(repeat):
                report = compiled.execute(
                    workload.loop,
                    workload.params,
                    workload.arrays(),
                    backend=backend,
                    jobs=jobs,
                    chunk=chunk_spec.to_json(),
                )
                # every repeat run must match the interpreter -- an
                # intermittent divergence in a non-best run is still a
                # divergence
                all_correct = all_correct and report.correct
                if best is None or report.wall_s < best.wall_s:
                    best = report
            equivalence_ok = equivalence_ok and all_correct
            last_report = best
            results[backend] = {
                "backend_used": best.backend_used,
                "chunks": best.chunks,
                "correct": all_correct,
                "jobs": best.jobs,
                "parallel": best.parallel,
                "wall_s": round(best.wall_s, 6),
            }
            if backend == "sequential":
                sequential_wall = best.wall_s
        for backend, entry in results.items():
            if sequential_wall and entry["wall_s"] > 0:
                speedup = round(sequential_wall / entry["wall_s"], 3)
            else:
                # no sequential baseline in this run: never fabricate a
                # number into the trajectory document
                speedup = None
            entry["speedup"] = speedup
            if (
                backend != "sequential"
                and speedup is not None
                and entry["backend_used"] == backend
                and entry["parallel"]
                and speedup > 1.0
            ):
                wins.append(
                    {"backend": backend, "speedup": speedup,
                     "workload": workload.name}
                )
        # seq_work/trips come from the ground-truth capture every report
        # already carries -- no extra execution needed
        workload_docs.append(
            {
                "description": workload.description,
                "loop": workload.loop,
                "name": workload.name,
                "results": results,
                "seq_work": last_report.seq_work,
                "trips": len(last_report.iteration_costs),
            }
        )
    wins.sort(key=lambda w: (w["workload"], w["backend"]))
    return {
        "backends": list(backends),
        "chunk": chunk_spec.to_json(),
        "equivalence_ok": equivalence_ok,
        "jobs": jobs,
        "parallel_wins": wins,
        "repeat": repeat,
        "suite": suite,
        "version": BENCH_VERSION,
        "workloads": workload_docs,
    }


def bench_path(suite: str, directory: str = ".") -> Path:
    return Path(directory) / f"BENCH_{suite}.json"


def write_bench(doc: dict, directory: str = ".") -> Path:
    """Serialize *doc* to its trajectory file in canonical form."""
    path = bench_path(doc["suite"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(doc) + "\n")
    return path


def format_bench(doc: dict) -> str:
    """Human-readable summary of one bench document."""
    lines = []
    header = (
        f"{'workload':<12} {'backend':<11} {'used':<11} "
        f"{'wall_s':>10} {'speedup':>8} {'chunks':>6} {'ok':>3}"
    )
    lines.append(
        f"suite {doc['suite']}: jobs={doc['jobs']} "
        f"chunk={doc['chunk']['policy']} repeat={doc['repeat']}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload in doc["workloads"]:
        for backend in doc["backends"]:
            entry = workload["results"][backend]
            speedup = entry["speedup"]
            speedup_text = "-" if speedup is None else f"{speedup:.3f}"
            lines.append(
                f"{workload['name']:<12} {backend:<11} "
                f"{entry['backend_used']:<11} {entry['wall_s']:>10.6f} "
                f"{speedup_text:>8} {entry['chunks']:>6} "
                f"{'yes' if entry['correct'] else 'NO':>3}"
            )
    if doc["parallel_wins"]:
        best = max(doc["parallel_wins"], key=lambda w: w["speedup"])
        lines.append(
            f"{len(doc['parallel_wins'])} parallel win(s); best: "
            f"{best['backend']} {best['speedup']:.3f}x on {best['workload']}"
        )
    else:
        lines.append("no parallel backend beat sequential on this host")
    lines.append(
        "equivalence: " + ("ok" if doc["equivalence_ok"] else "FAILED")
    )
    return "\n".join(lines)
