"""Parallel batch analysis of the whole benchmark suite (``repro-eval batch``).

The evaluation harness analyzes and executes all 26 benchmark models.
Doing that one benchmark at a time, from scratch, on every invocation is
the slowest part of the development loop, so this driver adds the two
missing scaling layers on top of the hash-consed analysis core:

* **Concurrency** -- benchmarks are independent, so they are dispatched
  to the engine's shared worker pool (:meth:`repro.api.Engine.map_items`).
  The analysis memo tables (:mod:`repro.symbolic.intern`) are plain
  dicts guarded by the GIL: concurrent workers share warm caches and at
  worst recompute a value, never corrupt one.
* **A persistent on-disk result cache** -- each benchmark's measured
  outcome is summarized into a JSON document stored under a key that
  hashes the benchmark's *program text* together with the system, scale
  and cache-format version.  Editing a benchmark program (or bumping
  :data:`CACHE_VERSION`) changes the key, so stale entries can never be
  served; re-running an unchanged suite is pure disk I/O.

Usage::

    python -m repro.evaluation batch                 # everything, cached
    python -m repro.evaluation batch --suite perfect # one suite
    python -m repro.evaluation batch --no-cache      # force recompute
    python -m repro.evaluation batch --clear-cache   # drop the disk cache
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from ..api import default_engine
from ..api.cache import (  # re-exported for backward compatibility
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    JsonDiskCache,
    parallel_map,
)
from ..workloads import ALL_BENCHMARKS, BenchmarkSpec
from .model import measure_benchmark
from .tables import _SUITE_PROCS

__all__ = [
    "CACHE_VERSION",
    "LoopResult",
    "BenchmarkResult",
    "BatchReport",
    "JsonDiskCache",
    "BatchCache",
    "parallel_map",
    "analyze_benchmark",
    "run_batch",
    "format_batch",
]



@dataclass(frozen=True)
class LoopResult:
    """Cached summary of one measured loop."""

    label: str
    classification: str
    techniques: list
    parallel: bool
    correct: bool
    runtime_label: str
    speedup: float


@dataclass
class BenchmarkResult:
    """Cached summary of one benchmark under one system/scale."""

    name: str
    suite: str
    system: str
    scale: int
    norm_time: float
    rtov: float
    procs: int
    elapsed_s: float
    loops: list = field(default_factory=list)
    #: True when this result was served from the persistent cache.
    cached: bool = False

    @classmethod
    def from_json(cls, payload: dict) -> "BenchmarkResult":
        loops = [LoopResult(**l) for l in payload.pop("loops", [])]
        payload.pop("cached", None)
        return cls(loops=loops, cached=True, **payload)

    def to_json(self) -> dict:
        out = asdict(self)
        out.pop("cached", None)
        return out


@dataclass
class BatchReport:
    """Outcome of one batch run."""

    results: list = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if not r.cached)


class BatchCache(JsonDiskCache):
    """Persistent per-benchmark result cache, keyed on the spec's inputs.

    The key digests every *data* input of the measurement: benchmark
    name, **program source text**, the per-loop metadata rows (labels,
    coverage, granularity), the suite-level coverage figures, system,
    dataset scale and the cache-format version.  A change to any of them
    -- most importantly an edit to the benchmark program or its loop
    table -- yields a different file name, so a stale entry is
    unreachable rather than merely suspect.  Changes to the *analysis
    code itself* are not hashable; bump :data:`CACHE_VERSION` (or run
    ``--no-cache`` / ``--clear-cache``) when measurement semantics
    change.
    """

    def key(self, spec: BenchmarkSpec, system: str, scale: int) -> str:
        digest = hashlib.sha256()
        digest.update(f"v{CACHE_VERSION}\0{spec.name}\0{system}\0{scale}\0".encode())
        digest.update(spec.source.encode())
        digest.update(f"\0sc={spec.sc}\0scrt={spec.scrt}\0".encode())
        for loop in spec.loops:
            digest.update(
                f"\0{loop.label}\0{loop.lsc}\0{loop.gr_ms}\0"
                f"{loop.paper_class}\0{loop.paper_parallel}".encode()
            )
        return f"{spec.name}-{system}-s{scale}-{digest.hexdigest()[:16]}"

    def load(self, spec: BenchmarkSpec, system: str, scale: int) -> Optional[BenchmarkResult]:
        payload = self.load_json(self.key(spec, system, scale))
        if payload is None:
            return None
        try:
            return BenchmarkResult.from_json(payload)
        except TypeError:
            return None  # unreadable/foreign schema: treat as a miss

    def store(self, spec: BenchmarkSpec, system: str, scale: int, result: BenchmarkResult) -> None:
        self.store_json(self.key(spec, system, scale), result.to_json())


def analyze_benchmark(
    spec: BenchmarkSpec,
    system: str = "hybrid",
    scale: int = 1,
    cache: Optional[BatchCache] = None,
) -> BenchmarkResult:
    """Measure one benchmark, consulting/feeding the persistent cache."""
    if cache is not None:
        hit = cache.load(spec, system, scale)
        if hit is not None:
            return hit
    procs = _SUITE_PROCS.get(spec.suite, 4)
    started = time.perf_counter()
    measurement = measure_benchmark(spec, system=system, scale=scale)
    elapsed = time.perf_counter() - started
    loops = []
    for label, loop in measurement.loops.items():
        loops.append(
            LoopResult(
                label=label,
                classification=loop.plan.classification() if loop.plan else "?",
                techniques=loop.plan.techniques() if loop.plan else [],
                parallel=loop.parallel,
                correct=loop.correct,
                runtime_label=loop.runtime_label,
                speedup=round(loop.speedup(procs), 4),
            )
        )
    result = BenchmarkResult(
        name=spec.name,
        suite=spec.suite,
        system=system,
        scale=scale,
        norm_time=round(measurement.norm_time(procs), 4),
        rtov=round(measurement.rtov(procs), 4),
        procs=procs,
        elapsed_s=round(elapsed, 4),
        loops=loops,
    )
    if cache is not None:
        cache.store(spec, system, scale, result)
    return result


def _select(suites: Optional[Iterable[str]], names: Optional[Iterable[str]]) -> list:
    wanted = list(ALL_BENCHMARKS)
    if suites:
        suites = set(suites)
        wanted = [b for b in wanted if b.suite in suites]
    if names:
        names = set(names)
        unknown = names - {b.name for b in ALL_BENCHMARKS}
        if unknown:
            known = ", ".join(sorted(b.name for b in ALL_BENCHMARKS))
            raise KeyError(
                f"unknown benchmark(s) {sorted(unknown)}; choose from: {known}"
            )
        wanted = [b for b in wanted if b.name in names]
    if not wanted and (suites or names):
        raise KeyError("the --suite/--benchmark filters select no benchmarks")
    return wanted


def run_batch(
    suites: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    system: str = "hybrid",
    scale: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[BatchCache] = None,
    use_cache: bool = True,
) -> BatchReport:
    """Analyze every selected benchmark concurrently.

    *jobs* defaults to the CPU count.  With *use_cache* (the default) a
    :class:`BatchCache` is consulted per benchmark; pass an explicit
    *cache* to control its location, or ``use_cache=False`` to force a
    full recomputation without touching the disk.
    """
    selected = _select(suites, names)
    if use_cache and cache is None:
        cache = BatchCache()
    elif not use_cache:
        cache = None
    started = time.perf_counter()
    report = BatchReport()
    report.results = default_engine().map_items(
        lambda spec: analyze_benchmark(spec, system, scale, cache),
        selected,
        jobs,
    )
    report.elapsed_s = time.perf_counter() - started
    return report


def _classification_rank(label: str) -> tuple:
    """Order classifications by runtime expense (worst = most costly).

    Static outcomes rank lowest, runtime-tested loops rank by their
    cheapest cascade stage's complexity (O(1) < O(N) < O(N^k)), and the
    exact-fallback family (EXACT/TLS/HOIST-USR) ranks highest.
    """
    if label.startswith(("EXACT", "TLS", "HOIST-USR")):
        return (3, 0, label)
    if label.startswith(("STATIC-PAR", "STATIC-SEQ", "CIVagg", "SRED")):
        return (0, 0, label)
    depth = 0
    if "O(N^" in label:
        try:
            depth = int(label.split("O(N^", 1)[1].split(")", 1)[0])
        except ValueError:
            depth = 2
    elif "O(N)" in label:
        depth = 1
    bounds = 1 if "BOUNDS-COMP" in label else 0
    return (1 + bounds, depth, label)


def format_batch(report: BatchReport) -> str:
    """Human-readable summary table of a batch run."""
    lines = []
    header = (
        f"{'benchmark':<12} {'suite':<9} {'class (worst loop)':<22} "
        f"{'norm':>7} {'rtov':>6} {'loops':>5} {'ok':>3} {'src':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in sorted(report.results, key=lambda r: (r.suite, r.name)):
        worst = max(
            (l.classification for l in r.loops),
            key=_classification_rank,
            default="-",
        )
        all_ok = all(l.correct for l in r.loops)
        lines.append(
            f"{r.name:<12} {r.suite:<9} {worst:<22} "
            f"{r.norm_time:>7.3f} {r.rtov:>6.3f} {len(r.loops):>5} "
            f"{'yes' if all_ok else 'NO':>3} {'cache' if r.cached else 'run':>6}"
        )
    lines.append(
        f"{len(report.results)} benchmarks in {report.elapsed_s:.2f}s "
        f"({report.cache_hits} cached, {report.cache_misses} analyzed)"
    )
    return "\n".join(lines)
