"""Public import point for the kernel profiler.

The implementation lives in :mod:`repro.profiling` (a dependency-free
leaf module) so the instrumented kernel layers can import it without
creating an import cycle through this package's harness modules; see
that module's docstring for the design.  Evaluation-side callers --
benchmarks, notebooks, tests -- should import from here::

    from repro.evaluation import profile
    with profile.profiling():
        engine.analyze(...)
    print(profile.snapshot().format())
"""

from ..profiling import (
    ProfileSnapshot,
    count,
    disable,
    enable,
    is_enabled,
    profiling,
    reset,
    snapshot,
    timed,
    timer,
)

__all__ = [
    "ProfileSnapshot",
    "count",
    "disable",
    "enable",
    "is_enabled",
    "profiling",
    "reset",
    "snapshot",
    "timed",
    "timer",
]
