"""Evaluation harness: regenerates Tables 1-3 and Figures 10-13."""

from .figures import FIGURES, FigureSeries, format_figure, generate_figure
from .model import (
    BenchmarkMeasurement,
    LoopMeasurement,
    measure_benchmark,
)
from .tables import (
    TableReport,
    TableRow,
    classification_compatible,
    format_table,
    generate_table,
)

__all__ = [
    "measure_benchmark", "BenchmarkMeasurement", "LoopMeasurement",
    "generate_table", "format_table", "TableReport", "TableRow",
    "classification_compatible",
    "generate_figure", "format_figure", "FigureSeries", "FIGURES",
]
