"""Evaluation harness: regenerates Tables 1-3 and Figures 10-13, and
batch-analyzes the whole suite concurrently (:mod:`.batch`)."""

from .batch import (
    BatchCache,
    BatchReport,
    BenchmarkResult,
    LoopResult,
    analyze_benchmark,
    format_batch,
    run_batch,
)
from .figures import FIGURES, FigureSeries, format_figure, generate_figure
from .model import (
    BenchmarkMeasurement,
    LoopMeasurement,
    measure_benchmark,
)
from .tables import (
    TableReport,
    TableRow,
    classification_compatible,
    format_table,
    generate_table,
)

__all__ = [
    "measure_benchmark", "BenchmarkMeasurement", "LoopMeasurement",
    "generate_table", "format_table", "TableReport", "TableRow",
    "classification_compatible",
    "generate_figure", "format_figure", "FigureSeries", "FIGURES",
    "run_batch", "analyze_benchmark", "format_batch",
    "BatchCache", "BatchReport", "BenchmarkResult", "LoopResult",
]
