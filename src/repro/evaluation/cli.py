"""Command-line entry point: regenerate any table or figure, batch-run
the whole suite, or differential-fuzz the pipeline.

Usage::

    repro-eval table1            # Table 1 (PERFECT-CLUB)
    repro-eval table2 table3     # Tables 2-3 (SPEC)
    repro-eval fig10 fig13       # figures
    repro-eval all               # everything
    repro-eval table1 --scale 2  # larger datasets

    repro-eval batch                     # all 26 benchmarks, in parallel
    repro-eval batch --suite perfect     # one suite only
    repro-eval batch --jobs 4 --no-cache # bounded workers, force re-run
    repro-eval batch --clear-cache       # drop the persistent cache

    repro-eval fuzz --seeds 500          # differential soundness fuzzing
    repro-eval fuzz --seeds 50 --jobs 2  # CI smoke configuration
    repro-eval fuzz --seeds 100 --shrink # minimize + store any failures
    repro-eval fuzz --seeds 100 --backend thread  # fuzz a real backend

    repro-eval bench --suite core                  # BENCH_core.json
    repro-eval bench --suite smoke --backends sequential,thread --jobs 2
    repro-eval bench --suite speculation           # BENCH_speculation.json

    repro-eval analyze prog.loop --loop L1         # human-readable plan
    repro-eval analyze prog.loop --loop L1 --json  # AnalyzeResponse JSON
    cat prog.loop | repro-eval analyze - --loop L1 # source on stdin

    repro-eval serve --port 7070 --workers 4       # network serving
    repro-eval serve --port 7070 --adaptive-admission  # AIMD budget
    repro-eval loadgen --port 7070 --clients 8 --requests 200
    repro-eval loadgen --bench                     # BENCH_serving.json

    repro-eval top --port 7070                     # live dashboard
    repro-eval top --port 7070 --once              # one frame, no ANSI

    repro-eval serve --port 7070 --trace-sample 0.05  # sampled tracing
    repro-eval loadgen --port 7070 --trace         # force-sample all
    repro-eval trace --port 7070                   # recent traces
    repro-eval trace <trace-id> --port 7070        # one waterfall

(``python -m repro.evaluation ...`` is equivalent to ``repro-eval ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .batch import BatchCache, format_batch, run_batch
from .figures import FIGURES, format_figure, generate_figure
from .tables import format_table, generate_table

__all__ = ["main"]

_TABLES = {"table1": "perfect", "table2": "spec92", "table3": "spec2000"}
_SUITES = ("perfect", "spec92", "spec2000")


def _batch_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval batch",
        description="Analyze all benchmarks concurrently with a persistent "
        "on-disk result cache.",
    )
    parser.add_argument(
        "--suite", action="append", choices=_SUITES,
        help="restrict to one suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--benchmark", action="append", metavar="NAME",
        help="restrict to named benchmarks (repeatable)",
    )
    parser.add_argument(
        "--system", choices=("hybrid", "baseline"), default="hybrid",
        help="which system to measure (default: hybrid)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent cache entirely",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete the persistent cache and exit",
    )
    args = parser.parse_args(argv)

    cache = BatchCache(args.cache_dir)
    if args.clear_cache:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    try:
        report = run_batch(
            suites=args.suite,
            names=args.benchmark,
            system=args.system,
            scale=args.scale,
            jobs=args.jobs,
            cache=None if args.no_cache else cache,
            use_cache=not args.no_cache,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    print(format_batch(report))
    return 0 if all(l.correct for r in report.results for l in r.loops) else 1


def _analyze_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval analyze",
        description="Analyze one labelled loop of an IR program through "
        "the repro.api engine and print the plan (or, with --json, the "
        "machine-readable AnalyzeResponse document).",
    )
    parser.add_argument(
        "file", help="IR source file ('-' reads standard input)"
    )
    parser.add_argument(
        "--loop", required=True, metavar="LABEL",
        help="label of the loop to analyze",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the AnalyzeResponse as a stable JSON document",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent analyze-response cache",
    )
    args = parser.parse_args(argv)

    from ..api import AnalyzeRequest, Engine, EngineConfig

    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            source = Path(args.file).read_text()
        except OSError as exc:
            parser.error(f"cannot read {args.file}: {exc}")
    engine = Engine(
        EngineConfig(cache_dir=args.cache_dir, use_disk_cache=not args.no_cache)
    )
    try:
        response = engine.analyze(AnalyzeRequest(source=source, loop=args.loop))
    except (KeyError, ValueError, SyntaxError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    if args.json:
        print(response.canonical_text())
        return 0
    print(f"loop:           {response.loop}")
    print(f"classification: {response.classification}")
    print(f"techniques:     {', '.join(response.techniques) or '-'}")
    print(f"static par:     {response.static_parallel}")
    print(f"runtime tested: {response.runtime_tested}")
    print(f"exact fallback: {response.needs_exact_fallback}")
    if response.civs:
        print(f"CIVs:           {', '.join(response.civs)}")
    for aplan in response.arrays:
        print(f"  {aplan.array:8s} -> {aplan.transform}")
        for kind in ("flow", "output", "slv", "rred"):
            stages = getattr(aplan, kind)
            if stages is not None:
                print(f"           {kind} cascade: {', '.join(stages)}")
    return 0


def _fuzz_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval fuzz",
        description="Differential fuzzing: generate random loop programs "
        "and cross-check analyzer, trace oracle and executor; non-zero "
        "exit on any soundness violation or crash.",
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to run (default: 100)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed (default: 0); seed S is deterministic forever",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent per-seed verdict cache",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="delta-debug each failure and write the minimized repro "
        "into the regression corpus",
    )
    parser.add_argument(
        "--corpus-dir", default=None,
        help="corpus directory for --shrink "
        "(default: tests/regression/corpus)",
    )
    parser.add_argument(
        "--backend", default="sequential",
        help="execution backend for the oracle's execution view "
        "(default: sequential)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    from ..runtime.backends import BACKENDS

    if args.backend not in BACKENDS:
        parser.error(
            f"unknown backend {args.backend!r}; valid: {list(BACKENDS)}"
        )

    from ..fuzz import (
        FuzzCache,
        format_fuzz_report,
        generate_case,
        run_fuzz,
        shrink_case,
        write_corpus_case,
    )
    from ..fuzz.shrink import corpus_dir

    cache = None if args.no_cache else FuzzCache(args.cache_dir)
    report = run_fuzz(
        seeds=args.seeds,
        seed_start=args.seed_start,
        jobs=args.jobs,
        cache=cache,
        backend=args.backend,
    )
    print(format_fuzz_report(report))
    if args.shrink and report.failures:
        directory = corpus_dir(args.corpus_dir)
        for failure in report.failures:
            shrunk = shrink_case(generate_case(failure.seed))
            path = write_corpus_case(shrunk, directory)
            print(f"seed {failure.seed}: minimized repro -> {path}")
    return 0 if report.ok else 1


def _bench_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench",
        description="Measure real wall-clock execution of the benchmark "
        "workloads on every execution backend and write a schema-stable "
        "BENCH_<suite>.json trajectory file; non-zero exit on any "
        "backend/interpreter divergence.",
    )
    from .bench import (
        BENCH_SUITES,
        format_bench,
        format_compile_bench,
        format_speculation_bench,
        run_bench,
        run_compile_bench,
        run_speculation_bench,
        write_bench,
    )
    from ..runtime.backends import BACKENDS, available_backends

    parser.add_argument(
        "--suite", choices=sorted([*BENCH_SUITES, "compile", "speculation"]),
        default="core",
        help="workload suite to measure (default: core); 'speculation' "
        "races the speculative backend against the in-order baseline "
        "and ignores --backends/--chunk; 'compile' measures cold "
        "analyze latency tiered vs tiering=off and ignores "
        "--backends/--chunk/--jobs",
    )
    parser.add_argument(
        "--backends", default=None, metavar="CSV",
        help="comma-separated backend list "
        f"(default: all available of {list(BACKENDS)})",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel backends (default: 4)",
    )
    parser.add_argument(
        "--chunk", choices=("static", "dynamic"), default="static",
        help="chunk-scheduler policy (default: static)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="explicit chunk size (default: derived from --jobs)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="runs per (workload, backend); best is kept (default: 3)",
    )
    parser.add_argument(
        "--programs", type=int, default=16,
        help="fuzz-mix size for --suite compile (default: 16; ignored "
        "by the execution suites)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fuzz-mix seed for --suite compile (default: 0; ignored "
        "by the execution suites)",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_<suite>.json (default: current dir)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.programs < 1:
        parser.error("--programs must be >= 1")
    if args.chunk_size is not None and args.chunk_size < 1:
        parser.error("--chunk-size must be >= 1")
    backends = (
        [b.strip() for b in args.backends.split(",") if b.strip()]
        if args.backends
        else available_backends()
    )
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        parser.error(f"unknown backend(s) {unknown}; valid: {list(BACKENDS)}")
    # Only argument validation routes to parser.error; a failure inside
    # the run itself must surface as the real traceback, not a usage
    # message.
    if args.suite == "compile":
        doc = run_compile_bench(
            seed=args.seed, programs=args.programs, repeat=args.repeat
        )
        path = write_bench(doc, args.out)
        print(format_compile_bench(doc))
        print(f"wrote {path}")
        return 0 if doc["equivalence_ok"] else 1
    if args.suite == "speculation":
        doc = run_speculation_bench(jobs=args.jobs, repeat=args.repeat)
        path = write_bench(doc, args.out)
        print(format_speculation_bench(doc))
        print(f"wrote {path}")
        return 0 if doc["equivalence_ok"] else 1
    doc = run_bench(
        suite=args.suite,
        backends=backends,
        jobs=args.jobs,
        chunk={"policy": args.chunk, "size": args.chunk_size},
        repeat=args.repeat,
    )
    path = write_bench(doc, args.out)
    print(format_bench(doc))
    print(f"wrote {path}")
    return 0 if doc["equivalence_ok"] else 1


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval serve",
        description="Serve the analyze/execute protocol over TCP "
        "(JSON lines: one request per line, one response per line, "
        "responses in request order per connection).  SIGINT/SIGTERM "
        "triggers a graceful shutdown that drains in-flight requests.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=7070,
        help="TCP port (default: 7070; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--topology", choices=("threads", "multiproc"), default="threads",
        help="serving topology: one process with a sharded thread pool, "
        "or a front-tier proxy over supervised backend processes "
        "(default: threads)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="engine pool width (default: 4; threads topology only)",
    )
    parser.add_argument(
        "--sharding", choices=("digest", "shared"), default="digest",
        help="pool discipline: per-worker engines routed by source "
        "digest, or one shared engine round-robin (default: digest)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None,
        help="bounded per-worker queue depth (default: 128; threads "
        "topology only)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="global in-flight request budget; beyond it requests are "
        "shed with a retryable 'overloaded' error (default: 256; "
        "threads topology only)",
    )
    parser.add_argument(
        "--backends", type=int, default=4,
        help="multiproc topology: backend processes to supervise "
        "(default: 4)",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="multiproc topology: replica fan-out width for hot "
        "digests (default: 2)",
    )
    parser.add_argument(
        "--backend-workers", type=int, default=2,
        help="multiproc topology: engine pool width per backend "
        "(default: 2)",
    )
    parser.add_argument(
        "--hot-rps", type=float, default=32.0,
        help="multiproc topology: per-digest request rate beyond which "
        "a shard counts as hot and fans out (default: 32)",
    )
    parser.add_argument(
        "--adaptive-admission", action="store_true",
        help="drive the in-flight budget with an AIMD controller: "
        "sustained worker-queue saturation shrinks it, drained queues "
        "grow it back (threads topology only; --max-inflight sets the "
        "base budget)",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="P",
        help="head-sample this fraction of requests for guaranteed "
        "trace retention with compile-phase attribution (default: 0; "
        "errors and the slow tail are always kept regardless)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent analyze-response cache",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.topology == "multiproc":
        if args.queue_depth is not None or args.max_inflight is not None:
            parser.error(
                "--queue-depth/--max-inflight configure the threads "
                "topology; backends use their own defaults"
            )
        if args.adaptive_admission:
            parser.error(
                "--adaptive-admission configures the threads topology "
                "(the front tier does not shed; its backends do)"
            )
        if args.backends < 1:
            parser.error("--backends must be >= 1")
        if args.replicas < 1:
            parser.error("--replicas must be >= 1")
        if args.backend_workers < 1:
            parser.error("--backend-workers must be >= 1")
        if args.hot_rps <= 0:
            parser.error("--hot-rps must be > 0")
    queue_depth = args.queue_depth if args.queue_depth is not None else 128
    max_inflight = args.max_inflight if args.max_inflight is not None else 256
    if queue_depth < 1:
        parser.error("--queue-depth must be >= 1")
    if max_inflight < 1:
        parser.error("--max-inflight must be >= 1")
    if not 0.0 <= args.trace_sample <= 1.0:
        parser.error("--trace-sample must be within [0, 1]")

    import asyncio
    import signal

    from ..api import EngineConfig
    from ..server import FrontTier, ReproServer

    if args.topology == "multiproc":
        server = FrontTier(
            host=args.host,
            port=args.port,
            backends=args.backends,
            replicas=args.replicas,
            backend_workers=args.backend_workers,
            sharding=args.sharding,
            cache_dir=args.cache_dir,
            use_disk_cache=not args.no_cache,
            hot_rps=args.hot_rps,
            trace_sample=args.trace_sample,
        )
        banner = (
            f"topology=multiproc, backends={args.backends}, "
            f"replicas={args.replicas}, backend_workers={args.backend_workers}"
        )
    else:
        server = ReproServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            sharding=args.sharding,
            queue_depth=queue_depth,
            max_inflight=max_inflight,
            adaptive_admission=args.adaptive_admission,
            trace_sample=args.trace_sample,
            engine_config=EngineConfig(
                cache_dir=args.cache_dir, use_disk_cache=not args.no_cache
            ),
        )
        banner = (
            f"workers={args.workers}, sharding={args.sharding}"
            + (", adaptive admission" if args.adaptive_admission else "")
        )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()

        def _request_stop() -> None:
            asyncio.ensure_future(server.stop())

        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, _request_stop)
        except NotImplementedError:
            pass  # non-Unix event loop: rely on KeyboardInterrupt
        print(
            f"repro-serve: listening on {server.host}:{server.port} "
            f"({banner})",
            flush=True,
        )
        await server.serve_forever()
        snapshot = server.metrics.snapshot()
        if args.topology == "multiproc":
            tail = (
                f"(backend_deaths={snapshot['backend_died']}, "
                f"rerouted={snapshot['rerouted']}, "
                f"p95={snapshot['latency']['p95_s']}s)"
            )
        else:
            tail = (
                f"(shed={snapshot['shed']}, "
                f"p95={snapshot['latency']['p95_s']}s)"
            )
        print(
            f"repro-serve: shut down cleanly after "
            f"{snapshot['completed']} request(s) {tail}",
            flush=True,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _top_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval top",
        description="Live terminal dashboard over a running repro-eval "
        "server (either topology): subscribes to the protocol v6 "
        "metrics stream and renders request/shed/reroute rates, queue "
        "depths and window latency per frame.  Ctrl-C unsubscribes "
        "cleanly.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="server host (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=7070,
        help="server port (default: 7070)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="frame interval (default: 1.0; the server clamps)",
    )
    parser.add_argument(
        "--frames", type=int, default=0,
        help="stop after N frames (default: 0 = run until Ctrl-C)",
    )
    parser.add_argument(
        "--history", type=int, default=32,
        help="ring samples to request on the first frame (default: 32)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print exactly one frame without terminal control codes "
        "and exit (headless/CI mode)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    if args.frames < 0:
        parser.error("--frames must be >= 0")
    if args.history < 0:
        parser.error("--history must be >= 0")

    from ..server import run_top

    return run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        frames=args.frames,
        once=args.once,
        history=args.history,
    )


def _trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval trace",
        description="Fetch stored request traces from a running "
        "repro-eval server (either topology) and render them: a "
        "waterfall for one trace id, or a newest-first table of the "
        "kept traces.  Plain text, no terminal control codes.",
    )
    parser.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to render as a waterfall (default: list the "
        "most recent kept traces)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="server host (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=7070,
        help="server port (default: 7070)",
    )
    parser.add_argument(
        "--limit", type=int, default=10,
        help="how many recent traces to list (default: 10)",
    )
    parser.add_argument(
        "--status", choices=("ok", "error"), default=None,
        help="restrict the listing to one final status",
    )
    parser.add_argument(
        "--waterfall", action="store_true",
        help="expand every listed trace as a waterfall, not just the "
        "summary table",
    )
    args = parser.parse_args(argv)
    if args.limit < 1:
        parser.error("--limit must be >= 1")

    from ..server import run_trace

    return run_trace(
        args.host,
        args.port,
        trace_id=args.trace_id,
        limit=args.limit,
        status=args.status,
        waterfall=args.waterfall,
    )


def _loadgen_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval loadgen",
        description="Drive a running repro-eval server with a seeded "
        "workload mix and report throughput/latency -- or, with "
        "--bench, self-host servers and write the BENCH_serving.json "
        "sharded-vs-shared trajectory document.",
    )
    parser.add_argument(
        "--host", default=None,
        help="server host (default: 127.0.0.1; not valid with --bench)",
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="server port (default: 7070; not valid with --bench)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="concurrent connections (default: 8; with --bench use "
        "--levels instead)",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="total requests across all clients (default: 200)",
    )
    parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed loop (one in-flight per client) or open loop "
        "(fixed arrival rate) (default: closed)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="total offered requests/second (open-loop mode only)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload-mix seed (default: 0)",
    )
    parser.add_argument(
        "--analyze-fraction", type=float, default=0.9,
        help="fraction of analyze (vs execute) requests (default: 0.9)",
    )
    parser.add_argument(
        "--skew", choices=("uniform", "zipf"), default="uniform",
        help="program popularity: uniform over the mix, or zipf-skewed "
        "(seeded, deterministic) (default: uniform)",
    )
    parser.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="zipf exponent for --skew zipf (default: 1.1)",
    )
    parser.add_argument(
        "--multiplex", type=int, default=1,
        help="logical closed-loop clients per connection (sliding-"
        "window pipelining); thousands of clients cost clients/M "
        "sockets (default: 1)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="attach a force-sampled trace context to every request; "
        "the summary's 'slowest' entries then carry trace ids "
        "resolvable with 'repro-eval trace <id>'",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as a canonical JSON document",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="self-hosted serving benchmark: sweep concurrency levels "
        "against sharded and shared pools, run the multiproc front-tier "
        "A/B, write BENCH_serving.json",
    )
    parser.add_argument(
        "--levels", default="4,16,32", metavar="CSV",
        help="--bench concurrency levels (default: 4,16,32)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="--bench pool width (default: 4)",
    )
    parser.add_argument(
        "--backends", type=int, default=4,
        help="--bench multiproc section: backend processes (default: 4)",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="--bench multiproc section: hot-shard replica width "
        "(default: 2)",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="--bench output directory for BENCH_serving.json (default: .)",
    )
    args = parser.parse_args(argv)
    if args.clients is not None and args.clients < 1:
        parser.error("--clients must be >= 1")
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.mode == "open" and (args.rate is None or args.rate <= 0):
        parser.error("--mode open needs a positive --rate")
    if not 0.0 <= args.analyze_fraction <= 1.0:
        parser.error("--analyze-fraction must be within [0, 1]")
    if args.zipf_s <= 0:
        parser.error("--zipf-s must be > 0")
    if args.multiplex < 1:
        parser.error("--multiplex must be >= 1")
    if args.multiplex > 1 and args.mode != "closed":
        parser.error("--multiplex only applies to closed-loop mode")

    from ..api import canonical_json
    from ..server import (
        format_serving,
        run_load,
        run_multiproc_bench,
        run_serving_bench,
        write_serving_bench,
    )

    if args.bench:
        # the bench self-hosts its servers and always runs closed-loop;
        # flags that only make sense against an external server are a
        # user error, not something to silently ignore
        if args.host is not None or args.port is not None:
            parser.error("--bench self-hosts its servers; drop --host/--port")
        if args.mode != "closed" or args.rate is not None:
            parser.error("--bench always runs closed-loop; drop --mode/--rate")
        if args.clients is not None:
            parser.error("--bench sweeps --levels; drop --clients")
        if args.skew != "uniform" or args.multiplex != 1:
            parser.error(
                "--bench runs its own uniform and zipf sections; drop "
                "--skew/--multiplex"
            )
        if args.trace:
            parser.error(
                "--bench measures steady-state capacity; per-request "
                "trace forcing would distort it -- drop --trace"
            )
        try:
            levels = tuple(
                int(piece) for piece in args.levels.split(",") if piece.strip()
            )
        except ValueError:
            parser.error(f"--levels must be a CSV of integers (got {args.levels!r})")
        if not levels or any(level < 1 for level in levels):
            parser.error("--levels needs positive integers")
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        if args.backends < 1:
            parser.error("--backends must be >= 1")
        if args.replicas < 1:
            parser.error("--replicas must be >= 1")
        doc = run_serving_bench(
            levels=levels,
            requests_per_level=args.requests,
            workers=args.workers,
            seed=args.seed,
            analyze_fraction=args.analyze_fraction,
        )
        doc["multiproc"] = run_multiproc_bench(
            backends=args.backends,
            replicas=args.replicas,
            seed=args.seed,
            analyze_fraction=args.analyze_fraction,
        )
        path = write_serving_bench(doc, args.out)
        if args.json:
            print(canonical_json(doc))
        else:
            print(format_serving(doc))
            print(f"wrote {path}")
        return 0 if doc["sharded_wins"] else 1

    summary = run_load(
        args.host if args.host is not None else "127.0.0.1",
        args.port if args.port is not None else 7070,
        clients=args.clients if args.clients is not None else 8,
        requests=args.requests,
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
        analyze_fraction=args.analyze_fraction,
        skew=args.skew,
        zipf_s=args.zipf_s,
        multiplex=args.multiplex,
        force_trace=args.trace,
    )
    if args.json:
        print(canonical_json(summary))
    else:
        latency = summary["latency"]
        print(
            f"loadgen: {summary['completed']}/{summary['requests']} ok, "
            f"{summary['errors']} error(s) ({summary['shed']} shed), "
            f"{summary['throughput_rps']} req/s over {summary['wall_s']}s"
        )
        print(
            f"latency: p50 {latency['p50_s']}s  p95 {latency['p95_s']}s  "
            f"p99 {latency['p99_s']}s  max {latency['max_s']}s"
        )
        for slow in summary["slowest"]:
            trace_tail = (
                f"  trace {slow['trace_id']}" if slow["trace_id"] else ""
            )
            print(
                f"slowest: {slow['latency_s']}s  {slow['verb']}{trace_tail}"
            )
        for failure in summary["failures"]:
            print(f"transport failure: {failure}")
    return 0 if summary["errors"] == 0 and not summary["failures"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch":
        return _batch_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        return _loadgen_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures "
        "(or 'batch' to analyze the whole suite concurrently, "
        "'fuzz' to differential-fuzz the pipeline, "
        "'analyze' for a machine-readable single-loop analysis, "
        "'bench' to measure the execution backends for real, "
        "'serve' to put the protocol on a TCP port, "
        "'loadgen' to drive a server under load, "
        "'top' for a live metrics dashboard, "
        "'trace' to render stored request traces).",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(_TABLES) + sorted(FIGURES) + ["all"],
        help="which artifacts to regenerate (or the "
        "'batch'/'fuzz'/'analyze'/'bench'/'serve'/'loadgen'/'top'/"
        "'trace' subcommands)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    args = parser.parse_args(argv)

    wanted = list(args.artifacts)
    if "all" in wanted:
        wanted = sorted(_TABLES) + sorted(FIGURES)

    for artifact in wanted:
        if artifact in _TABLES:
            print(format_table(generate_table(_TABLES[artifact], scale=args.scale)))
        else:
            print(format_figure(generate_figure(artifact, scale=args.scale)))
        print()
    return 0
