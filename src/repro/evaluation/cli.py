"""Command-line entry point: regenerate any table or figure, batch-run
the whole suite, or differential-fuzz the pipeline.

Usage::

    repro-eval table1            # Table 1 (PERFECT-CLUB)
    repro-eval table2 table3     # Tables 2-3 (SPEC)
    repro-eval fig10 fig13       # figures
    repro-eval all               # everything
    repro-eval table1 --scale 2  # larger datasets

    repro-eval batch                     # all 26 benchmarks, in parallel
    repro-eval batch --suite perfect     # one suite only
    repro-eval batch --jobs 4 --no-cache # bounded workers, force re-run
    repro-eval batch --clear-cache       # drop the persistent cache

    repro-eval fuzz --seeds 500          # differential soundness fuzzing
    repro-eval fuzz --seeds 50 --jobs 2  # CI smoke configuration
    repro-eval fuzz --seeds 100 --shrink # minimize + store any failures
    repro-eval fuzz --seeds 100 --backend thread  # fuzz a real backend

    repro-eval bench --suite core                  # BENCH_core.json
    repro-eval bench --suite smoke --backends sequential,thread --jobs 2

    repro-eval analyze prog.loop --loop L1         # human-readable plan
    repro-eval analyze prog.loop --loop L1 --json  # AnalyzeResponse JSON

(``python -m repro.evaluation ...`` is equivalent to ``repro-eval ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .batch import BatchCache, format_batch, run_batch
from .figures import FIGURES, format_figure, generate_figure
from .tables import format_table, generate_table

__all__ = ["main"]

_TABLES = {"table1": "perfect", "table2": "spec92", "table3": "spec2000"}
_SUITES = ("perfect", "spec92", "spec2000")


def _batch_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval batch",
        description="Analyze all benchmarks concurrently with a persistent "
        "on-disk result cache.",
    )
    parser.add_argument(
        "--suite", action="append", choices=_SUITES,
        help="restrict to one suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--benchmark", action="append", metavar="NAME",
        help="restrict to named benchmarks (repeatable)",
    )
    parser.add_argument(
        "--system", choices=("hybrid", "baseline"), default="hybrid",
        help="which system to measure (default: hybrid)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent cache entirely",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete the persistent cache and exit",
    )
    args = parser.parse_args(argv)

    cache = BatchCache(args.cache_dir)
    if args.clear_cache:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    try:
        report = run_batch(
            suites=args.suite,
            names=args.benchmark,
            system=args.system,
            scale=args.scale,
            jobs=args.jobs,
            cache=None if args.no_cache else cache,
            use_cache=not args.no_cache,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    print(format_batch(report))
    return 0 if all(l.correct for r in report.results for l in r.loops) else 1


def _analyze_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval analyze",
        description="Analyze one labelled loop of an IR program through "
        "the repro.api engine and print the plan (or, with --json, the "
        "machine-readable AnalyzeResponse document).",
    )
    parser.add_argument(
        "file", help="IR source file ('-' reads standard input)"
    )
    parser.add_argument(
        "--loop", required=True, metavar="LABEL",
        help="label of the loop to analyze",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the AnalyzeResponse as a stable JSON document",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent analyze-response cache",
    )
    args = parser.parse_args(argv)

    from ..api import AnalyzeRequest, Engine, EngineConfig

    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            source = Path(args.file).read_text()
        except OSError as exc:
            parser.error(f"cannot read {args.file}: {exc}")
    engine = Engine(
        EngineConfig(cache_dir=args.cache_dir, use_disk_cache=not args.no_cache)
    )
    try:
        response = engine.analyze(AnalyzeRequest(source=source, loop=args.loop))
    except (KeyError, ValueError, SyntaxError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))
    if args.json:
        print(response.canonical_text())
        return 0
    print(f"loop:           {response.loop}")
    print(f"classification: {response.classification}")
    print(f"techniques:     {', '.join(response.techniques) or '-'}")
    print(f"static par:     {response.static_parallel}")
    print(f"runtime tested: {response.runtime_tested}")
    print(f"exact fallback: {response.needs_exact_fallback}")
    if response.civs:
        print(f"CIVs:           {', '.join(response.civs)}")
    for aplan in response.arrays:
        print(f"  {aplan.array:8s} -> {aplan.transform}")
        for kind in ("flow", "output", "slv", "rred"):
            stages = getattr(aplan, kind)
            if stages is not None:
                print(f"           {kind} cascade: {', '.join(stages)}")
    return 0


def _fuzz_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval fuzz",
        description="Differential fuzzing: generate random loop programs "
        "and cross-check analyzer, trace oracle and executor; non-zero "
        "exit on any soundness violation or crash.",
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to run (default: 100)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed (default: 0); seed S is deterministic forever",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache location (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent per-seed verdict cache",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="delta-debug each failure and write the minimized repro "
        "into the regression corpus",
    )
    parser.add_argument(
        "--corpus-dir", default=None,
        help="corpus directory for --shrink "
        "(default: tests/regression/corpus)",
    )
    parser.add_argument(
        "--backend", default="sequential",
        help="execution backend for the oracle's execution view "
        "(default: sequential)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    from ..runtime.backends import BACKENDS

    if args.backend not in BACKENDS:
        parser.error(
            f"unknown backend {args.backend!r}; valid: {list(BACKENDS)}"
        )

    from ..fuzz import (
        FuzzCache,
        format_fuzz_report,
        generate_case,
        run_fuzz,
        shrink_case,
        write_corpus_case,
    )
    from ..fuzz.shrink import corpus_dir

    cache = None if args.no_cache else FuzzCache(args.cache_dir)
    report = run_fuzz(
        seeds=args.seeds,
        seed_start=args.seed_start,
        jobs=args.jobs,
        cache=cache,
        backend=args.backend,
    )
    print(format_fuzz_report(report))
    if args.shrink and report.failures:
        directory = corpus_dir(args.corpus_dir)
        for failure in report.failures:
            shrunk = shrink_case(generate_case(failure.seed))
            path = write_corpus_case(shrunk, directory)
            print(f"seed {failure.seed}: minimized repro -> {path}")
    return 0 if report.ok else 1


def _bench_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench",
        description="Measure real wall-clock execution of the benchmark "
        "workloads on every execution backend and write a schema-stable "
        "BENCH_<suite>.json trajectory file; non-zero exit on any "
        "backend/interpreter divergence.",
    )
    from .bench import BENCH_SUITES, format_bench, run_bench, write_bench
    from ..runtime.backends import BACKENDS, available_backends

    parser.add_argument(
        "--suite", choices=sorted(BENCH_SUITES), default="core",
        help="workload suite to measure (default: core)",
    )
    parser.add_argument(
        "--backends", default=None, metavar="CSV",
        help="comma-separated backend list "
        f"(default: all available of {list(BACKENDS)})",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel backends (default: 4)",
    )
    parser.add_argument(
        "--chunk", choices=("static", "dynamic"), default="static",
        help="chunk-scheduler policy (default: static)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="explicit chunk size (default: derived from --jobs)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="runs per (workload, backend); best is kept (default: 3)",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_<suite>.json (default: current dir)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.chunk_size is not None and args.chunk_size < 1:
        parser.error("--chunk-size must be >= 1")
    backends = (
        [b.strip() for b in args.backends.split(",") if b.strip()]
        if args.backends
        else available_backends()
    )
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        parser.error(f"unknown backend(s) {unknown}; valid: {list(BACKENDS)}")
    # Only argument validation routes to parser.error; a failure inside
    # the run itself must surface as the real traceback, not a usage
    # message.
    doc = run_bench(
        suite=args.suite,
        backends=backends,
        jobs=args.jobs,
        chunk={"policy": args.chunk, "size": args.chunk_size},
        repeat=args.repeat,
    )
    path = write_bench(doc, args.out)
    print(format_bench(doc))
    print(f"wrote {path}")
    return 0 if doc["equivalence_ok"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch":
        return _batch_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures "
        "(or 'batch' to analyze the whole suite concurrently, "
        "'fuzz' to differential-fuzz the pipeline, "
        "'analyze' for a machine-readable single-loop analysis, "
        "'bench' to measure the execution backends for real).",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(_TABLES) + sorted(FIGURES) + ["all"],
        help="which artifacts to regenerate (or the "
        "'batch'/'fuzz'/'analyze'/'bench' subcommands)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    args = parser.parse_args(argv)

    wanted = list(args.artifacts)
    if "all" in wanted:
        wanted = sorted(_TABLES) + sorted(FIGURES)

    for artifact in wanted:
        if artifact in _TABLES:
            print(format_table(generate_table(_TABLES[artifact], scale=args.scale)))
        else:
            print(format_figure(generate_figure(artifact, scale=args.scale)))
        print()
    return 0
