"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-eval table1            # Table 1 (PERFECT-CLUB)
    repro-eval table2 table3     # Tables 2-3 (SPEC)
    repro-eval fig10 fig13       # figures
    repro-eval all               # everything
    repro-eval table1 --scale 2  # larger datasets
"""

from __future__ import annotations

import argparse
import sys

from .figures import FIGURES, format_figure, generate_figure
from .tables import format_table, generate_table

__all__ = ["main"]

_TABLES = {"table1": "perfect", "table2": "spec92", "table3": "spec2000"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(_TABLES) + sorted(FIGURES) + ["all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    args = parser.parse_args(argv)

    wanted = list(args.artifacts)
    if "all" in wanted:
        wanted = sorted(_TABLES) + sorted(FIGURES)

    for artifact in wanted:
        if artifact in _TABLES:
            print(format_table(generate_table(_TABLES[artifact], scale=args.scale)))
        else:
            print(format_figure(generate_figure(artifact, scale=args.scale)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
