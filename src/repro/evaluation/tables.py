"""Regenerate Tables 1-3: per-benchmark properties and loop classification.

Each row reports the measured classification and techniques next to the
paper's, plus the measured runtime-test overhead (RTov) and the coverage
needing runtime tests (SCrt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..workloads import ALL_BENCHMARKS
from .model import measure_benchmark

__all__ = [
    "TableRow", "TableReport", "generate_table", "format_table",
    "format_fuzz_table",
]

_SUITE_PROCS = {"perfect": 4, "spec92": 4, "spec2000": 8}


@dataclass
class TableRow:
    """One loop row of a table."""

    benchmark: str
    loop: str
    lsc: float
    gr_ms: float
    paper_class: str
    measured_class: str
    parallel: bool
    correct: bool
    rtov: float


@dataclass
class TableReport:
    """One regenerated table."""

    suite: str
    rows: list[TableRow] = field(default_factory=list)
    benchmark_rtov: dict[str, float] = field(default_factory=dict)
    benchmark_rtov_paper: dict[str, float] = field(default_factory=dict)
    benchmark_scrt: dict[str, float] = field(default_factory=dict)
    benchmark_techniques: dict[str, list[str]] = field(default_factory=dict)


def classification_compatible(measured: str, paper: str) -> bool:
    """Is the measured classification consistent with the paper's row?

    Exact match, or an accepted refinement: EXACT-family labels match the
    paper's TLS/HOIST-USR (runtime-refined), F/OI prefixes are mutually
    compatible at matching cost, CIVagg matches CIV-COMP, and reduction /
    bounds labels match the BOUNDS-COMP rows.
    """
    if measured == paper:
        return True
    pairs = [
        (("TLS",), ("TLS", "EXACT")),
        (("HOIST-USR",), ("HOIST-USR", "EXACT")),
        # A statically-planned reduction (SRED) is a static parallel
        # decision -- no runtime test runs; the paper's STATIC-PAR rows
        # for pure reduction loops (e.g. EK[1] += VF[i]) match it.
        (("STATIC-PAR",), ("STATIC-PAR", "SRED")),
        (("CIV-COMP", "CIVagg"), ("CIVagg", "CIV-COMP", "STATIC-PAR")),
        (("SLV",), ("OI", "CIVagg", "SLV")),
        (("BOUNDS-COMP",), ("BOUNDS-COMP", "RRED", "SRED")),
        (("STATIC-SEQ",), ("STATIC-SEQ", "SEQ")),
        # A reduction treatment of an output-dependent loop matches the
        # paper's OI rows (both parallelize via a cross-iteration-write
        # resolution at the same test complexity).
        (("OI",), ("OI", "RRED", "F/OI")),
    ]
    for papers, measures in pairs:
        if any(paper.startswith(p) or p in paper for p in papers):
            if any(measured.startswith(m) or m in measured for m in measures):
                return True
    # F/OI family: same cost class is what matters.
    fam = ("FI", "OI", "F/OI")
    if paper.startswith(fam) and measured.startswith(fam):
        return True
    if paper.endswith("HOIST-USR") and measured.startswith(fam):
        return True
    return False


def generate_table(suite: str, scale: int = 1) -> TableReport:
    """Regenerate the table for one suite ('perfect'/'spec92'/'spec2000')."""
    report = TableReport(suite=suite)
    procs = _SUITE_PROCS[suite]
    for spec in ALL_BENCHMARKS:
        if spec.suite != suite:
            continue
        measurement = measure_benchmark(spec, system="hybrid", scale=scale)
        techniques: set[str] = set()
        for loop in spec.loops:
            m = measurement.loops[loop.label]
            report.rows.append(
                TableRow(
                    benchmark=spec.name,
                    loop=loop.label,
                    lsc=loop.lsc,
                    gr_ms=loop.gr_ms,
                    paper_class=loop.paper_class,
                    measured_class=m.runtime_label,
                    parallel=m.parallel,
                    correct=m.correct,
                    rtov=m.rtov(procs),
                )
            )
            if m.plan is not None:
                techniques.update(m.plan.techniques())
        report.benchmark_rtov[spec.name] = measurement.rtov(procs)
        report.benchmark_rtov_paper[spec.name] = spec.rtov_paper
        report.benchmark_scrt[spec.name] = measurement.measured_scrt()
        report.benchmark_techniques[spec.name] = sorted(techniques)
    return report


def format_fuzz_table(report) -> str:
    """Soundness/precision summary of a differential-fuzzing run.

    *report* is a :class:`repro.fuzz.oracle.FuzzReport` (duck-typed here
    to keep the evaluation layer import-free of the fuzz package).
    """
    total = len(report.results)
    counts = report.counts
    lines = [
        f"Differential fuzzing: {total} seed(s) in {report.elapsed_s:.2f}s "
        f"({report.cache_hits} cached)",
        f"{'outcome':<18}{'count':>7}{'%':>8}",
        "-" * 33,
    ]
    for name in ("sound-parallel", "sound-sequential", "precision-gap",
                 "unsound", "crash"):
        n = counts.get(name, 0)
        pct = (100.0 * n / total) if total else 0.0
        lines.append(f"{name:<18}{n:>7}{pct:>7.1f}%")
    lines.append("-" * 33)
    parallelized = counts.get("sound-parallel", 0)
    gaps = counts.get("precision-gap", 0)
    candidates = parallelized + gaps
    precision = (100.0 * parallelized / candidates) if candidates else 100.0
    verdict = "SOUND" if report.ok else "UNSOUND/CRASHING"
    lines.append(
        f"soundness: {verdict} "
        f"({counts.get('unsound', 0)} unsound, {counts.get('crash', 0)} crash); "
        f"precision: {precision:.1f}% of independent runs parallelized"
    )
    hist = report.classification_histogram()
    if hist:
        top = ", ".join(f"{label} x{n}" for label, n in hist[:10])
        lines.append(f"classifications: {top}")
    return "\n".join(lines)


def format_table(report: TableReport) -> str:
    """Pretty-print a regenerated table, paper vs measured."""
    lines = [
        f"Table ({report.suite} suite): loop classification, paper vs measured",
        f"{'BENCH':<12}{'LOOP':<18}{'LSC%':>6}{'GR ms':>9}"
        f"  {'PAPER':<16}{'MEASURED':<18}{'PAR':<5}{'OK':<4}{'RTov%':>7}",
        "-" * 96,
    ]
    current = None
    for row in report.rows:
        bench = row.benchmark if row.benchmark != current else ""
        current = row.benchmark
        lines.append(
            f"{bench:<12}{row.loop:<18}{row.lsc * 100:>6.1f}{row.gr_ms:>9.3f}"
            f"  {row.paper_class:<16}{row.measured_class:<18}"
            f"{'yes' if row.parallel else 'no':<5}"
            f"{'y' if row.correct else 'N':<4}{row.rtov * 100:>7.2f}"
        )
    lines.append("-" * 96)
    lines.append(f"{'BENCH':<12}{'RTov measured':>14}{'RTov paper':>12}{'SCrt':>8}  techniques")
    for name, rtov in report.benchmark_rtov.items():
        lines.append(
            f"{name:<12}{rtov * 100:>13.2f}%{report.benchmark_rtov_paper[name] * 100:>11.2f}%"
            f"{report.benchmark_scrt[name] * 100:>7.1f}%  "
            + ",".join(report.benchmark_techniques[name])
        )
    return "\n".join(lines)
