"""Measurement model: run the hybrid system and the baseline on every
benchmark loop and compose program-level timings.

Granularity calibration: the tables give each loop's real granularity GR
in milliseconds.  A loop's simulated work units are mapped to
milliseconds via ``unit_ms = GR / seq_work``, so the fixed thread-spawn
cost (``SPAWN_MS``) has the same *relative* weight it had on the paper's
machines -- this is what reproduces the PERFECT-CLUB slowdowns on
microsecond-granularity loops (dyfesm, ocean) while the large SPEC2006
loops scale.

Program-level normalized time (Figures 10-12) follows Amdahl over the
measured loops::

    norm(P) = (1 - sum(LSC)) + sum_l LSC_l / speedup_l(P)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..api import default_engine
from ..baselines import StaticAffineCompiler
from ..core import LoopPlan
from ..runtime import CostModel, ExecutionReport, Inspector
from ..workloads import TLS_LOOPS, BenchmarkSpec, LoopSpec

__all__ = ["LoopMeasurement", "BenchmarkMeasurement", "measure_benchmark", "SPAWN_MS"]

#: modelled OpenMP fork/join cost, in milliseconds (tens of microseconds
#: on the paper's machines).
SPAWN_MS = 0.008

#: repeated loop invocations modelled for HOIST-USR amortization: the
#: paper's hoistable loops execute many times per program run.
HOIST_INVOCATIONS = 50


@dataclass
class LoopMeasurement:
    """One loop under one system ('hybrid' or 'baseline')."""

    spec: LoopSpec
    plan: Optional[LoopPlan]
    report: Optional[ExecutionReport]
    parallel: bool
    correct: bool
    runtime_label: str
    cost: CostModel

    def speedup(self, procs: int) -> float:
        if not self.parallel or self.report is None:
            return 1.0
        return max(
            self.report.seq_work / self.report.parallel_time(procs, self.cost),
            1e-9,
        )

    def rtov(self, procs: int) -> float:
        if self.report is None or not self.parallel:
            return 0.0
        return self.report.rtov(procs, self.cost)


@dataclass
class BenchmarkMeasurement:
    """All loops of one benchmark under one system."""

    spec: BenchmarkSpec
    system: str
    loops: dict[str, LoopMeasurement] = field(default_factory=dict)

    def norm_time(self, procs: int) -> float:
        """Program time on *procs* processors, sequential = 1.

        The tables measure selected loops (sum LSC), but the benchmark's
        parallelized coverage is SC; the covered-but-unmeasured fraction
        behaves like the blend of the measured loops (they are chosen as
        representative), and only ``1 - SC`` stays strictly sequential.
        """
        covered = 0.0
        total = 0.0
        for m in self.loops.values():
            lsc = m.spec.lsc
            covered += lsc
            total += lsc / m.speedup(procs)
        sc = max(self.spec.sc, covered)
        blended_ratio = total / covered if covered > 0 else 1.0
        unmeasured = sc - covered
        return (1.0 - sc) + unmeasured * blended_ratio + total

    def speedup(self, procs: int) -> float:
        return 1.0 / self.norm_time(procs)

    def rtov(self, procs: int) -> float:
        """Coverage-weighted runtime-test overhead fraction."""
        num = 0.0
        den = 0.0
        for m in self.loops.values():
            if m.report is None or not m.parallel:
                continue
            par = m.report.parallel_time(procs, m.cost)
            scale = m.spec.lsc / max(m.report.seq_work, 1.0)
            num += m.report.overhead_time(procs, m.cost) * scale
            den += par * scale
        return num / den if den > 0 else 0.0

    def measured_scrt(self) -> float:
        """Coverage of loops that needed any runtime work."""
        out = 0.0
        for m in self.loops.values():
            if m.report is not None and m.report.total_overhead > 0:
                out += m.spec.lsc
        return out


def _runtime_label(plan: LoopPlan, report: ExecutionReport) -> str:
    if not report.parallel:
        return "SEQ"
    vias = {d.via for d in report.decisions.values()}
    if "speculation" in vias:
        return "TLS"
    if "inspector" in vias:
        return "HOIST-USR"
    if "predicate" in vias:
        return plan.classification()
    return plan.classification()


def _loop_cost_model(spec: LoopSpec, seq_work: float) -> CostModel:
    unit_ms = spec.gr_ms / max(seq_work, 1.0)
    spawn_units = SPAWN_MS / unit_ms if unit_ms > 0 else 40.0
    return CostModel(spawn_overhead=spawn_units)


def measure_benchmark(
    spec: BenchmarkSpec,
    system: str = "hybrid",
    scale: int = 1,
    inspector: Optional[Inspector] = None,
) -> BenchmarkMeasurement:
    """Analyze + execute every measured loop of *spec* under *system*."""
    if system not in ("hybrid", "baseline"):
        raise ValueError(f"unknown system {system!r}")
    params, arrays = spec.dataset(scale)
    out = BenchmarkMeasurement(spec=spec, system=system)
    # All benchmark measurement flows through the shared engine: every
    # caller analyzing the same source shares one CompiledProgram (and
    # therefore its summaries and per-loop plan memo).
    compiled = default_engine().compile(spec.source, program=spec.program)
    baseline = StaticAffineCompiler(compiled.program) if system == "baseline" else None
    shared_inspector = inspector or Inspector()
    for loop in spec.loops:
        plan = compiled.plan(loop.label)
        if system == "baseline":
            verdict = baseline.analyze(loop.label)
            if not verdict.parallel:
                out.loops[loop.label] = LoopMeasurement(
                    spec=loop,
                    plan=plan,
                    report=None,
                    parallel=False,
                    correct=True,
                    runtime_label="SEQ",
                    cost=CostModel(),
                )
                continue
        strategy = "tls" if loop.label in TLS_LOOPS else "inspector"
        report = compiled.execute(
            loop.label,
            params,
            arrays,
            plan=plan,
            inspector=shared_inspector,
            exact_strategy=strategy,
        )
        if report.inspector_overhead > 0:
            # HOIST-USR: the evaluation is hoisted across the loop's many
            # executions in a real run; amortize it.
            report.inspector_overhead /= HOIST_INVOCATIONS
        if system == "baseline" and report.parallel:
            # The baseline parallelizes statically: no runtime machinery.
            report.test_overhead = 0.0
            report.civ_overhead = 0.0
            report.bounds_overhead = 0.0
            report.inspector_overhead = 0.0
            report.speculation_overhead = 0.0
        cost = _loop_cost_model(loop, report.seq_work)
        out.loops[loop.label] = LoopMeasurement(
            spec=loop,
            plan=plan,
            report=report,
            parallel=report.parallel,
            correct=report.correct,
            runtime_label=_runtime_label(plan, report),
            cost=cost,
        )
    return out
