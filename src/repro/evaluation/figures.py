"""Regenerate Figures 10-13: program-level timings and scalability.

* Fig. 10: PERFECT-CLUB normalized parallel time on 4 processors,
  factorization (hybrid) vs the commercial-compiler baseline;
* Fig. 11: SPEC89/92, same on 4 processors;
* Fig. 12: SPEC2000/2006 on 8 processors vs the xlf stand-in;
* Fig. 13: hybrid speedups at 1/2/4/8/16 processors for SPEC2000/2006.

The *shape* claims under test: the hybrid beats the baseline everywhere
except the microsecond-granularity codes (dyfesm, ocean, and the small
qcd loop), slowdowns (>1) appear exactly there, and scalability flattens
from 8 to 16 processors (shared memory bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..workloads import ALL_BENCHMARKS
from .model import measure_benchmark

__all__ = ["FigureSeries", "generate_figure", "format_figure", "FIGURES"]

#: figure id -> (suite, procs, include speedup curve)
FIGURES = {
    "fig10": ("perfect", 4, False),
    "fig11": ("spec92", 4, False),
    "fig12": ("spec2000", 8, False),
    "fig13": ("spec2000", 16, True),
}

_SCALABILITY_PROCS = (1, 2, 4, 8, 16)


@dataclass
class FigureSeries:
    """Data series of one figure."""

    figure: str
    suite: str
    procs: int
    benchmarks: list[str] = field(default_factory=list)
    hybrid_norm: dict[str, float] = field(default_factory=dict)
    baseline_norm: dict[str, float] = field(default_factory=dict)
    paper_norm: dict[str, Optional[float]] = field(default_factory=dict)
    #: fig13 only: procs -> benchmark -> speedup
    scalability: dict[int, dict[str, float]] = field(default_factory=dict)
    paper_speedup16: dict[str, Optional[float]] = field(default_factory=dict)


def generate_figure(figure: str, scale: int = 1) -> FigureSeries:
    """Regenerate one figure's data series."""
    suite, procs, scalability = FIGURES[figure]
    series = FigureSeries(figure=figure, suite=suite, procs=procs)
    specs = [s for s in ALL_BENCHMARKS if s.suite == suite]
    if figure in ("fig12", "fig13"):
        # The paper's Fig. 12/13 exclude gamess (not measured).
        specs = [s for s in specs if s.name != "gamess"]
    for spec in specs:
        hybrid = measure_benchmark(spec, system="hybrid", scale=scale)
        base = measure_benchmark(spec, system="baseline", scale=scale)
        series.benchmarks.append(spec.name)
        series.hybrid_norm[spec.name] = hybrid.norm_time(procs)
        series.baseline_norm[spec.name] = base.norm_time(procs)
        series.paper_norm[spec.name] = spec.paper_norm_time
        series.paper_speedup16[spec.name] = spec.paper_speedup16
        if scalability:
            for p in _SCALABILITY_PROCS:
                series.scalability.setdefault(p, {})[spec.name] = hybrid.speedup(p)
    return series


def format_figure(series: FigureSeries) -> str:
    """Pretty-print one figure's series, paper numbers alongside."""
    lines = [f"{series.figure}: {series.suite} suite, {series.procs} processors"]
    if not series.scalability:
        lines.append(
            f"{'BENCH':<12}{'hybrid':>9}{'baseline':>10}{'paper':>8}   (normalized parallel time, seq = 1)"
        )
        for name in series.benchmarks:
            paper = series.paper_norm[name]
            paper_s = f"{paper:7.2f}" if paper is not None else "    n/a"
            lines.append(
                f"{name:<12}{series.hybrid_norm[name]:>9.2f}"
                f"{series.baseline_norm[name]:>10.2f}{paper_s:>8}"
            )
    else:
        header = f"{'BENCH':<12}" + "".join(f"{p:>7}p" for p in _SCALABILITY_PROCS)
        lines.append(header + f"{'paper@16':>10}")
        for name in series.benchmarks:
            row = f"{name:<12}"
            for p in _SCALABILITY_PROCS:
                row += f"{series.scalability[p][name]:>8.2f}"
            paper = series.paper_speedup16[name]
            row += f"{paper:>10.2f}" if paper is not None else "       n/a"
            lines.append(row)
    return "\n".join(lines)
