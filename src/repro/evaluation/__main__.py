"""``python -m repro.evaluation table1 fig13 ...``"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
