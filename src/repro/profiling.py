"""Lightweight counters/timers for the hot symbolic kernels.

This is the implementation behind :mod:`repro.evaluation.profile` (the
public import point); it lives at the package root so the instrumented
leaf layers (:mod:`repro.symbolic`, :mod:`repro.lmad`,
:mod:`repro.core`) can import it without pulling the evaluation harness
-- and its :mod:`repro.core` imports -- into their import graph.

Design constraints, in priority order:

* **near-zero overhead while disabled**: the kernels this instruments
  (Fourier-Motzkin elimination, LMAD set comparison, USR reshape,
  cascade leaf evaluation) run millions of times per benchmark, so the
  disabled path is a single module-global attribute load and a falsy
  branch -- no allocation, no ``perf_counter`` call, no context-manager
  frame.
* **exact counters under nesting**: :func:`count` increments
  unconditionally per call; :func:`timed`'s call counter does too, so
  recursive kernels report true invocation counts.
* **wall-honest timers under recursion**: a timer records *inclusive*
  elapsed time only at the outermost activation of its name (per-name
  depth tracking), so a recursive kernel's total can never exceed the
  wall time it actually occupied.

The collected totals are process-global, but the per-name nesting
depth that decides "outermost activation" is **per-thread**: the
serving tier enables collection while several pool workers run the
same kernels concurrently, and a shared depth map would let one
thread's exit clobber another's nesting state -- after which that
timer silently never records again.  Each thread is its own
activation stack; concurrent accumulation into the shared totals
remains racy-but-monotone, which is acceptable for attribution.
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator, TypeVar

__all__ = [
    "ProfileSnapshot",
    "count",
    "disable",
    "enable",
    "is_enabled",
    "profiling",
    "reset",
    "snapshot",
    "timed",
    "timer",
]

_F = TypeVar("_F", bound=Callable)


class _LocalDepth(threading.local):
    """Per-thread per-name activation depth: each thread nests
    independently, so one thread's timer exit can never corrupt
    another's outermost-activation bookkeeping."""

    def __init__(self) -> None:
        self.d: dict[str, int] = {}


class _State:
    """Mutable profiler state; a class (not a dict) so the hot-path
    check compiles to one LOAD_ATTR on an identity-stable object."""

    __slots__ = ("enabled", "counts", "times", "calls", "depth")

    def __init__(self) -> None:
        self.enabled = False
        self.counts: dict[str, int] = {}
        self.times: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.depth = _LocalDepth()


_state = _State()


@dataclass(frozen=True)
class ProfileSnapshot:
    """Immutable copy of the collected data at one point in time."""

    counts: dict[str, int] = field(default_factory=dict)
    times: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable table, timers sorted by total time."""
        lines = []
        if self.times:
            lines.append(f"{'timer':<32} {'calls':>10} {'total_s':>12}")
            for name in sorted(self.times, key=self.times.get, reverse=True):
                lines.append(
                    f"{name:<32} {self.calls.get(name, 0):>10}"
                    f" {self.times[name]:>12.6f}"
                )
        if self.counts:
            lines.append(f"{'counter':<32} {'count':>10}")
            for name in sorted(self.counts):
                lines.append(f"{name:<32} {self.counts[name]:>10}")
        return "\n".join(lines)


def enable() -> None:
    """Start collecting.  Does not reset previously collected data."""
    _state.enabled = True


def disable() -> None:
    _state.enabled = False


def is_enabled() -> bool:
    return _state.enabled


def reset() -> None:
    """Drop all collected data (leaves the enabled flag alone).  Only
    the calling thread's nesting depth is cleared -- other threads may
    be mid-activation, and their depth is their own live state."""
    _state.counts.clear()
    _state.times.clear()
    _state.calls.clear()
    _state.depth.d.clear()


def snapshot() -> ProfileSnapshot:
    return ProfileSnapshot(
        counts=dict(_state.counts),
        times=dict(_state.times),
        calls=dict(_state.calls),
    )


def count(name: str, n: int = 1) -> None:
    """Increment counter *name* by *n* when profiling is enabled."""
    if _state.enabled:
        _state.counts[name] = _state.counts.get(name, 0) + n


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Context-managed timer; prefer :func:`timed` on hot functions
    (the decorator's disabled path avoids the generator frame)."""
    if not _state.enabled:
        yield
        return
    st = _state
    st.calls[name] = st.calls.get(name, 0) + 1
    depths = st.depth.d
    depth = depths.get(name, 0)
    depths[name] = depth + 1
    t0 = perf_counter()
    try:
        yield
    finally:
        if depth == 0:
            st.times[name] = st.times.get(name, 0.0) + perf_counter() - t0
        depths[name] = depth


def timed(name: str) -> Callable[[_F], _F]:
    """Decorate a kernel so each call is counted, and its inclusive
    wall time accumulated under *name* (outermost activation only)."""

    def deco(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            st = _state
            if not st.enabled:
                return fn(*args, **kwargs)
            st.calls[name] = st.calls.get(name, 0) + 1
            depths = st.depth.d
            depth = depths.get(name, 0)
            depths[name] = depth + 1
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                if depth == 0:
                    st.times[name] = st.times.get(name, 0.0) + (
                        perf_counter() - t0
                    )
                depths[name] = depth

        wrapper.__wrapped__ = fn
        return wrapper  # type: ignore[return-value]

    return deco


@contextmanager
def profiling(fresh: bool = True) -> Iterator[None]:
    """Enable collection for a ``with`` block, restoring the previous
    enabled state on exit.  ``fresh=True`` resets counters first."""
    was = _state.enabled
    if fresh:
        reset()
    enable()
    try:
        yield
    finally:
        _state.enabled = was
