"""LRPD-style thread-level speculation (the paper's exact-test fallback).

When every predicate of the cascade fails, the executor may run the loop
speculatively: iterations execute in parallel against shadow structures
that mark, per memory location, whether it was read, written, or written
more than once.  After the run, the markings are analyzed exactly as the
LRPD test does:

* a location written by two different iterations -> output dependence;
* a location written by one iteration and expose-read by another ->
  flow/anti dependence.

On success the speculative run's timing stands (plus the marking
overhead, proportional to the number of traced accesses); on failure the
loop re-executes sequentially and the speculative work is wasted -- both
exactly the cost behaviour the paper attributes to TLS.

Two consumers share the marking analysis:

* :func:`lrpd_test` -- the post-hoc view over a sequential
  :class:`~repro.ir.interp.LoopTrace` (the cost-model path, and the
  trace-side oracle the property suite compares against);
* :func:`lrpd_marks` -- the generic core the *real* speculative
  execution backend
  (:class:`~repro.runtime.backends.speculative.SpeculativeBackend`)
  feeds with the shadow marks of its optimistic parallel run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.interp import LoopTrace

__all__ = ["SpeculationResult", "lrpd_marks", "lrpd_test"]


@dataclass
class SpeculationResult:
    """Outcome of the LRPD marking analysis over a traced execution."""

    success: bool
    #: accesses traced: the marking overhead is proportional to this
    traced_accesses: int
    #: privatizable-under-TLS arrays (never expose-read across iterations)
    privatized: frozenset[str] = frozenset()
    #: arrays whose conflicts aborted speculation (empty on success)
    conflicts: frozenset[str] = frozenset()


def lrpd_marks(
    accesses, privatize: bool = True, skip: frozenset = frozenset()
) -> SpeculationResult:
    """Run the LRPD test over shadow marks.

    *accesses* yields one ``(ident, writes, exposed)`` triple per
    executed iteration: a hashable iteration identity, the per-array
    written locations and the per-array expose-read locations (a read of
    a location with no preceding write in the same iteration).  Arrays
    in *skip* are exempt from marking entirely -- the caller has already
    validated a merge rule for them (e.g. a licensed reduction
    delta-merge), so their accesses can neither conflict nor count
    toward the marking overhead.

    With ``privatize`` (the paper's LRPD with privatization), arrays
    whose cross-iteration conflicts are write-write only are treated as
    privatized (with last-value), so only genuine flow dependences --
    a location written by iteration ``i`` and expose-read by ``j != i``
    -- abort speculation.
    """
    traced = 0
    writers: dict[tuple[str, int], set] = {}
    exposed: dict[tuple[str, int], set] = {}
    for ident, writes, reads in accesses:
        for arr, locs in writes.items():
            if arr in skip:
                continue
            traced += len(locs)
            for loc in locs:
                writers.setdefault((arr, loc), set()).add(ident)
        for arr, locs in reads.items():
            if arr in skip:
                continue
            traced += len(locs)
            for loc in locs:
                exposed.setdefault((arr, loc), set()).add(ident)

    output_conflicts: set[str] = set()
    for key, owners in writers.items():
        if len(owners) > 1:
            output_conflicts.add(key[0])

    flow_conflicts: set[str] = set()
    for key, owners in writers.items():
        readers = exposed.get(key, set())
        for r in readers:
            if owners - {r}:
                flow_conflicts.add(key[0])
                break

    if flow_conflicts:
        return SpeculationResult(
            success=False,
            traced_accesses=traced,
            conflicts=frozenset(flow_conflicts),
        )
    if output_conflicts and not privatize:
        return SpeculationResult(
            success=False,
            traced_accesses=traced,
            conflicts=frozenset(output_conflicts),
        )
    return SpeculationResult(
        success=True,
        traced_accesses=traced,
        privatized=frozenset(output_conflicts),
    )


def lrpd_test(trace: LoopTrace, privatize: bool = True) -> SpeculationResult:
    """Run the LRPD marking analysis on an execution trace."""
    return lrpd_marks(
        (
            (rec.iteration, rec.writes, rec.exposed_reads)
            for rec in trace.iterations
        ),
        privatize=privatize,
    )
