"""Simulated parallel runtime: cost model, conditional-parallelization
executor, LRPD speculation, and the memoizing inspector."""

from .executor import ArrayDecision, ExecutionReport, HybridExecutor
from .inspector import Inspector, InspectorResult, evaluate_usr_cost
from .scheduler import CostModel, ParallelTiming, parallel_time, schedule_parallel
from .speculation import SpeculationResult, lrpd_test

__all__ = [
    "CostModel", "ParallelTiming", "schedule_parallel", "parallel_time",
    "HybridExecutor", "ExecutionReport", "ArrayDecision",
    "Inspector", "InspectorResult", "evaluate_usr_cost",
    "SpeculationResult", "lrpd_test",
]
