"""Parallel runtime: cost model, conditional-parallelization executor,
LRPD speculation, the memoizing inspector, and the real execution
backends (:mod:`repro.runtime.backends`) with their chunked scheduler."""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    BackendRun,
    BackendUnsupported,
    ChunkSpec,
    ExecutionBackend,
    LoopTask,
    available_backends,
    get_backend,
    plan_chunks,
)
from .executor import ArrayDecision, ExecutionReport, HybridExecutor
from .inspector import Inspector, InspectorResult, evaluate_usr_cost
from .scheduler import CostModel, ParallelTiming, parallel_time, schedule_parallel
from .speculation import SpeculationResult, lrpd_test

__all__ = [
    "CostModel", "ParallelTiming", "schedule_parallel", "parallel_time",
    "HybridExecutor", "ExecutionReport", "ArrayDecision",
    "Inspector", "InspectorResult", "evaluate_usr_cost",
    "SpeculationResult", "lrpd_test",
    "BACKENDS", "DEFAULT_BACKEND", "BackendRun", "BackendUnsupported",
    "ChunkSpec", "ExecutionBackend", "LoopTask",
    "available_backends", "get_backend", "plan_chunks",
]
