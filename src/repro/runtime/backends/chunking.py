"""Chunked scheduling of a validated parallel iteration space.

Once the hybrid runtime has validated a loop (statically, through a
predicate cascade, or via an exact test), its iterations are free to
run in any order on any worker.  The chunk planner carves the iteration
space ``[0, n)`` into contiguous position ranges that the execution
backends (:mod:`repro.runtime.backends`) hand to their workers:

* ``static`` chunking mirrors OpenMP's static schedule (and the
  simulated :func:`repro.runtime.scheduler.schedule_parallel`): one
  contiguous block per worker, sizes differing by at most one -- minimal
  scheduling overhead, best for uniform iterations;
* ``dynamic`` chunking carves many smaller blocks than workers, so a
  pool's work-stealing evens out imbalanced iteration costs at the
  price of more per-chunk overhead.

Both policies are pure functions of ``(n, jobs, spec)``: the partition
-- and therefore the merged result -- is deterministic regardless of
worker count or completion order (``tests/property/
test_scheduler_props.py`` pins this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["CHUNK_POLICIES", "DYNAMIC_CHUNK_FACTOR", "ChunkSpec", "plan_chunks"]

#: Valid chunking policies.
CHUNK_POLICIES = ("static", "dynamic")

#: Default chunks-per-worker ratio for the dynamic policy: enough blocks
#: for the pool to rebalance, few enough to keep dispatch overhead low.
DYNAMIC_CHUNK_FACTOR = 4


@dataclass(frozen=True)
class ChunkSpec:
    """How to carve the iteration space.

    ``size`` fixes the chunk length explicitly; when ``None`` the
    planner derives it from the worker count (one block per worker for
    ``static``, :data:`DYNAMIC_CHUNK_FACTOR` blocks per worker for
    ``dynamic``).
    """

    policy: str = "static"
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in CHUNK_POLICIES:
            raise ValueError(
                f"unknown chunk policy {self.policy!r}; "
                f"valid: {list(CHUNK_POLICIES)}"
            )
        if self.size is not None and self.size < 1:
            raise ValueError(f"chunk size must be >= 1 (got {self.size})")

    # -- wire form (the ExecuteRequest 'chunk' field) -------------------
    def to_json(self) -> dict:
        return {"policy": self.policy, "size": self.size}

    @classmethod
    def from_json(cls, payload) -> "ChunkSpec":
        """Accepts ``None`` (defaults), an existing spec, or a dict."""
        if payload is None:
            return cls()
        if isinstance(payload, ChunkSpec):
            return payload
        if not isinstance(payload, dict):
            raise TypeError(f"chunk spec must be a dict (got {payload!r})")
        unknown = set(payload) - {"policy", "size"}
        if unknown:
            raise ValueError(f"unknown chunk spec key(s) {sorted(unknown)}")
        return cls(
            policy=payload.get("policy", "static"), size=payload.get("size")
        )


def plan_chunks(
    n: int, jobs: int, spec: Optional[ChunkSpec] = None
) -> list[range]:
    """Partition positions ``[0, n)`` into contiguous chunks.

    The returned ranges are in position order, pairwise disjoint, and
    cover every position exactly once (the property suite's invariant).
    """
    spec = spec or ChunkSpec()
    if n <= 0:
        return []
    jobs = max(1, jobs)
    if spec.size is not None:
        size = spec.size
    elif spec.policy == "dynamic":
        size = max(1, math.ceil(n / (jobs * DYNAMIC_CHUNK_FACTOR)))
    else:
        # static: one contiguous block per worker, sizes within one of
        # each other (same split as the simulated scheduler).
        workers = min(jobs, n)
        base, extra = divmod(n, workers)
        chunks: list[range] = []
        start = 0
        for w in range(workers):
            length = base + (1 if w < extra else 0)
            chunks.append(range(start, start + length))
            start += length
        return chunks
    return [range(start, min(start + size, n)) for start in range(0, n, size)]
