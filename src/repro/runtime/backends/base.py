"""Execution-backend contract and the shared iteration machinery.

A backend receives a :class:`LoopTask` -- the frozen state of one
validated parallel loop (pre-loop memory, the iteration list, CIV
prefix values, and the per-array merge strategies the runtime decided
on) -- and returns a :class:`BackendRun` holding the final merged
memory.  The contract every backend must meet, pinned by
``tests/integration/test_backend_equivalence.py``:

    *for any task, the merged memory is identical to the reference
    interpreter's sequential execution.*

Iteration semantics are the paper's conditional-parallelization model:
every iteration observes the pre-loop memory snapshot (plus its own
writes), and the per-array merge rules reconstruct the final state in
iteration order -- direct writes for shared arrays, iteration-ordered
write-back for privatized arrays (= dynamic last value), and delta
accumulation for reductions.

Two execution modes share :func:`execute_positions`:

* ``per_iteration_snapshot=True`` -- the reference mode: every
  iteration runs against a fresh deep copy of the pre-loop memory
  (exactly what :class:`~repro.runtime.executor.HybridExecutor` always
  did);
* ``per_iteration_snapshot=False`` -- the chunked production mode: a
  worker copies the pre-state once per chunk and *undoes* each
  iteration's writes before the next one starts.  Restoring only the
  written locations is O(writes) instead of O(memory) per iteration,
  which is where the chunked backends' real speedup over the reference
  backend comes from.  Writes are the only mutations an iteration makes
  to array memory, so undo provably restores the exact pre-state.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...ir.ast import Program
from ...ir.interp import IterationRecord, Machine, _Frame
from .chunking import ChunkSpec

__all__ = [
    "LoopTask",
    "IterationOutcome",
    "BackendRun",
    "BackendUnsupported",
    "ExecutionBackend",
    "execute_positions",
    "merge_outcomes",
    "last_scalars",
    "default_jobs",
]


class BackendUnsupported(RuntimeError):
    """Raised when a backend cannot execute a task it was handed."""


@dataclass
class LoopTask:
    """Everything a backend needs to execute one validated loop."""

    program: Program
    #: label of the target loop (``program.find_loop(label)`` resolves it)
    label: str
    #: program parameters visible to the interpreter
    params: dict
    #: machine-level array memory at loop entry (read-only for backends)
    pre_arrays: dict
    #: frame scalars at loop entry
    pre_scalars: dict
    #: frame array bindings: name -> (base array, offset)
    frame_arrays: dict
    #: iteration values, in sequential order (DO index values, or 1..T
    #: for while loops)
    iterations: list
    #: CIV names, in plan order
    civ_names: tuple = ()
    #: CIV prefix values per iteration position (precomputed by CIV-COMP)
    civ_values: dict = field(default_factory=dict)
    #: DO index variable (None for while loops)
    index_name: Optional[str] = None
    #: array -> merge strategy ('shared' | 'private' | 'reduction')
    decisions: dict = field(default_factory=dict)


@dataclass
class IterationOutcome:
    """Plain-data result of one iteration (picklable across processes)."""

    #: position in the iteration order (the merge key)
    position: int
    #: the iteration value itself
    iteration: int
    #: array -> sorted written locations
    writes: dict
    #: array -> sorted reduction-updated locations
    updates: dict
    #: array -> {location: final value} for every written location
    values: dict
    #: frame scalars after the iteration body ran
    scalars: dict
    #: array -> sorted expose-read locations (read before any local
    #: write); only populated when the caller asked for them
    #: (``record_exposed``) -- the speculative backend's shadow marks
    exposed: dict = field(default_factory=dict)


@dataclass
class BackendRun:
    """What a backend hands back to the executor."""

    #: final merged array memory
    arrays: dict
    #: frame scalars of the last iteration (empty when no iterations ran)
    final_scalars: dict
    #: how many chunks the iteration space was carved into
    chunks: int
    #: how many workers actually participated
    jobs: int
    #: speculation outcome document (speculative backend only):
    #: ``{"committed": bool, "rollbacks": int, "privatized": [...],
    #: "traced_accesses": int, "conflicts": [...]}``
    speculation: Optional[dict] = None


def default_jobs(jobs: Optional[int]) -> int:
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (got {jobs})")
        return jobs
    return os.cpu_count() or 2


class ExecutionBackend:
    """One way of running a validated loop's iterations for real."""

    #: registry key (and the ExecuteRequest ``backend`` value)
    name = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Can this backend run in the current environment?"""
        return True

    def supports(self, task: LoopTask) -> bool:
        """Can this backend execute *task*?  Backends with structural
        requirements (the vectorized backend) override this; the
        executor falls back to the sequential reference backend when it
        returns False."""
        return True

    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        raise NotImplementedError


# -- shared iteration machinery ----------------------------------------------


def execute_positions(
    program: Program,
    label: str,
    params: dict,
    pre_arrays: dict,
    pre_scalars: dict,
    frame_arrays: dict,
    iterations: Sequence[int],
    civ_names: Sequence[str],
    civ_values: dict,
    index_name: Optional[str],
    positions: Sequence[int],
    per_iteration_snapshot: bool,
    record_exposed: bool = False,
) -> list:
    """Execute the given iteration *positions* in isolation.

    Returns one :class:`IterationOutcome` per position, in the order
    given.  See the module docstring for the two snapshot modes.
    """
    loop = program.find_loop(label)
    if loop is None:
        raise ValueError(f"no loop labelled {label!r}")
    body = loop.body
    machine = Machine(program, params=params, arrays=pre_arrays)
    local = machine.arrays  # Machine copied pre_arrays into fresh lists
    outcomes = []
    for pos in positions:
        if per_iteration_snapshot:
            machine.arrays = local = copy.deepcopy(pre_arrays)
        iteration = iterations[pos]
        scalars = dict(pre_scalars)
        if index_name is not None:
            scalars[index_name] = iteration
        for name in civ_names:
            scalars[name] = civ_values[name][pos]
        frame = _Frame(scalars, frame_arrays)
        record = IterationRecord(iteration=iteration)
        machine._active_record = record
        try:
            machine._exec_body(body, frame)
        finally:
            machine._active_record = None
        values = {
            arr: {loc: local[arr][loc - 1] for loc in locs}
            for arr, locs in record.writes.items()
        }
        outcomes.append(
            IterationOutcome(
                position=pos,
                iteration=iteration,
                writes={a: sorted(l) for a, l in record.writes.items()},
                updates={a: sorted(l) for a, l in record.updates.items()},
                values=values,
                scalars=scalars,
                exposed=(
                    {a: sorted(l) for a, l in record.exposed_reads.items()}
                    if record_exposed
                    else {}
                ),
            )
        )
        if not per_iteration_snapshot:
            # Undo this iteration's writes: O(writes) restore instead of
            # an O(memory) snapshot for the next iteration.
            for arr, locs in record.writes.items():
                source = pre_arrays[arr]
                target = local[arr]
                for loc in locs:
                    target[loc - 1] = source[loc - 1]
    return outcomes


def merge_outcomes(
    pre_arrays: dict, outcomes: Sequence[IterationOutcome], decisions: dict
) -> dict:
    """Reconstruct the final memory from per-iteration outcomes.

    Applies the per-array merge rules in iteration order -- identical to
    the rules the executor always applied, so any backend's merged
    memory is comparable against the sequential ground truth.
    """
    merged = copy.deepcopy(pre_arrays)
    for out in sorted(outcomes, key=lambda o: o.position):
        for arr, locs in out.writes.items():
            strategy = decisions.get(arr, "private")
            updates = out.updates.get(arr, ())
            update_set = set(updates)
            values = out.values[arr]
            for loc in locs:
                if strategy == "reduction" and loc in update_set:
                    merged[arr][loc - 1] += (
                        values[loc] - pre_arrays[arr][loc - 1]
                    )
                else:
                    merged[arr][loc - 1] = values[loc]
    return merged


def last_scalars(outcomes: Sequence[IterationOutcome]) -> dict:
    """Frame scalars of the sequentially-last iteration (dynamic last
    value for scalars), or empty when no iterations ran."""
    if not outcomes:
        return {}
    return dict(max(outcomes, key=lambda o: o.position).scalars)
