"""The thread-pool backend.

Chunks of the iteration space are executed by a pool of threads, each
worker running its chunk through the shared undo-log machinery
(:func:`~repro.runtime.backends.base.execute_positions` in chunked
mode): one pre-state copy per chunk, O(writes) restore between
iterations.  Workers share the read-only pre-state and each build their
own :class:`~repro.ir.interp.Machine`, so the only cross-thread traffic
is the immutable task and the returned outcomes -- safe under the
package's GIL-guarded conventions.

On CPython the interpreter work itself serializes on the GIL; the
backend still wins wall-clock over the reference backend because the
chunked undo-log execution does asymptotically less copying, and it
wins real parallel speedups on GIL-free builds.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .base import (
    BackendRun,
    ExecutionBackend,
    LoopTask,
    default_jobs,
    execute_positions,
    last_scalars,
    merge_outcomes,
)
from .chunking import ChunkSpec, plan_chunks

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    name = "thread"

    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        jobs = default_jobs(jobs)
        chunks = plan_chunks(len(task.iterations), jobs, chunk)
        if not chunks:
            return BackendRun(
                arrays={k: list(v) for k, v in task.pre_arrays.items()},
                final_scalars={},
                chunks=0,
                jobs=jobs,
            )

        def run_chunk(positions):
            return execute_positions(
                task.program,
                task.label,
                task.params,
                task.pre_arrays,
                task.pre_scalars,
                task.frame_arrays,
                task.iterations,
                task.civ_names,
                task.civ_values,
                task.index_name,
                positions,
                per_iteration_snapshot=False,
            )

        workers = min(jobs, len(chunks))
        if workers == 1:
            chunk_outcomes = [run_chunk(c) for c in chunks]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                chunk_outcomes = list(pool.map(run_chunk, chunks))
        outcomes = [o for chunk_result in chunk_outcomes for o in chunk_result]
        return BackendRun(
            arrays=merge_outcomes(task.pre_arrays, outcomes, task.decisions),
            final_scalars=last_scalars(outcomes),
            chunks=len(chunks),
            jobs=workers,
        )
