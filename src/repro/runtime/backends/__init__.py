"""Pluggable execution backends for validated parallel loops.

The hybrid runtime decides *whether* a loop may run in parallel (and
under which per-array transforms); a backend decides *how* the
validated iterations actually execute:

=============  ==============================================================
``sequential``  in-order reference execution, one pre-state snapshot per
                iteration (the correctness baseline every other backend is
                differentially tested against)
``thread``      chunked execution on a thread pool with O(writes) undo-log
                state restoration between iterations
``process``     chunked execution on a persistent process pool; the
                pre-loop memory travels once per run through a
                shared-memory segment, so multi-core machines get real
                (GIL-free) parallelism
``numpy``       whole-loop vectorization for fully-parallel (all-``shared``)
                DO loops: one NumPy gather/compute/scatter per statement
``speculative`` optimistic LRPD execution: chunks run in parallel with
                shadow access marking, the LRPD test validates the marks,
                and a conflict rolls back via the undo log and re-executes
                the loop sequentially in order
=============  ==============================================================

Select a backend through :class:`repro.api.EngineConfig` /
``ExecuteRequest`` (``backend`` / ``jobs`` / ``chunk`` fields) or
directly on :class:`~repro.runtime.executor.HybridExecutor`.  The
differential suite (``tests/integration/test_backend_equivalence.py``)
holds every backend to interpreter-identical final memory.
"""

from __future__ import annotations

from .base import (
    BackendRun,
    BackendUnsupported,
    ExecutionBackend,
    IterationOutcome,
    LoopTask,
    execute_positions,
    last_scalars,
    merge_outcomes,
)
from .chunking import CHUNK_POLICIES, DYNAMIC_CHUNK_FACTOR, ChunkSpec, plan_chunks
from .processes import ProcessBackend
from .sequential import SequentialBackend
from .speculative import SpeculativeBackend
from .threads import ThreadBackend
from .vectorized import VectorizedBackend

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BackendRun",
    "BackendUnsupported",
    "ChunkSpec",
    "CHUNK_POLICIES",
    "DYNAMIC_CHUNK_FACTOR",
    "ExecutionBackend",
    "IterationOutcome",
    "LoopTask",
    "ProcessBackend",
    "SequentialBackend",
    "SpeculativeBackend",
    "ThreadBackend",
    "VectorizedBackend",
    "available_backends",
    "execute_positions",
    "get_backend",
    "last_scalars",
    "merge_outcomes",
    "plan_chunks",
]

#: Registry of selectable backends, in reference-first order.
BACKENDS = {
    SequentialBackend.name: SequentialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    VectorizedBackend.name: VectorizedBackend,
    SpeculativeBackend.name: SpeculativeBackend,
}

DEFAULT_BACKEND = SequentialBackend.name

#: Backends are stateless; share one instance per class.
_INSTANCES: dict = {}


def get_backend(name: str) -> ExecutionBackend:
    """The shared instance of the backend called *name*."""
    cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; valid: {list(BACKENDS)}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = cls()
    return instance


def available_backends() -> list:
    """Names of the backends usable in this environment."""
    return [name for name, cls in BACKENDS.items() if cls.available()]
