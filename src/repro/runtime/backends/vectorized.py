"""The vectorized NumPy backend for fully-parallel affine-ish loops.

When every array the runtime decided on is ``shared`` (full
independence proven statically, by a predicate cascade, or by an exact
test), iteration-isolated execution degenerates into data parallelism:
each statement can run across *all* iterations at once as one NumPy
operation -- gathers for reads (including indirect ``A[IDX[i]]``
subscripts), scatters for writes, plain vector arithmetic in between.

Soundness of the statement-serial, loop-vectorized order rests on the
independence the runtime already established:

* *output independence* -- no location is written by two different
  iterations, so a statement's scatter indices are duplicate-free and
  a location in the evolving state only ever holds its own iteration's
  value;
* *flow independence* -- no location written by one iteration is
  expose-read by another, so a gather from the evolving state returns
  either the pre-loop value or the reading iteration's own earlier
  write -- exactly what isolated execution would see.

The interpreter's integers are unbounded, NumPy's are not; a static
magnitude-bound pass over the loop body picks ``int64`` vectors when no
intermediate can leave the safe range and exact ``object`` vectors
otherwise (slower, still far faster than interpreting).

:meth:`VectorizedBackend.supports` is deliberately conservative (flat
DO bodies of scalar/array assignments, no branches, no division); the
executor transparently falls back to the sequential reference backend
on unsupported tasks and records that in the report.
"""

from __future__ import annotations

from typing import Optional

from ...ir.ast import (
    ArrayRead,
    AssignArray,
    AssignScalar,
    BinOp,
    Intrinsic,
    IRExpr,
    Num,
    UnaryOp,
    Var,
)
from .base import BackendRun, BackendUnsupported, ExecutionBackend, LoopTask
from .chunking import ChunkSpec

__all__ = ["VectorizedBackend"]

#: BinOp operators the vector evaluator implements.  ``/`` and ``%``
#: are excluded: a masked-off-by-nothing zero divisor must raise the
#: interpreter's error, which a vector evaluation cannot reproduce.
_VECTOR_BINOPS = frozenset(
    ("+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "and", "or")
)

#: Keep int64 intermediates comfortably clear of the wrap-around edge.
_INT64_SAFE_BOUND = 2**62


def _numpy():
    import numpy

    return numpy


class VectorizedBackend(ExecutionBackend):
    name = "numpy"

    @classmethod
    def available(cls) -> bool:
        try:
            _numpy()
        except ImportError:
            return False
        return True

    # -- structural support check ---------------------------------------
    def supports(self, task: LoopTask) -> bool:
        if task.index_name is None:
            return False  # while loops re-derive their trips sequentially
        # Every frame binding must be the identity (main-level loops):
        # written names are then the merge/decision names.
        for name, (base, offset) in task.frame_arrays.items():
            if name != base or offset != 0:
                return False
        loop = task.program.find_loop(task.label)
        if loop is None or not loop.body:
            return False
        for stmt in loop.body:
            if isinstance(stmt, AssignScalar):
                if not self._supported_expr(stmt.expr):
                    return False
            elif isinstance(stmt, AssignArray):
                if task.decisions.get(stmt.array) != "shared":
                    return False
                if not self._supported_expr(stmt.index):
                    return False
                if not self._supported_expr(stmt.expr):
                    return False
            else:
                return False  # branches, nested loops, calls: chunked backends
        return True

    def _supported_expr(self, expr: IRExpr) -> bool:
        if isinstance(expr, (Num, Var)):
            return True
        if isinstance(expr, ArrayRead):
            return self._supported_expr(expr.index)
        if isinstance(expr, BinOp):
            return (
                expr.op in _VECTOR_BINOPS
                and self._supported_expr(expr.left)
                and self._supported_expr(expr.right)
            )
        if isinstance(expr, UnaryOp):
            return expr.op in ("-", "not") and self._supported_expr(expr.arg)
        if isinstance(expr, Intrinsic):
            return expr.name in ("min", "max") and all(
                self._supported_expr(a) for a in expr.args
            )
        return False

    # -- magnitude bounds (int64 vs exact object arithmetic) -------------
    def _int64_is_safe(self, task: LoopTask, body) -> bool:
        """Conservative worst-case |value| tracking over the body."""
        scalar_bound: dict = {}
        for name, value in task.params.items():
            scalar_bound[name] = abs(value)
        for name, value in task.pre_scalars.items():
            scalar_bound[name] = abs(value)
        if task.iterations:
            scalar_bound[task.index_name] = max(
                abs(task.iterations[0]), abs(task.iterations[-1])
            )
        for name in task.civ_names:
            values = task.civ_values.get(name, [0])
            scalar_bound[name] = max(abs(v) for v in values) if values else 0
        array_bound = {
            name: max((abs(v) for v in values), default=0)
            for name, values in task.pre_arrays.items()
        }
        # Every pre-loop array (read or not) and every per-iteration
        # scalar vector is materialized as int64 up front; any
        # out-of-range initial value must force exact object mode.
        initial = list(array_bound.values()) + [
            scalar_bound.get(task.index_name, 0)
        ] + [scalar_bound[name] for name in task.civ_names]
        if any(b >= _INT64_SAFE_BOUND for b in initial):
            return False

        def bound(expr: IRExpr) -> int:
            if isinstance(expr, Num):
                return abs(expr.value)
            if isinstance(expr, Var):
                return scalar_bound.get(expr.name, _INT64_SAFE_BOUND)
            if isinstance(expr, ArrayRead):
                if bound(expr.index) >= _INT64_SAFE_BOUND:
                    return _INT64_SAFE_BOUND
                return array_bound.get(expr.array, _INT64_SAFE_BOUND)
            if isinstance(expr, BinOp):
                if expr.op in ("==", "!=", "<", "<=", ">", ">=", "and", "or"):
                    return 1
                left, right = bound(expr.left), bound(expr.right)
                if expr.op == "*":
                    return min(left * right, _INT64_SAFE_BOUND)
                return min(left + right, _INT64_SAFE_BOUND)
            if isinstance(expr, UnaryOp):
                return 1 if expr.op == "not" else bound(expr.arg)
            if isinstance(expr, Intrinsic):
                return max(bound(a) for a in expr.args)
            return _INT64_SAFE_BOUND

        for stmt in body:
            if isinstance(stmt, AssignScalar):
                b = bound(stmt.expr)
                if b >= _INT64_SAFE_BOUND:
                    return False
                scalar_bound[stmt.name] = b
            else:
                if bound(stmt.index) >= _INT64_SAFE_BOUND:
                    return False
                b = bound(stmt.expr)
                if b >= _INT64_SAFE_BOUND:
                    return False
                array_bound[stmt.array] = max(
                    array_bound.get(stmt.array, 0), b
                )
        return True

    # -- execution -------------------------------------------------------
    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        if not self.supports(task):
            raise BackendUnsupported(
                f"loop {task.label!r} is not vectorizable"
            )
        np = _numpy()
        n = len(task.iterations)
        if n == 0:
            return BackendRun(
                arrays={k: list(v) for k, v in task.pre_arrays.items()},
                final_scalars={},
                chunks=0,
                jobs=1,
            )
        body = task.program.find_loop(task.label).body
        dtype = (
            np.int64 if self._int64_is_safe(task, body) else object
        )

        def vec(value) -> "np.ndarray":
            out = np.empty(n, dtype=dtype)
            out[:] = value
            return out

        env: dict = {}
        env[task.index_name] = np.array(task.iterations, dtype=dtype)
        for name in task.civ_names:
            env[name] = np.array(task.civ_values[name][:n], dtype=dtype)
        state = {
            name: np.array(values, dtype=dtype)
            for name, values in task.pre_arrays.items()
        }

        def scalar_value(name: str):
            if name in env:
                return env[name]
            if name in task.pre_scalars:
                return task.pre_scalars[name]
            if name in task.params:
                return task.params[name]
            raise BackendUnsupported(f"unbound scalar {name!r}")

        def where(condition):
            return np.where(condition, vec(1), vec(0))

        def evaluate(expr: IRExpr):
            if isinstance(expr, Num):
                return vec(expr.value)
            if isinstance(expr, Var):
                value = scalar_value(expr.name)
                return value if isinstance(value, np.ndarray) else vec(value)
            if isinstance(expr, ArrayRead):
                index = evaluate(expr.index).astype(np.int64)
                return state[expr.array][index - 1]
            if isinstance(expr, BinOp):
                left = evaluate(expr.left)
                right = evaluate(expr.right)
                op = expr.op
                if op == "+":
                    return left + right
                if op == "-":
                    return left - right
                if op == "*":
                    return left * right
                if op == "and":
                    return where((left != 0) & (right != 0))
                if op == "or":
                    return where((left != 0) | (right != 0))
                comparison = {
                    "==": np.equal,
                    "!=": np.not_equal,
                    "<": np.less,
                    "<=": np.less_equal,
                    ">": np.greater,
                    ">=": np.greater_equal,
                }[op]
                return where(comparison(left, right))
            if isinstance(expr, UnaryOp):
                value = evaluate(expr.arg)
                return where(value == 0) if expr.op == "not" else -value
            if isinstance(expr, Intrinsic):
                values = [evaluate(a) for a in expr.args]
                fold = np.minimum if expr.name == "min" else np.maximum
                out = values[0]
                for value in values[1:]:
                    out = fold(out, value)
                return out
            raise BackendUnsupported(f"cannot vectorize {expr!r}")

        assigned: list = []
        for stmt in body:
            if isinstance(stmt, AssignScalar):
                env[stmt.name] = evaluate(stmt.expr)
                assigned.append(stmt.name)
            else:
                index = evaluate(stmt.index).astype(np.int64)
                value = evaluate(stmt.expr)
                state[stmt.array][index - 1] = value

        final_scalars = dict(task.pre_scalars)
        final_scalars[task.index_name] = int(task.iterations[-1])
        for name in task.civ_names:
            final_scalars[name] = int(task.civ_values[name][n - 1])
        for name in assigned:
            final_scalars[name] = int(env[name][-1])
        return BackendRun(
            arrays={
                name: [int(v) for v in values]
                for name, values in state.items()
            },
            final_scalars=final_scalars,
            chunks=1,
            jobs=1,
        )
