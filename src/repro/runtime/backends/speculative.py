"""The speculative (LRPD) backend: optimistic execution with rollback.

The paper's final fallback: when no predicate of the cascade could
validate a loop, run it optimistically in parallel anyway, *mark* every
array access made along the way, and let the LRPD test judge the
markings afterwards.  This module is that fallback as a real execution
backend:

1. **optimistic run** -- chunks of the iteration space execute in
   parallel through the shared undo-log machinery
   (:func:`~repro.runtime.backends.base.execute_positions` with
   ``record_exposed=True``), so every outcome carries its shadow marks:
   written locations and expose-read locations per array.  Large
   iteration spaces go to the persistent process pool (real, GIL-free
   parallelism); small ones stay on threads or inline, where pool
   overhead would dominate;
2. **commit attempt** -- the outcomes are applied to a working copy of
   memory in iteration order under the usual per-array merge rules,
   with an undo log recording each location's pre-value on first touch
   (O(writes) state, like the chunked backends' restore);
3. **validation** -- :func:`~repro.runtime.speculation.lrpd_marks`
   analyzes the marks.  Arrays the runtime already licensed as
   reductions are exempt (their delta-merge is valid regardless of
   overlap); for everything else a location written by one iteration
   and expose-read by another is a flow dependence and aborts;
4. **commit or rollback** -- on success the applied memory stands
   (write-write-only arrays are the privatized set, merged with last
   value).  On conflict the undo log restores the byte-identical
   pre-loop memory and the loop re-executes sequentially *in order*
   (:func:`sequential_execute`) -- the misspeculation penalty the
   paper's TLS numbers charge.

Soundness of commit: if the marks show no cross-iteration flow
dependence, every iteration's expose-reads saw pre-loop values in the
sequential execution too, so by induction over iterations each computes
the same writes as the sequential run, and the iteration-ordered merge
reconstructs exactly the sequential final memory.  The differential
equivalence suite holds this backend to that claim on every case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ...ir.interp import Machine, _Frame
from ..speculation import lrpd_marks
from .base import (
    BackendRun,
    ExecutionBackend,
    LoopTask,
    default_jobs,
    execute_positions,
    last_scalars,
)
from .chunking import ChunkSpec, plan_chunks
from . import processes

__all__ = [
    "SpeculativeBackend",
    "apply_outcomes",
    "rollback",
    "sequential_execute",
]

#: Below this many iterations the optimistic run stays inline: thread
#: (let alone process) dispatch would cost more than the loop body.
INLINE_MAX_ITERS = 16

#: From this many iterations on, the optimistic run uses the persistent
#: process pool -- real parallelism for the loops speculation exists to
#: win, while the small programs of the fuzz corpus stay on threads.
PROCESS_MIN_ITERS = 64


def apply_outcomes(
    working: dict, pre_arrays: dict, outcomes, decisions: dict
) -> list:
    """Apply speculative outcomes to *working* memory, in iteration
    order, under the per-array merge rules -- the commit attempt.

    Returns the undo log: ``(array, location, pre_value)`` per location
    in first-touch order, O(writes) in size.  *working* must start as a
    copy of *pre_arrays*; after a successful validation it holds
    exactly what :func:`~repro.runtime.backends.base.merge_outcomes`
    would have produced.
    """
    undo: list = []
    touched: set = set()
    for out in sorted(outcomes, key=lambda o: o.position):
        for arr, locs in out.writes.items():
            strategy = decisions.get(arr, "private")
            update_set = set(out.updates.get(arr, ()))
            values = out.values[arr]
            target = working[arr]
            pre = pre_arrays[arr]
            for loc in locs:
                if (arr, loc) not in touched:
                    touched.add((arr, loc))
                    undo.append((arr, loc, target[loc - 1]))
                if strategy == "reduction" and loc in update_set:
                    target[loc - 1] += values[loc] - pre[loc - 1]
                else:
                    target[loc - 1] = values[loc]
    return undo


def rollback(working: dict, undo: list) -> None:
    """Restore *working* from the undo log (reverse first-touch order):
    the O(writes) misspeculation recovery."""
    for arr, loc, value in reversed(undo):
        working[arr][loc - 1] = value


def sequential_execute(
    task: LoopTask, arrays: Optional[dict] = None
) -> tuple:
    """True in-order execution of the task's loop: every iteration
    observes all earlier iterations' writes and scalar updates.

    This is the rollback path's re-execution (and the speculation
    bench's timed baseline).  Returns ``(final_arrays, final_scalars)``.
    *arrays* defaults to the task's pre-loop memory; the input mapping
    itself is never mutated.
    """
    loop = task.program.find_loop(task.label)
    if loop is None:
        raise ValueError(f"no loop labelled {task.label!r}")
    machine = Machine(
        task.program,
        params=task.params,
        arrays=task.pre_arrays if arrays is None else arrays,
    )
    scalars = dict(task.pre_scalars)
    frame = _Frame(scalars, dict(task.frame_arrays))
    for iteration in task.iterations:
        if task.index_name is not None:
            scalars[task.index_name] = iteration
        machine._exec_body(loop.body, frame)
    return machine.arrays, dict(scalars)


class SpeculativeBackend(ExecutionBackend):
    name = "speculative"

    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        jobs = default_jobs(jobs)
        n = len(task.iterations)
        chunks = plan_chunks(n, jobs, chunk)
        if not chunks:
            return BackendRun(
                arrays={k: list(v) for k, v in task.pre_arrays.items()},
                final_scalars={},
                chunks=0,
                jobs=jobs,
                speculation=_doc(True, 0, (), 0, ()),
            )
        outcomes, workers = self._optimistic_run(task, chunks, jobs, n)

        # Licensed reductions are exempt from validation: their
        # delta-merge is sound however iterations overlap, so marking
        # them would only manufacture false conflicts.
        exempt = frozenset(
            arr for arr, s in task.decisions.items() if s == "reduction"
        )
        verdict = lrpd_marks(
            ((o.position, o.writes, o.exposed) for o in outcomes),
            privatize=True,
            skip=exempt,
        )

        working = {k: list(v) for k, v in task.pre_arrays.items()}
        undo = apply_outcomes(working, task.pre_arrays, outcomes,
                              task.decisions)
        if verdict.success:
            return BackendRun(
                arrays=working,
                final_scalars=last_scalars(outcomes),
                chunks=len(chunks),
                jobs=workers,
                speculation=_doc(
                    True, 0, verdict.privatized,
                    verdict.traced_accesses, (),
                ),
            )
        rollback(working, undo)
        arrays, final_scalars = sequential_execute(task, arrays=working)
        return BackendRun(
            arrays=arrays,
            final_scalars=final_scalars,
            chunks=len(chunks),
            jobs=workers,
            speculation=_doc(
                False, 1, (), verdict.traced_accesses, verdict.conflicts,
            ),
        )

    def _optimistic_run(
        self, task: LoopTask, chunks: list, jobs: int, n: int
    ) -> tuple:
        """(outcomes, participating workers) of the marked parallel run."""
        if (
            n >= PROCESS_MIN_ITERS
            and len(chunks) > 1
            and processes.ProcessBackend.available()
        ):
            outcomes = processes.execute_chunks(
                task, chunks, jobs, record_exposed=True
            )
            return outcomes, min(jobs, len(chunks))

        def run_chunk(positions):
            return execute_positions(
                task.program,
                task.label,
                task.params,
                task.pre_arrays,
                task.pre_scalars,
                task.frame_arrays,
                task.iterations,
                task.civ_names,
                task.civ_values,
                task.index_name,
                positions,
                per_iteration_snapshot=False,
                record_exposed=True,
            )

        workers = min(jobs, len(chunks))
        if workers == 1 or n <= INLINE_MAX_ITERS:
            chunk_outcomes = [run_chunk(c) for c in chunks]
            workers = 1
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                chunk_outcomes = list(pool.map(run_chunk, chunks))
        return [o for result in chunk_outcomes for o in result], workers


def _doc(committed, rollbacks, privatized, traced, conflicts) -> dict:
    """The BackendRun.speculation outcome document (JSON-ready)."""
    return {
        "committed": bool(committed),
        "conflicts": sorted(conflicts),
        "privatized": sorted(privatized),
        "rollbacks": int(rollbacks),
        "traced_accesses": int(traced),
    }
