"""The process-pool backend: real parallelism over shared-memory arrays.

Chunks are dispatched to a persistent pool of worker *processes*, so
interpreter work genuinely runs in parallel on multi-core machines (no
GIL).  Two mechanisms keep the per-run cost proportional to the work,
not the memory:

* **shared-memory pre-state** -- the pre-loop array memory is published
  once per run as a ``multiprocessing.shared_memory`` segment of packed
  int64 values; workers attach and materialize it once, instead of
  receiving a pickled copy with every chunk.  Values outside the int64
  range (the interpreter's integers are unbounded) fall back to
  pickling the arrays into the setup blob -- rare, and still correct;
* **per-worker setup cache** -- every chunk submission carries the same
  small setup blob (pickled program + scalars + the shared-memory
  layout) tagged with a run token; a worker materializes the state on
  the first chunk it sees for a token and reuses it for the rest of the
  run.

The pool itself outlives individual runs (created lazily, resized on
demand, shut down at interpreter exit), so back-to-back executions --
the equivalence suite, the benchmark harness -- pay process start-up
once, not per loop.
"""

from __future__ import annotations

import array as _array_mod
import atexit
import itertools
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Optional

from .base import (
    BackendRun,
    ExecutionBackend,
    LoopTask,
    default_jobs,
    execute_positions,
    last_scalars,
    merge_outcomes,
)
from .chunking import ChunkSpec, plan_chunks

__all__ = ["ProcessBackend", "execute_chunks"]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Distinct runs a worker keeps materialized before evicting the oldest.
_WORKER_CACHE_SIZE = 4

# -- persistent pool ---------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()
#: pools replaced by a larger resize, kept alive until interpreter exit
#: so concurrent callers still holding them can finish their in-flight
#: chunk maps (shutting them down mid-map would break the engine's
#: thread-safety contract)
_RETIRED_POOLS: list = []
_RUN_TOKENS = itertools.count()


def _pool(jobs: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < jobs:
            if _POOL is not None:
                _RETIRED_POOLS.append(_POOL)
            method = "fork" if "fork" in get_all_start_methods() else "spawn"
            _POOL = ProcessPoolExecutor(
                max_workers=jobs, mp_context=get_context(method)
            )
            _POOL_WORKERS = jobs
        return _POOL


def _shutdown_pool() -> None:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pools = list(_RETIRED_POOLS)
        if _POOL is not None:
            pools.append(_POOL)
        _RETIRED_POOLS.clear()
        _POOL = None
        _POOL_WORKERS = 0
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pool)


# -- shared-memory packing ---------------------------------------------------


def _pack_arrays(pre_arrays: dict):
    """(shm, layout) for int64-packable memory, or (None, None)."""
    order = sorted(pre_arrays)
    total = sum(len(pre_arrays[name]) for name in order)
    if total == 0:
        return None, None
    packed = _array_mod.array("q")
    try:
        for name in order:
            packed.extend(pre_arrays[name])
    except OverflowError:
        return None, None  # unbounded ints: fall back to pickled arrays
    shm = shared_memory.SharedMemory(create=True, size=len(packed) * 8)
    shm.buf[: len(packed) * 8] = packed.tobytes()
    layout = {}
    offset = 0
    for name in order:
        layout[name] = (offset, len(pre_arrays[name]))
        offset += len(pre_arrays[name])
    return shm, layout


def _unpack_arrays(shm_name: str, layout: dict) -> dict:
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        arrays = {}
        for name, (offset, length) in layout.items():
            values = _array_mod.array("q")
            values.frombytes(bytes(shm.buf[offset * 8 : (offset + length) * 8]))
            arrays[name] = values.tolist()
        return arrays
    finally:
        shm.close()


# -- worker side -------------------------------------------------------------

#: token -> materialized (program, pre_arrays, setup) state, per worker.
_WORKER_STATE: dict = {}


def _materialize(token: int, setup_blob: bytes) -> dict:
    state = _WORKER_STATE.get(token)
    if state is not None:
        return state
    setup = pickle.loads(setup_blob)
    if setup["shm_name"] is not None:
        setup["pre_arrays"] = _unpack_arrays(
            setup["shm_name"], setup["layout"]
        )
    while len(_WORKER_STATE) >= _WORKER_CACHE_SIZE:
        _WORKER_STATE.pop(next(iter(_WORKER_STATE)), None)
    _WORKER_STATE[token] = setup
    return setup


def _worker_chunk(payload) -> list:
    """Top-level chunk entry point (must be importable by workers)."""
    token, setup_blob, positions = payload
    state = _materialize(token, setup_blob)
    return execute_positions(
        state["program"],
        state["label"],
        state["params"],
        state["pre_arrays"],
        state["pre_scalars"],
        state["frame_arrays"],
        state["iterations"],
        state["civ_names"],
        state["civ_values"],
        state["index_name"],
        positions,
        per_iteration_snapshot=False,
        record_exposed=state.get("record_exposed", False),
    )


# -- parent side -------------------------------------------------------------


def execute_chunks(
    task: LoopTask, chunks: list, jobs: int, record_exposed: bool = False
) -> list:
    """Run *chunks* of *task* on the persistent process pool.

    Returns the flattened :class:`IterationOutcome` list in chunk order.
    ``record_exposed`` makes workers ship each iteration's expose-read
    marks back with its outcome -- the speculative backend's optimistic
    run uses this; the plain process backend leaves it off.
    """
    shm, layout = _pack_arrays(task.pre_arrays)
    setup = {
        "program": task.program,
        "label": task.label,
        "params": task.params,
        "pre_scalars": task.pre_scalars,
        "frame_arrays": task.frame_arrays,
        "iterations": task.iterations,
        "civ_names": task.civ_names,
        "civ_values": task.civ_values,
        "index_name": task.index_name,
        "record_exposed": record_exposed,
        "shm_name": shm.name if shm is not None else None,
        "layout": layout,
        "pre_arrays": None if shm is not None else task.pre_arrays,
    }
    token = next(_RUN_TOKENS)
    setup_blob = pickle.dumps(setup)
    try:
        pool = _pool(jobs)
        payloads = [(token, setup_blob, list(c)) for c in chunks]
        return [
            o
            for chunk_result in pool.map(_worker_chunk, payloads)
            for o in chunk_result
        ]
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()


class ProcessBackend(ExecutionBackend):
    name = "process"

    @classmethod
    def available(cls) -> bool:
        try:
            get_all_start_methods()
        except (ImportError, OSError):  # pragma: no cover - exotic hosts
            return False
        return True

    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        jobs = default_jobs(jobs)
        chunks = plan_chunks(len(task.iterations), jobs, chunk)
        if not chunks:
            return BackendRun(
                arrays={k: list(v) for k, v in task.pre_arrays.items()},
                final_scalars={},
                chunks=0,
                jobs=jobs,
            )
        outcomes = execute_chunks(task, chunks, jobs)
        return BackendRun(
            arrays=merge_outcomes(task.pre_arrays, outcomes, task.decisions),
            final_scalars=last_scalars(outcomes),
            chunks=len(chunks),
            jobs=min(jobs, len(chunks)),
        )
