"""The sequential reference backend.

Runs every iteration in order, in-process, each against a fresh deep
copy of the pre-loop memory -- a direct transliteration of what
:class:`~repro.runtime.executor.HybridExecutor` always did inline.  It
is deliberately the clearest (not the fastest) implementation: the
equivalence suite holds every other backend to this one's results, and
this one to the reference interpreter's.
"""

from __future__ import annotations

from typing import Optional

from .base import (
    BackendRun,
    ExecutionBackend,
    LoopTask,
    execute_positions,
    last_scalars,
    merge_outcomes,
)
from .chunking import ChunkSpec

__all__ = ["SequentialBackend"]


class SequentialBackend(ExecutionBackend):
    name = "sequential"

    def execute(
        self,
        task: LoopTask,
        jobs: Optional[int] = None,
        chunk: Optional[ChunkSpec] = None,
    ) -> BackendRun:
        outcomes = execute_positions(
            task.program,
            task.label,
            task.params,
            task.pre_arrays,
            task.pre_scalars,
            task.frame_arrays,
            task.iterations,
            task.civ_names,
            task.civ_values,
            task.index_name,
            range(len(task.iterations)),
            per_iteration_snapshot=True,
        )
        return BackendRun(
            arrays=merge_outcomes(task.pre_arrays, outcomes, task.decisions),
            final_scalars=last_scalars(outcomes),
            chunks=1,
            jobs=1,
        )
