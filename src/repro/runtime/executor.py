"""The conditional-parallelization executor (Section 5's generated code).

Given a :class:`~repro.core.analyzer.LoopPlan` and concrete inputs, the
executor reproduces what the paper's generated OpenMP code does:

1. precompute CIV prefix values via the loop slice (CIV-COMP), charging
   the slice's modelled cost;
2. evaluate the predicate cascades cheapest-first ("the first successful
   predicate disables the evaluation of the rest"), charging every leaf
   evaluation and loop iteration;
3. run BOUNDS-COMP for reductions without static bounds;
4. fall back to exact tests (memoized inspector USR evaluation, or
   LRPD-style speculation) when every predicate fails;
5. execute the loop -- in parallel under the per-array transforms
   (shared / privatized-with-last-value / reduction) when validated,
   sequentially otherwise -- and *check the result against the
   sequential ground truth*;
6. report timings from the simulated multiprocessor, including the
   runtime-test overhead that the paper's RTov columns measure.

Parallel execution is simulated faithfully: every iteration runs against
a snapshot of the pre-loop memory, then per-array merge rules reconstruct
the final state (direct writes for shared arrays, iteration-ordered
write-back for privatized arrays = dynamic last value, delta accumulation
for reductions).  A wrong analysis therefore produces a wrong final
memory and is caught by the ground-truth comparison.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

import time

from ..core.analyzer import ArrayPlan, LoopPlan
from ..ir.ast import Do, Program, While
from ..ir.interp import IterationRecord, Machine
from ..ir.scalars import expr_scalar_reads
from ..pdag import EvalStats
from ..usr import estimate_bounds
from .backends import DEFAULT_BACKEND, BACKENDS, ChunkSpec, LoopTask, get_backend
from .inspector import Inspector
from .scheduler import CostModel, schedule_parallel
from .speculation import lrpd_test

__all__ = ["ArrayDecision", "ExecutionReport", "HybridExecutor"]


@dataclass
class ArrayDecision:
    """Final runtime decision for one array."""

    array: str
    #: 'shared' | 'private' | 'reduction' | 'dependent'
    strategy: str
    #: how independence was established: 'static' | 'predicate' |
    #: 'inspector' | 'speculation' | 'failed'
    via: str
    passed_stage: Optional[str] = None


@dataclass
class ExecutionReport:
    """Everything measured for one execution of the planned loop."""

    label: str
    parallel: bool
    correct: bool
    seq_work: float
    iteration_costs: list[float] = field(default_factory=list)
    test_overhead: float = 0.0
    #: the O(1) part of the predicate tests (leaf evaluations)
    test_leaf_overhead: float = 0.0
    civ_overhead: float = 0.0
    bounds_overhead: float = 0.0
    inspector_overhead: float = 0.0
    speculation_overhead: float = 0.0
    decisions: dict[str, ArrayDecision] = field(default_factory=dict)
    used_speculation: bool = False
    misspeculated: bool = False
    #: committed speculative backend runs (LRPD validation passed)
    speculation_commits: int = 0
    #: rolled-back speculative backend runs (conflict -> undo-log
    #: restore -> in-order sequential re-execution)
    speculation_rollbacks: int = 0
    #: arrays the LRPD test privatized during a committed speculative
    #: run (write-write conflicts only, merged with last value)
    speculation_privatized: list = field(default_factory=list)
    #: execution backend the caller requested
    backend: str = DEFAULT_BACKEND
    #: backend that actually ran the loop ('' when the loop stayed
    #: sequential; differs from ``backend`` after a fallback, e.g. a
    #: non-vectorizable loop requested on 'numpy')
    backend_used: str = ""
    #: workers that participated in the real parallel execution
    jobs: int = 1
    #: chunks the iteration space was carved into
    chunks: int = 0
    #: real wall-clock seconds spent inside the backend
    wall_s: float = 0.0

    @property
    def total_overhead(self) -> float:
        return (
            self.test_overhead
            + self.civ_overhead
            + self.bounds_overhead
            + self.inspector_overhead
            + self.speculation_overhead
        )

    @property
    def serial_overhead(self) -> float:
        """O(1) predicate leaves: evaluated once, before the loop."""
        return self.test_leaf_overhead

    @property
    def parallelizable_overhead(self) -> float:
        """Work the paper's runtime distributes across processors:
        O(N) predicate iterations (and/or-reduced in parallel), the CIV
        precomputation slice, BOUNDS-COMP's MIN/MAX reduction, LRPD
        marking, and hoisted inspector evaluations."""
        return self.total_overhead - self.test_leaf_overhead

    def parallel_time(self, procs: int, cost: CostModel) -> float:
        """Simulated makespan on *procs* processors, overhead included."""
        if not self.parallel or procs <= 1:
            return self.seq_work + (self.total_overhead if self.parallel else 0.0)
        timing = schedule_parallel(self.iteration_costs, procs, cost)
        eff = cost.effective_procs(min(procs, max(1, len(self.iteration_costs))))
        time = (
            timing.time
            + self.serial_overhead
            + self.parallelizable_overhead / eff
        )
        if self.misspeculated:
            time += self.seq_work  # wasted speculative run re-done sequentially
        return time

    def speedup(self, procs: int, cost: CostModel) -> float:
        par = self.parallel_time(procs, cost)
        return self.seq_work / par if par > 0 else 1.0

    def overhead_time(self, procs: int, cost: CostModel) -> float:
        """The overhead's contribution to the parallel makespan: serial
        O(1) tests plus the parallelized tests' per-processor share."""
        if procs <= 1:
            return self.total_overhead
        eff = cost.effective_procs(min(procs, max(1, len(self.iteration_costs))))
        return self.serial_overhead + self.parallelizable_overhead / eff

    def rtov(self, procs: int, cost: CostModel) -> float:
        """Runtime-test overhead as a fraction of parallel time (RTov)."""
        par = self.parallel_time(procs, cost)
        return self.overhead_time(procs, cost) / par if par > 0 else 0.0


class _LoopCapture:
    """State collected by the interpreter hook at the target loop."""

    def __init__(self) -> None:
        self.pre_arrays: Optional[dict[str, list[int]]] = None
        self.pre_scalars: Optional[dict[str, int]] = None
        self.frame_arrays: dict[str, tuple] = {}
        self.index_name: Optional[str] = None
        self.iterations: list[int] = []
        self.records: list[IterationRecord] = []
        self.iter_arrays: list[dict[str, list[int]]] = []
        self.iter_scalars: list[dict[str, int]] = []
        self.civ_values: dict[str, list[int]] = {}
        self.seen = False


class HybridExecutor:
    """Executes one planned loop under the hybrid runtime."""

    def __init__(
        self,
        program: Program,
        plan: LoopPlan,
        cost: Optional[CostModel] = None,
        inspector: Optional[Inspector] = None,
        exact_strategy: str = "inspector",
        backend: str = DEFAULT_BACKEND,
        jobs: Optional[int] = None,
        chunk=None,
    ):
        self.program = program
        self.plan = plan
        self.cost = cost or CostModel()
        #: shared across runs: models HOIST-USR amortization
        self.inspector = inspector or Inspector()
        #: exact-test fallback: 'inspector' (hoistable USR evaluation) or
        #: 'tls' (LRPD speculation) -- Section 5's "if we can amortize the
        #: cost ... we use direct evaluation, otherwise we use TLS"
        if exact_strategy not in ("inspector", "tls"):
            raise ValueError(f"bad exact_strategy {exact_strategy!r}")
        self.exact_strategy = exact_strategy
        #: real execution backend for validated parallel loops
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; valid: {list(BACKENDS)}"
            )
        self.backend = backend
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1 (got {jobs})")
        self.jobs = jobs
        self.chunk = ChunkSpec.from_json(chunk)

    # -- public API ----------------------------------------------------------
    def run(self, params: dict, arrays: dict) -> ExecutionReport:
        label = self.plan.label
        # 1. Sequential ground-truth run (also captures pre-loop state,
        #    per-iteration work/accesses, and CIV prefix values).
        capture = _LoopCapture()
        seq_machine = Machine(
            self.program,
            params=params,
            arrays=copy.deepcopy(arrays),
            trace_label=label,
            loop_executor=lambda m, s, f: self._capturing_seq(m, s, f, capture),
            loop_executor_label=label,
        )
        seq_result = seq_machine.run()
        if not capture.seen:
            raise ValueError(f"target loop {label!r} never executed")
        seq_arrays = seq_result.arrays
        iter_costs = [float(r.work) for r in capture.records]
        seq_work = float(sum(iter_costs))

        report = ExecutionReport(
            label=label,
            parallel=False,
            correct=True,
            seq_work=seq_work,
            iteration_costs=iter_costs,
            backend=self.backend,
        )

        # Loops with scalar flow dependences or unanalyzable constructs
        # run sequentially unless speculation is explicitly viable; the
        # paper's generated code would not have parallelized them.
        analysis = self.plan.analysis
        scalar_dep = bool(analysis and analysis.scalar_flow_deps - _civ_names(self.plan))
        if self.plan.approximate or scalar_dep:
            report.decisions["<loop>"] = ArrayDecision("<loop>", "dependent", "failed")
            # Unanalyzable array accesses are exactly what the LRPD
            # marks validate at runtime, so the speculative backend may
            # still try the loop.  A cross-iteration *scalar* flow
            # dependence stays a hard stop: scalar accesses carry no
            # shadow marks, so speculation could not detect the
            # conflict.
            if (
                self.backend == "speculative"
                and not scalar_dep
                and len(capture.iterations) > 1
            ):
                return self._speculative_fallback(
                    params, arrays, capture, report.decisions, report,
                    seq_arrays,
                )
            return report

        # 2. Runtime environment for predicates: pre-loop state + CIV
        #    prefixes (paying the CIV-COMP slice cost).
        env: dict = dict(params)
        env.update({k: v for k, v in capture.pre_scalars.items()})
        for name, data in capture.pre_arrays.items():
            env[name] = data
        if self.plan.civs:
            slice_fraction = self._civ_slice_fraction()
            report.civ_overhead = seq_work * slice_fraction
            for info in self.plan.civs:
                env[info.prefix_array] = capture.civ_values[info.name]
        if self.plan.is_while and self.plan.trip_symbol:
            env[self.plan.trip_symbol] = len(capture.iterations)

        # 3. Per-array decisions via cascades / exact fallbacks.
        stats = EvalStats()
        decisions: dict[str, ArrayDecision] = {}
        all_parallel = True
        from ..ir.interp import LoopTrace

        trace = LoopTrace(label, list(capture.records))
        for array, aplan in self.plan.arrays.items():
            decision = self._decide_array(array, aplan, env, stats, report, trace)
            decisions[array] = decision
            if decision.strategy == "dependent":
                all_parallel = False
        report.test_overhead = float(stats.total_steps)
        report.test_leaf_overhead = float(stats.leaf_evals)
        report.decisions = decisions

        if not all_parallel:
            if self.backend == "speculative" and len(capture.iterations) > 1:
                # The cascade failed end to end: the paper's last resort
                # is to run the loop speculatively anyway and let the
                # LRPD test judge the attempt after the fact.
                return self._speculative_fallback(
                    params, arrays, capture, decisions, report, seq_arrays
                )
            # Exact tests failed or proved dependence: sequential run.
            return report

        # 4. Parallel overlay execution + ground-truth validation.
        strategies = {name: d.strategy for name, d in decisions.items()}
        par_arrays = self._parallel_execute(
            params, arrays, capture, strategies, report
        )
        # A validated loop's speculative run always commits (the
        # predicates that validated it are sound); guard anyway so a
        # rollback is never misreported as a parallel execution.
        report.parallel = report.speculation_rollbacks == 0
        report.correct = par_arrays == seq_arrays
        return report

    # -- sequential capture -----------------------------------------------------
    def _capturing_seq(self, machine: Machine, stmt, frame, capture: _LoopCapture):
        capture.seen = True
        capture.pre_arrays = copy.deepcopy(machine.arrays)
        capture.pre_scalars = dict(frame.scalars)
        capture.frame_arrays = dict(frame.arrays)
        capture.index_name = stmt.index if isinstance(stmt, Do) else None
        civ_names = [info.name for info in self.plan.civs]
        for info in self.plan.civs:
            capture.civ_values[info.name] = []

        def record_civs():
            for info in self.plan.civs:
                capture.civ_values[info.name].append(
                    frame.scalars.get(info.name, 0)
                )

        if isinstance(stmt, Do):
            lower = machine._eval(stmt.lower, frame)
            upper = machine._eval(stmt.upper, frame)
            indices = list(range(lower, upper + 1))
            for i in indices:
                frame.scalars[stmt.index] = i
                record_civs()
                rec = IterationRecord(iteration=i)
                prev = machine._active_record
                machine._active_record = rec
                machine._exec_body(stmt.body, frame)
                machine._active_record = prev
                capture.records.append(rec)
                capture.iterations.append(i)
            record_civs()  # final CIV values (the paper's CIV@5)
        elif isinstance(stmt, While):
            count = 0
            while machine._eval(stmt.cond, frame) != 0:
                count += 1
                record_civs()
                rec = IterationRecord(iteration=count)
                prev = machine._active_record
                machine._active_record = rec
                machine._exec_body(stmt.body, frame)
                machine._active_record = prev
                capture.records.append(rec)
                capture.iterations.append(count)
            record_civs()
        else:
            raise TypeError(f"unsupported loop {stmt!r}")

    # -- decision logic ------------------------------------------------------------
    def _decide_array(
        self,
        array: str,
        aplan: ArrayPlan,
        env: dict,
        stats: EvalStats,
        report: ExecutionReport,
        trace=None,
    ) -> ArrayDecision:
        if aplan.needs_exact:
            return self._exact_fallback(array, aplan, env, report, trace)
        via = "static"
        passed: Optional[str] = None
        output_passed = aplan.output is None and aplan.transform == "shared"
        for kind, cascade in aplan.runtime_cascades():
            outcome = cascade.evaluate(env)
            if outcome.stats.loop_iterations > 0:
                # O(N)+ tests: the paper evaluates them as parallel
                # and/or-reductions; count everything as loop work.
                stats.loop_iterations += outcome.stats.total_steps
            else:
                stats.leaf_evals += outcome.stats.leaf_evals
            if outcome.passed:
                via = "predicate"
                passed = outcome.stage_label
                if kind == "output":
                    output_passed = True
            elif kind == "flow":
                # Flow predicate failed: only an exact test can save us.
                return self._exact_fallback(array, aplan, env, report, trace)
            else:
                # Output predicate failed: fall back to privatization.
                via = "predicate"
                return ArrayDecision(array, "private", via, passed)
        if aplan.transform == "private" and output_passed:
            # Output independence proven at runtime: no privatization
            # needed, iterations may write the shared array directly.
            return ArrayDecision(array, "shared", via, passed)
        if aplan.transform == "reduction":
            if aplan.rred is not None:
                outcome = aplan.rred.evaluate(env)
                if outcome.stats.loop_iterations > 0:
                    stats.loop_iterations += outcome.stats.total_steps
                else:
                    stats.leaf_evals += outcome.stats.leaf_evals
                if outcome.passed:
                    # Updates proven independent: direct shared access.
                    return ArrayDecision(array, "shared", "predicate", outcome.stage_label)
            if not aplan.reduction_additive:
                # Maybe-overlapping non-additive updates cannot be
                # delta-merged; only an exact test can still validate.
                return self._exact_fallback(array, aplan, env, report, trace)
            if aplan.needs_bounds_comp:
                self._run_bounds_comp(array, env, report)
            return ArrayDecision(array, "reduction", via, passed)
        return ArrayDecision(array, aplan.transform, via, passed)

    def _run_bounds_comp(self, array: str, env: dict, report: ExecutionReport):
        analysis = self.plan.analysis
        if analysis is None or array not in analysis.summaries:
            return
        from ..usr import usr_recurrence

        ls = analysis.summaries[array]
        rw_total = usr_recurrence(ls.index, ls.lower, ls.upper, ls.per_iteration.rw)
        result = estimate_bounds(rw_total, env)
        report.bounds_overhead += float(result.iterations)

    def _exact_fallback(
        self,
        array: str,
        aplan: ArrayPlan,
        env: dict,
        report: ExecutionReport,
        trace=None,
    ) -> ArrayDecision:
        # Hoistable inspector evaluation (its memo models the paper's
        # HOIST-USR loops) or LRPD speculation, per the chosen strategy.
        usr = aplan.exact_usr if self.exact_strategy == "inspector" else None
        if usr is not None:
            try:
                result = self.inspector.check_empty(usr, env)
            except (KeyError, TypeError, ValueError):
                result = None
            if result is not None:
                report.inspector_overhead += float(result.cost)
                if result.empty:
                    return ArrayDecision(array, aplan.transform, "inspector")
                return ArrayDecision(array, "dependent", "inspector")
        # LRPD speculation: the marking overhead is proportional to the
        # traced accesses; a misspeculation re-runs the loop serially
        # (charged by ExecutionReport.parallel_time).
        if trace is not None:
            report.used_speculation = True
            spec = lrpd_test(trace)
            report.speculation_overhead += float(spec.traced_accesses)
            if spec.success:
                strategy = "private" if array in spec.privatized else "shared"
                return ArrayDecision(array, strategy, "speculation")
            report.misspeculated = True
            return ArrayDecision(array, "dependent", "speculation")
        return ArrayDecision(array, "dependent", "failed")

    # -- parallel overlay execution ------------------------------------------------
    def _resolve_backend(self, task: LoopTask):
        """The backend that will actually run *task*: the requested one,
        or the sequential reference backend when the request cannot be
        honoured (unavailable in this environment, or structurally
        unsupported -- e.g. a non-vectorizable loop on 'numpy')."""
        requested = get_backend(self.backend)
        if type(requested).available() and requested.supports(task):
            return requested
        return get_backend("sequential")

    def _freeze_task(
        self,
        machine: Machine,
        stmt,
        frame,
        capture: _LoopCapture,
        strategies: dict[str, str],
    ) -> LoopTask:
        """Freeze the loop's entry state as a backend-executable task."""
        return LoopTask(
            program=self.program,
            label=self.plan.label,
            params=dict(machine.params),
            pre_arrays=copy.deepcopy(machine.arrays),
            pre_scalars=dict(frame.scalars),
            frame_arrays=dict(frame.arrays),
            iterations=list(capture.iterations),
            civ_names=tuple(info.name for info in self.plan.civs),
            civ_values=capture.civ_values,
            index_name=stmt.index if isinstance(stmt, Do) else None,
            decisions=dict(strategies),
        )

    def capture_task(self, params: dict, arrays: dict) -> LoopTask:
        """Freeze the target loop of one concrete run as a
        :class:`LoopTask` without executing any backend.

        The task carries the pre-loop memory, the captured iteration
        list and CIV prefixes; ``decisions`` is left empty (callers pick
        their own merge strategies).  The speculation benchmark times
        its in-order sequential baseline over exactly this task.
        """
        capture = _LoopCapture()
        machine = Machine(
            self.program,
            params=params,
            arrays=copy.deepcopy(arrays),
            loop_executor=lambda m, s, f: self._capturing_seq(m, s, f, capture),
            loop_executor_label=self.plan.label,
        )
        machine.run()
        if not capture.seen:
            raise ValueError(f"target loop {self.plan.label!r} never executed")
        return LoopTask(
            program=self.program,
            label=self.plan.label,
            params=dict(machine.params),
            pre_arrays=capture.pre_arrays,
            pre_scalars=dict(capture.pre_scalars),
            frame_arrays=dict(capture.frame_arrays),
            iterations=list(capture.iterations),
            civ_names=tuple(info.name for info in self.plan.civs),
            civ_values=capture.civ_values,
            index_name=capture.index_name,
        )

    @staticmethod
    def _note_speculation(report: ExecutionReport, run) -> None:
        """Fold a backend run's speculation outcome into the report."""
        doc = run.speculation
        if doc is None:
            return
        report.used_speculation = True
        report.speculation_overhead += float(doc["traced_accesses"])
        if doc["committed"]:
            report.speculation_commits += 1
        else:
            report.speculation_rollbacks += doc["rollbacks"]
            report.misspeculated = True
        if doc["privatized"]:
            report.speculation_privatized = sorted(
                set(report.speculation_privatized) | set(doc["privatized"])
            )

    def _parallel_execute(
        self,
        params: dict,
        arrays: dict,
        capture: _LoopCapture,
        strategies: dict[str, str],
        report: ExecutionReport,
    ) -> dict[str, list[int]]:
        """Re-run the whole program, delegating the target loop to the
        selected execution backend (iteration-isolated memory, per-array
        merge rules) and recording the real wall-clock cost."""

        def parallel_hook(machine: Machine, stmt, frame):
            task = self._freeze_task(machine, stmt, frame, capture, strategies)
            backend = self._resolve_backend(task)
            started = time.perf_counter()
            run = backend.execute(task, jobs=self.jobs, chunk=self.chunk)
            report.wall_s += time.perf_counter() - started
            report.backend_used = backend.name
            report.jobs = max(report.jobs, run.jobs)
            report.chunks += run.chunks
            self._note_speculation(report, run)
            machine.arrays = run.arrays
            frame.scalars.update(run.final_scalars)
            if isinstance(stmt, Do) and capture.iterations:
                frame.scalars[stmt.index] = capture.iterations[-1]

        machine = Machine(
            self.program,
            params=params,
            arrays=copy.deepcopy(arrays),
            loop_executor=parallel_hook,
            loop_executor_label=self.plan.label,
        )
        result = machine.run()
        return result.arrays

    def _speculative_fallback(
        self,
        params: dict,
        arrays: dict,
        capture: _LoopCapture,
        decisions: dict[str, ArrayDecision],
        report: ExecutionReport,
        seq_arrays: dict,
    ) -> ExecutionReport:
        """Run the loop on the speculative backend after the cascade
        failed: commit makes the run parallel after the fact; a conflict
        rolls back and re-executes sequentially (the loop stays correct
        either way, only the timing differs)."""
        strategies = {
            name: ("private" if d.strategy == "dependent" else d.strategy)
            for name, d in decisions.items()
        }
        par_arrays = self._parallel_execute(
            params, arrays, capture, strategies, report
        )
        committed = (
            report.speculation_commits > 0
            and report.speculation_rollbacks == 0
        )
        report.parallel = committed
        report.correct = par_arrays == seq_arrays
        for name, d in decisions.items():
            if d.strategy != "dependent":
                continue
            if committed:
                strategy = (
                    "private"
                    if name in report.speculation_privatized
                    else "shared"
                )
                report.decisions[name] = ArrayDecision(
                    name, strategy, "speculation"
                )
            else:
                report.decisions[name] = ArrayDecision(
                    name, "dependent", "speculation"
                )
        return report

    # -- CIV slice cost ----------------------------------------------------------
    def _civ_slice_fraction(self) -> float:
        """Fraction of body statements in the CIV computation slice.

        Backward slice over scalar names starting from CIV increments and
        the loop/while conditions that guard them; the paper's track
        benchmark pays ~47% because the slice covers most of the body.
        """
        loop = self.program.find_loop(self.plan.label)
        if loop is None:
            return 0.1
        civ_names = {info.name for info in self.plan.civs}
        if self.plan.is_while and isinstance(loop, While):
            civ_names |= expr_scalar_reads(loop.cond)
        relevant: set[str] = set(civ_names)
        body = loop.body
        total, in_slice = _slice_sizes(body, relevant)
        if total == 0:
            return 0.1
        return max(0.05, min(1.0, in_slice / total))


def _civ_names(plan: LoopPlan) -> frozenset[str]:
    return frozenset(info.name for info in plan.civs)


def _slice_sizes(body, relevant: set[str]) -> tuple[int, int]:
    """(total statements, statements in the backward slice of *relevant*).

    Fixpoint over scalar names: a statement is in the slice when it
    assigns a relevant scalar or controls one; its read scalars become
    relevant too.
    """
    from ..ir.ast import AssignArray, AssignScalar, Call, Do, If, While as W

    def stmts_of(stmts):
        out = []
        for s in stmts:
            out.append(s)
            if isinstance(s, If):
                out.extend(stmts_of(s.then_body))
                out.extend(stmts_of(s.else_body))
            elif isinstance(s, (Do, W)):
                out.extend(stmts_of(s.body))
        return out

    flat = stmts_of(body)
    changed = True
    in_slice: set[int] = set()
    while changed:
        changed = False
        for idx, s in enumerate(flat):
            if idx in in_slice:
                continue
            hit = False
            if isinstance(s, AssignScalar) and s.name in relevant:
                hit = True
            elif isinstance(s, (Do, W)):
                inner = stmts_of(s.body)
                if any(
                    isinstance(x, AssignScalar) and x.name in relevant for x in inner
                ):
                    hit = True
            elif isinstance(s, If):
                inner = stmts_of(s.then_body) + stmts_of(s.else_body)
                if any(
                    isinstance(x, AssignScalar) and x.name in relevant for x in inner
                ):
                    hit = True
            if hit:
                in_slice.add(idx)
                for name in _stmt_scalar_reads(s):
                    if name not in relevant:
                        relevant.add(name)
                        changed = True
    return (len(flat), len(in_slice))


def _stmt_scalar_reads(s) -> set[str]:
    from ..ir.scalars import _stmt_reads

    return _stmt_reads(s)

