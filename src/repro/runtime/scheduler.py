"""Simulated multiprocessor and cost model.

The paper measures wall-clock time on a quad-core Intel and an 8x2-core
POWER5+.  Our substitute is a deterministic discrete cost model:

* every interpreted IR statement costs one work unit;
* a parallel loop schedules its iterations over ``procs`` processors in
  contiguous blocks, paying a per-processor *spawn overhead*;
* runtime tests (predicate cascades, BOUNDS-COMP, CIV slices, inspector
  evaluation) charge their measured work units up front;
* beyond ``bandwidth_knee`` processors, additional processors contribute
  with reduced efficiency -- modelling the paper's observation that
  speedups flatten from 8 to 16 processors because both cores of a chip
  share memory bandwidth.

The *shape* of the evaluation (who wins, where overheads matter, how
curves scale) depends only on these relative costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["CostModel", "schedule_parallel", "parallel_time", "ParallelTiming"]


@dataclass(frozen=True)
class CostModel:
    """Knobs of the simulated machine.

    ``spawn_overhead`` is charged once per parallel region per processor
    involved (thread fork/join); ``work_unit_ms`` converts work units to
    the milliseconds used in the tables' granularity columns.
    """

    spawn_overhead: float = 40.0
    work_unit_ms: float = 0.001
    bandwidth_knee: int = 8
    bandwidth_efficiency: float = 0.55

    def effective_procs(self, procs: int) -> float:
        """Processors discounted for shared-bandwidth effects."""
        if procs <= self.bandwidth_knee:
            return float(procs)
        extra = procs - self.bandwidth_knee
        return self.bandwidth_knee + extra * self.bandwidth_efficiency


@dataclass
class ParallelTiming:
    """Outcome of scheduling one parallel loop execution."""

    time: float
    per_proc: list[float] = field(default_factory=list)
    spawn: float = 0.0

    def __repr__(self) -> str:
        return f"ParallelTiming(time={self.time:.1f}, spawn={self.spawn:.1f})"


def schedule_parallel(
    iteration_costs: Sequence[float], procs: int, cost: CostModel
) -> ParallelTiming:
    """Block-schedule iterations over processors; returns makespan.

    Contiguous blocks mirror OpenMP's static schedule, the paper's
    generated code.  The makespan is the maximum per-processor load plus
    the spawn overhead (zero when ``procs == 1`` or the loop is empty).
    """
    n = len(iteration_costs)
    if n == 0:
        return ParallelTiming(time=0.0)
    procs = max(1, min(procs, n))
    if procs == 1:
        total = float(sum(iteration_costs))
        return ParallelTiming(time=total, per_proc=[total])
    base = n // procs
    extra = n % procs
    loads: list[float] = []
    start = 0
    for p in range(procs):
        size = base + (1 if p < extra else 0)
        loads.append(float(sum(iteration_costs[start:start + size])))
        start += size
    spawn = cost.spawn_overhead
    # Shared-bandwidth discount beyond the knee (Section 6.4: speedups
    # flatten from 8 to 16 processors).
    stretch = procs / cost.effective_procs(procs)
    return ParallelTiming(
        time=max(loads) * stretch + spawn, per_proc=loads, spawn=spawn
    )


def parallel_time(
    total_work: float, trips: int, procs: int, cost: CostModel
) -> float:
    """Analytic makespan for a balanced loop of ``trips`` iterations.

    Used by the evaluation harness where only aggregate loop work is
    known; applies the bandwidth-discounted processor count.
    """
    if trips <= 0 or total_work <= 0:
        return 0.0
    usable = min(procs, trips)
    eff = cost.effective_procs(usable)
    per_iter = total_work / trips
    # Longest processor executes ceil(trips / usable) iterations.
    import math

    chunk = math.ceil(trips / usable)
    makespan = chunk * per_iter
    # Bandwidth discount stretches the busy time.
    makespan *= usable / eff
    if procs > 1:
        makespan += cost.spawn_overhead
    return makespan
