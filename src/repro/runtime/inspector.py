"""Exact runtime USR evaluation (the inspector/executor fallback).

When predicates fail but the independence USR's inputs are available
before the loop, the executor can evaluate the USR exactly: the loop is
independent iff the set is empty.  The cost is proportional to the
number of memory locations materialized -- the very overhead the
predicate translation of Section 3 exists to avoid -- so this path is
only chosen when it can be *hoisted*: the paper's HOIST-USR loops
(e.g. apsi's RUN_DO20, dyfesm's MXMULT_DO10) execute many times with
unchanged inputs, letting one evaluation be amortized via memoization.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..symbolic import EvalEnv
from ..usr import CallSite, Gate, Intersect, Leaf, Recurrence, Subtract, Union, USR

__all__ = ["InspectorResult", "evaluate_usr_cost", "Inspector"]


@dataclass
class InspectorResult:
    """Outcome of an exact USR evaluation."""

    empty: bool
    #: locations materialized: the modelled cost of the evaluation
    cost: int
    #: True when this call was served from the memo (hoisted evaluation)
    memoized: bool = False


def evaluate_usr_cost(usr: USR, env: EvalEnv) -> tuple[set[int], int]:
    """Evaluate *usr* exactly, returning (set, cost).

    Cost counts every element of every intermediate set -- the
    O(accesses) behaviour of direct USR interpretation.
    """
    if isinstance(usr, Leaf):
        out: set[int] = set()
        for lmad in usr.lmads:
            out |= lmad.enumerate(env)
        return out, max(1, len(out))
    if isinstance(usr, Gate):
        if usr.cond.evaluate(env):
            inner, cost = evaluate_usr_cost(usr.body, env)
            return inner, cost + 1
        return set(), 1
    if isinstance(usr, Union):
        out = set()
        cost = 0
        for a in usr.args:
            part, c = evaluate_usr_cost(a, env)
            out |= part
            cost += c + len(part)
        return out, cost
    if isinstance(usr, Intersect):
        out, cost = evaluate_usr_cost(usr.args[0], env)
        for a in usr.args[1:]:
            part, c = evaluate_usr_cost(a, env)
            out &= part
            cost += c + len(part)
        return out, cost
    if isinstance(usr, Subtract):
        left, c1 = evaluate_usr_cost(usr.left, env)
        right, c2 = evaluate_usr_cost(usr.right, env)
        return left - right, c1 + c2 + len(right)
    if isinstance(usr, CallSite):
        inner, cost = evaluate_usr_cost(usr.body, env)
        return inner, cost + 1
    if isinstance(usr, Recurrence):
        lo = usr.lower.evaluate(env)
        hi = usr.upper.evaluate(env)
        out = set()
        cost = 0
        child = dict(env)
        for i in range(lo, hi + 1):
            child[usr.index] = i
            part, c = evaluate_usr_cost(usr.body, child)
            out |= part
            cost += c + 1
        return out, cost
    raise TypeError(f"unknown USR node {usr!r}")


class Inspector:
    """Memoizing exact-USR evaluator (models HOIST-USR amortization).

    The memo key is the tuple of the USR's free-symbol values in the
    environment; repeated executions of the same loop with unchanged
    inputs (the hoistable case) pay the evaluation once.
    """

    def __init__(self) -> None:
        self._memo: dict = {}

    def check_empty(self, usr: USR, env: EvalEnv) -> InspectorResult:
        key_parts: list = [usr]
        for name in sorted(usr.free_symbols()):
            value = env.get(name)
            if isinstance(value, list):
                value = tuple(value)
            key_parts.append((name, value))
        key = tuple(key_parts)
        if key in self._memo:
            empty, cost = self._memo[key]
            return InspectorResult(empty=empty, cost=0, memoized=True)
        out, cost = evaluate_usr_cost(usr, env)
        self._memo[key] = (not out, cost)
        return InspectorResult(empty=not out, cost=cost, memoized=False)
