"""repro.api: the stable, cached, concurrent entry point to the pipeline.

Instead of hand-composing ``parse_program`` + ``analyze_loop`` +
``HybridExecutor`` (with per-call-site caching and threading glue),
consumers create one long-lived :class:`Engine` and go through it::

    from repro.api import Engine, EngineConfig

    engine = Engine(EngineConfig())
    compiled = engine.compile(SOURCE)          # parse + summaries, memoized
    plan = compiled.plan("my_loop")            # LoopPlan, memoized per loop
    report = compiled.execute("my_loop", params, arrays)

    # or speak the versioned wire protocol (CLI / batch / fuzz / HTTP):
    from repro.api import AnalyzeRequest
    response = engine.analyze(AnalyzeRequest(source=SOURCE, loop="my_loop"))
    print(response.canonical_text())           # stable JSON document

    # concurrent fan-out over the engine's worker pool:
    responses = engine.map(requests, jobs=8)

The engine owns the interning/memo layers' warm state, the persistent
disk cache (:class:`AnalysisCache` over :class:`JsonDiskCache`) and the
worker pool (:func:`parallel_map`), so cache policy and concurrency
live in one place.  ``repro.core.analyze_loop`` and direct
``HybridExecutor`` construction remain as deprecated shims that
delegate to :func:`default_engine`; see ``docs/API.md`` for the
lifecycle, schemas and deprecation policy.
"""

from .cache import CACHE_VERSION, DEFAULT_CACHE_DIR, JsonDiskCache, parallel_map
from .engine import (
    AnalysisCache,
    CompiledProgram,
    Engine,
    EngineConfig,
    default_engine,
)
from .protocol import (
    ERROR_CODES,
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    AnalyzeRequest,
    AnalyzeResponse,
    ArrayPlanSummary,
    ErrorResponse,
    ExecuteRequest,
    ExecuteResponse,
    MetricsFrame,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
    TraceRequest,
    TraceResponse,
    UnsubscribeRequest,
    UnsubscribeResponse,
    canonical_json,
    request_from_json,
    response_from_json,
    wire_json,
)

__all__ = [
    "Engine",
    "EngineConfig",
    "CompiledProgram",
    "AnalysisCache",
    "default_engine",
    "PROTOCOL_VERSION",
    "MAX_REQUEST_BYTES",
    "ERROR_CODES",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "ExecuteRequest",
    "ExecuteResponse",
    "ErrorResponse",
    "StatsRequest",
    "StatsResponse",
    "SubscribeRequest",
    "UnsubscribeRequest",
    "MetricsFrame",
    "UnsubscribeResponse",
    "TraceRequest",
    "TraceResponse",
    "ArrayPlanSummary",
    "request_from_json",
    "response_from_json",
    "canonical_json",
    "wire_json",
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "JsonDiskCache",
    "parallel_map",
]
