"""The Engine facade: one long-lived, thread-safe entry point.

Every consumer used to re-stitch ``parse_program`` + ``analyze_loop`` +
``HybridExecutor`` by hand, with its own caching and threading glue.
The engine owns all of that in one place:

* :class:`EngineConfig` -- analyzer knobs + cache/concurrency policy,
  fixed for the engine's lifetime;
* :meth:`Engine.compile` -- source text -> :class:`CompiledProgram`
  handle, memoized by source digest (compiling the same text twice
  returns the *same* handle, so plans and interprocedural summaries are
  shared across all callers of one engine);
* :meth:`CompiledProgram.plan` / :meth:`CompiledProgram.execute` -- the
  analyze/execute pipeline with per-loop plan memoization;
* :meth:`Engine.analyze` / :meth:`Engine.execute` /
  :meth:`Engine.serve` -- the request/response protocol of
  :mod:`repro.api.protocol`, with analyze responses persisted in a
  per-engine :class:`AnalysisCache` on disk;
* :meth:`Engine.map` -- concurrent fan-out of requests over the shared
  worker pool (:func:`repro.api.cache.parallel_map`).

Thread-safety model: all memo tables are plain dicts guarded by the
GIL (the package-wide convention -- see :mod:`repro.symbolic.intern`),
so concurrent workers share warm caches and at worst recompute a value,
never corrupt one; disk-cache writes are atomic.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Union

from ..core.analyzer import HybridAnalyzer, LoopPlan
from ..ir.ast import Program
from ..ir.parser import parse_program
from ..runtime.executor import ExecutionReport, HybridExecutor
from ..runtime.inspector import Inspector
from ..runtime.scheduler import CostModel
from ..symbolic.intern import Memo, unregister_cache
from . import cache as _cache
from .cache import JsonDiskCache, parallel_map
from .protocol import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    AnalyzeResponse,
    ExecuteRequest,
    ExecuteResponse,
)

__all__ = [
    "EngineConfig",
    "AnalysisCache",
    "CompiledProgram",
    "Engine",
    "default_engine",
]

#: Analyzer-knob names an :class:`EngineConfig` (and per-request
#: ``options``) may set; exactly the keyword arguments of
#: :class:`~repro.core.analyzer.HybridAnalyzer`.
ANALYZER_KNOBS = (
    "use_monotonicity",
    "use_reshaping",
    "use_civagg",
    "interprocedural",
    "size_cap",
    "work_cap",
    "tiering",
)


@dataclass(frozen=True)
class EngineConfig:
    """Policy of one engine, fixed for its lifetime."""

    # -- analyzer knobs (defaults match HybridAnalyzer) -----------------
    use_monotonicity: bool = True
    use_reshaping: bool = True
    use_civagg: bool = True
    interprocedural: bool = True
    size_cap: Optional[int] = None
    work_cap: Optional[int] = None
    #: Tier-0 screening before cascade construction (off = always run
    #: the full Tier-1 pipeline).  Screening cannot change a plan, but
    #: it does change the tier-provenance fields of the response, so the
    #: knob participates in the analysis cache key like any other.
    tiering: bool = True
    # -- cache / concurrency policy -------------------------------------
    #: persistent cache location (None = .repro-cache / $REPRO_CACHE_DIR)
    cache_dir: Optional[str] = None
    #: persist analyze responses to disk (memory memos are always on)
    use_disk_cache: bool = True
    #: default worker-pool width for :meth:`Engine.map` and for the
    #: parallel execution backends (None = CPUs)
    jobs: Optional[int] = None
    #: bound on distinct compiled programs held in memory
    compile_cache_size: int = 4096
    # -- execution policy ------------------------------------------------
    #: default execution backend for validated parallel loops
    #: ('sequential' | 'thread' | 'process' | 'numpy' | 'speculative')
    backend: str = "sequential"
    #: default chunk-scheduler spec for the parallel backends, as a
    #: ``{"policy": ..., "size": ...}`` document (None = static)
    chunk: Optional[dict] = None

    def analyzer_knobs(self) -> dict:
        return {name: getattr(self, name) for name in ANALYZER_KNOBS}


class _NullSpan:
    """No-op span so traced and untraced calls share one code path."""

    __slots__ = ()

    def set(self, key, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def _span(tracer, name: str, phases: bool = False):
    """One tracer span when a tracer is attached, a no-op otherwise.

    *tracer* is duck-typed (``.span(name, phases=...)`` yielding an
    object with ``.set``) so the engine stays import-independent of the
    serving layer's :mod:`repro.server.tracing`.
    """
    if tracer is None:
        yield _NULL_SPAN
    else:
        with tracer.span(name, phases=phases) as span:
            yield span


def _knob_text(knobs: dict) -> str:
    """Stable text form of an effective knob mapping -- the one true
    serialization every analysis cache key is built from (cache and
    concurrency policy deliberately excluded: they cannot change an
    analysis result)."""
    return "|".join(f"{k}={v!r}" for k, v in sorted(knobs.items()))


class AnalysisCache(JsonDiskCache):
    """Persistent analyze-response cache, keyed on everything that can
    change the answer: protocol + cache-format versions, source digest,
    loop label and the effective analyzer knobs.  Changes to the
    analysis *code* itself require a
    :data:`repro.api.cache.CACHE_VERSION` bump (which orphans every old
    entry by construction)."""

    def key(self, source_digest: str, loop: str, knob_text: str) -> str:
        tail = self.digest(
            f"v{_cache.CACHE_VERSION}\0p{PROTOCOL_VERSION}\0"
            f"{source_digest}\0{loop}\0{knob_text}"
        )
        return f"api-analyze-{source_digest}-{tail}"

    def load(
        self, source_digest: str, loop: str, knob_text: str
    ) -> Optional[AnalyzeResponse]:
        payload = self.load_json(self.key(source_digest, loop, knob_text))
        if payload is None:
            return None
        try:
            return AnalyzeResponse.from_json(payload, cached=True)
        except (KeyError, TypeError, ValueError):
            return None  # foreign/stale schema: treat as a miss

    def store(
        self,
        source_digest: str,
        loop: str,
        knob_text: str,
        response: AnalyzeResponse,
    ) -> None:
        self.store_json(
            self.key(source_digest, loop, knob_text), response.to_json()
        )


class CompiledProgram:
    """A compiled source handle: parse + summaries + memoized plans.

    Obtained from :meth:`Engine.compile`; all callers compiling the same
    source through the same engine share one instance, so the
    interprocedural summary memo (keyed on program identity) and the
    per-loop plan memo below are shared too.
    """

    def __init__(
        self,
        engine: "Engine",
        program: Program,
        source: Optional[str],
        digest: str,
    ):
        self.engine = engine
        self.program = program
        #: concrete syntax, when compiled from text (None for
        #: Program-object compiles, which cannot be disk-cached)
        self.source = source
        #: stable source digest; empty for Program-object compiles (a
        #: process-specific id must never leak into wire documents)
        self.digest = digest
        self._analyzers: dict = {}
        self._plans: dict = {}

    # -- analysis -------------------------------------------------------
    def _knobs(self, overrides: dict) -> dict:
        knobs = self.engine.config.analyzer_knobs()
        unknown = set(overrides) - set(ANALYZER_KNOBS)
        if unknown:
            raise TypeError(
                f"unknown analyzer option(s) {sorted(unknown)}; "
                f"valid: {list(ANALYZER_KNOBS)}"
            )
        knobs.update(overrides)
        return knobs

    def _analyzer(self, knobs: dict) -> HybridAnalyzer:
        key = tuple(sorted(knobs.items()))
        analyzer = self._analyzers.get(key)
        if analyzer is None:
            analyzer = HybridAnalyzer(self.program, **knobs)
            self._analyzers[key] = analyzer
        return analyzer

    def plan(self, loop: str, **options) -> LoopPlan:
        """The :class:`LoopPlan` for the loop labelled *loop*, memoized
        per (loop, effective analyzer knobs)."""
        knobs = self._knobs(options)
        key = (loop, tuple(sorted(knobs.items())))
        plan = self._plans.get(key)
        if plan is None:
            plan = self._analyzer(knobs).analyze(loop)
            self._plans[key] = plan
        return plan

    def plan_cached(self, loop: str, **options) -> bool:
        """Whether :meth:`plan` for these arguments is already memoized
        (an analysis-cache probe; never computes anything)."""
        knobs = self._knobs(options)
        return (loop, tuple(sorted(knobs.items()))) in self._plans

    def analyze(self, loop: str, **options) -> AnalyzeResponse:
        """Plan *loop* and summarize the plan as an
        :class:`AnalyzeResponse` (consulting/feeding the engine's disk
        cache for source-backed compiles)."""
        knob_text = _knob_text(self._knobs(options))
        disk = self.engine._disk if self.source is not None else None
        if disk is not None:
            hit = disk.load(self.digest, loop, knob_text)
            if hit is not None:
                self.engine.record_analysis_cache(hit=True)
                return hit
        self.engine.record_analysis_cache(hit=self.plan_cached(loop, **options))
        response = AnalyzeResponse.from_plan(
            self.plan(loop, **options), self.digest
        )
        if disk is not None:
            disk.store(self.digest, loop, knob_text, response)
        return response

    # -- execution ------------------------------------------------------
    def executor(
        self,
        loop: str,
        *,
        exact_strategy: str = "inspector",
        inspector: Optional[Inspector] = None,
        cost: Optional[CostModel] = None,
        plan: Optional[LoopPlan] = None,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        chunk: Optional[dict] = None,
        **options,
    ) -> HybridExecutor:
        """A :class:`HybridExecutor` for *loop* (plan from the memo
        unless an explicit *plan* is given).  Backend selection falls
        back to the engine's configured execution policy."""
        config = self.engine.config
        return HybridExecutor(
            self.program,
            plan if plan is not None else self.plan(loop, **options),
            cost=cost,
            inspector=inspector,
            exact_strategy=exact_strategy,
            backend=backend if backend is not None else config.backend,
            jobs=jobs if jobs is not None else config.jobs,
            chunk=chunk if chunk is not None else config.chunk,
        )

    def execute(
        self, loop: str, params: dict, arrays: dict, **kwargs
    ) -> ExecutionReport:
        """Plan (memoized) and execute *loop* against concrete inputs.

        Keyword options are those of :meth:`executor`.  The inputs are
        never mutated (the executor snapshots them internally).
        """
        return self.executor(loop, **kwargs).run(params, arrays)


#: Distinguishes the compile memos of multiple engines in the global
#: cache registry (so ``clear_caches()`` resets every engine).
_ENGINE_COUNTER = itertools.count()


class _EvictingMemo(Memo):
    """A :class:`Memo` that evicts the least-recently-used entry at
    capacity instead of refusing new ones.  The compile working set is
    unbounded under fuzzing (every generated/shrunk candidate is a
    distinct source), so the base class's store-nothing-past-capacity
    policy would both pin the first ``max_size`` programs forever and
    stop memoizing exactly when the long-lived engine needs it most.

    Recency matters once an engine serves mixed traffic: a hot
    long-lived program must not be evicted just because it was compiled
    before a burst of cold one-shot candidates, so :meth:`get` touches
    its entry (move-to-end).  And because the serving pool
    (:mod:`repro.server.pool`) makes concurrent ``put``/``get`` routine,
    the touch/evict/insert sequences -- which are not individually
    atomic dict operations -- run under a lock."""

    __slots__ = ("_lock",)

    def __init__(self, name: str, max_size: int = 200_000):
        # Memo.__init__ registers the cache globally, so the lock must
        # exist before any other thread can look the table up.
        self._lock = threading.Lock()
        super().__init__(name, max_size=max_size)

    def get(self, key):
        with self._lock:
            value = self.data.pop(key, None)
            if value is None:
                self.misses += 1
            else:
                # re-insert at the back: dicts iterate in insertion
                # order, so the front is always the LRU victim
                self.data[key] = value
                self.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            if key not in self.data and len(self.data) >= self.max_size:
                try:
                    self.data.pop(next(iter(self.data)), None)
                except StopIteration:
                    pass
            self.data[key] = value
        return value

    def clear(self):
        # the registry-wide clear_caches() path must honor the same
        # lock as put/get, or a concurrent put sees the dict mutate
        # mid-iteration
        with self._lock:
            super().clear()

#: The process-wide default engine (lazily created; shared by the
#: deprecation shims and every consumer that does not need custom
#: policy).
_DEFAULT_ENGINE: Optional["Engine"] = None


class Engine:
    """A long-lived, thread-safe facade over the whole pipeline."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self._compile_memo = _EvictingMemo(
            f"api.engine.compile#{next(_ENGINE_COUNTER)}",
            max_size=self.config.compile_cache_size,
        )
        self._disk: Optional[AnalysisCache] = (
            AnalysisCache(self.config.cache_dir)
            if self.config.use_disk_cache
            else None
        )
        #: analysis-cache outcomes (disk hit or warm plan memo = hit);
        #: plain ints mutated under the GIL, read by the stats verb
        self.analysis_hits = 0
        self.analysis_misses = 0

    def record_analysis_cache(self, hit: bool) -> None:
        if hit:
            self.analysis_hits += 1
        else:
            self.analysis_misses += 1

    def analysis_cache_counts(self) -> dict:
        return {"hits": self.analysis_hits, "misses": self.analysis_misses}

    # -- compilation ----------------------------------------------------
    def compile(
        self,
        source: Union[str, Program],
        *,
        program: Optional[Program] = None,
        digest: Optional[str] = None,
    ) -> CompiledProgram:
        """Compile *source* into a shared :class:`CompiledProgram`.

        Accepts source text (memoized by digest; repeated compiles of
        the same text return the same handle) or an already-parsed
        :class:`Program` (memoized by object identity; such handles
        skip the disk cache because no stable digest exists).  A caller
        holding both may pass *program* alongside the text to skip the
        parse -- the invariant ``parse_program(source) == program`` is
        the caller's responsibility.  Likewise a caller that already
        hashed the text (the serving dispatcher routes by digest) may
        pass *digest* to skip rehashing -- the invariant
        ``digest == JsonDiskCache.digest(source)`` is theirs too.
        """
        if isinstance(source, Program):
            program, source = source, None
        if source is not None:
            if digest is None:
                digest = JsonDiskCache.digest(source)
            key = ("src", digest)
        elif program is not None:
            digest = ""  # no stable digest exists for an object compile
            key = ("obj", id(program))
        else:
            raise TypeError("compile() needs source text or a Program")
        hit = self._compile_memo.get(key)
        if hit is not None and (source is None or hit.source == source):
            return hit
        if program is None:
            program = parse_program(source)
        compiled = CompiledProgram(self, program, source, digest)
        return self._compile_memo.put(key, compiled)

    def parse(self, source: str) -> Program:
        """Parse *source* through the compile memo."""
        return self.compile(source).program

    def holds(self, source_digest: str) -> bool:
        """Whether this engine currently holds a compiled program for
        *source_digest* -- a cache-locality probe (used by the serving
        pool's warm-hit metric); never compiles anything."""
        return ("src", source_digest) in self._compile_memo.data

    # -- protocol service -----------------------------------------------
    def analyze(
        self,
        request: AnalyzeRequest,
        digest: Optional[str] = None,
        tracer=None,
    ) -> AnalyzeResponse:
        with _span(tracer, "compile", phases=True) as span:
            response = self.compile(request.source, digest=digest).analyze(
                request.loop, **request.options
            )
            span.set("cached", response.cached)
            span.set("tier_used", response.tier_used)
        return response

    def execute(
        self,
        request: ExecuteRequest,
        digest: Optional[str] = None,
        tracer=None,
    ) -> ExecuteResponse:
        with _span(tracer, "compile", phases=True) as span:
            compiled = self.compile(request.source, digest=digest)
            warm = compiled.plan_cached(request.loop, **request.options)
            self.record_analysis_cache(hit=warm)
            plan = compiled.plan(request.loop, **request.options)
            span.set("cached", warm)
            span.set("tier_used", plan.tier_used)
        with _span(tracer, "execute") as span:
            report = compiled.execute(
                request.loop,
                request.params,
                request.arrays,
                plan=plan,
                exact_strategy=request.exact_strategy,
                backend=request.backend,
                jobs=request.jobs,
                chunk=request.chunk,
            )
            span.set("backend_used", report.backend_used)
            span.set("jobs", report.jobs)
            span.set("chunks", report.chunks)
            span.set("parallel", report.parallel)
            if report.used_speculation or report.speculation_commits:
                span.set("speculation_commits", report.speculation_commits)
                span.set("speculation_rollbacks", report.speculation_rollbacks)
        return ExecuteResponse.from_report(
            report, plan.classification(), compiled.digest
        )

    def serve(self, request, digest: Optional[str] = None, tracer=None):
        """Dispatch one request of either kind.  *digest*, when given,
        must be the source digest of *request* (trusted fast path for
        the serving pool, which already routed by it).  *tracer*, when
        given, records compile/execute spans (duck-typed -- see
        :func:`_span`)."""
        if isinstance(request, AnalyzeRequest):
            return self.analyze(request, digest=digest, tracer=tracer)
        if isinstance(request, ExecuteRequest):
            return self.execute(request, digest=digest, tracer=tracer)
        raise TypeError(f"not a protocol request: {request!r}")

    # -- concurrency ----------------------------------------------------
    def map(self, requests, jobs: Optional[int] = None) -> list:
        """Serve *requests* concurrently on the shared worker pool,
        preserving order.  *jobs* defaults to the engine's configured
        width (then to the CPU count)."""
        return parallel_map(self.serve, requests, jobs or self.config.jobs)

    def map_items(self, fn, items, jobs: Optional[int] = None) -> list:
        """Generic fan-out under the engine's concurrency policy -- the
        hook the batch and fuzz drivers run their own work units
        through."""
        return parallel_map(fn, items, jobs or self.config.jobs)

    # -- cache management -----------------------------------------------
    @property
    def disk_cache(self) -> Optional[AnalysisCache]:
        return self._disk

    def clear_memory(self) -> None:
        """Drop every in-memory compiled program (plans go with them)."""
        self._compile_memo.clear()

    def clear_disk(self) -> int:
        """Delete this engine's persisted analyze responses."""
        if self._disk is None:
            return 0
        removed = 0
        for path in self._disk.directory.glob("api-analyze-*.json"):
            path.unlink()
            removed += 1
        return removed

    def close(self) -> None:
        """Retire this engine: drop its compiled programs and release
        its global cache-registry entry so the engine (and everything
        its memo pins) can be garbage-collected.  A closed engine still
        works -- it just no longer appears in ``cache_stats()`` / gets
        reset by ``clear_caches()``.  Long-lived embedders that create
        engines routinely (the serving pool does) must call this."""
        self._compile_memo.clear()
        unregister_cache(self._compile_memo)


def default_engine() -> Engine:
    """The process-wide default engine (created on first use).

    Creation is idempotent-enough under the GIL: two racing first calls
    may build two engines, but only one is published and cached state is
    merely recomputed, never corrupted.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE
