"""Disk-cache and worker-pool primitives owned by the engine layer.

These used to live in :mod:`repro.evaluation.batch`; the Engine facade
(:mod:`repro.api.engine`) now owns cache policy and concurrency, and the
batch/fuzz drivers consume them from here (the old import paths keep
working as re-exports).

* :class:`JsonDiskCache` -- a persistent key -> JSON-document store with
  atomic writes and a shared default location.  Subclasses own key
  construction: a key must digest every input that could change the
  stored document, so stale entries become unreachable rather than
  merely suspect.
* :func:`parallel_map` -- the shared thread-pool fan-out.  The analysis
  memo tables (:mod:`repro.symbolic.intern`) are plain dicts guarded by
  the GIL, so concurrent workers share warm caches and at worst
  recompute a value, never corrupt one.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "JsonDiskCache",
    "parallel_map",
]

#: Bump when a cached result schema or the analysis semantics change:
#: every existing on-disk entry is invalidated by construction (new
#: keys).  Shared by the engine's analysis cache, the batch driver and
#: the fuzz harness.
#: v2: reduction soundness fixes (additive-update gate, read-gated
#: EXT-RRED enabling) changed classifications.
#: v3: exposed-read tracking in the dataflow summaries; the EXT-RRED
#: enabling equation now catches plain reads demoted into RW (read-
#: before-write regions), changing reduction classifications.
#: v4: tiered analysis -- responses carry tier-provenance fields and the
#: 'tiering' knob joined the key's knob text, so v3 entries (written
#: before either existed) must never satisfy a v4 request.
CACHE_VERSION = 4

#: Default on-disk cache location (overridable via $REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = ".repro-cache"


class JsonDiskCache:
    """A persistent key -> JSON-document store under one directory.

    The generic layer beneath the engine's :class:`~repro.api.engine.
    AnalysisCache`, the batch driver's ``BatchCache`` and the fuzz
    harness's per-seed cache: atomic writes, key-is-filename, a shared
    default location (``.repro-cache`` / ``$REPRO_CACHE_DIR``).
    Subclasses own key construction -- a key must digest every input
    that could change the stored document, so stale entries become
    unreachable rather than merely suspect.
    """

    def __init__(self, directory: Optional[str] = None):
        root = directory or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.directory = Path(root)

    @staticmethod
    def digest(text: str) -> str:
        """Short stable digest of *text* for use inside keys."""
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load_json(self, key: str) -> Optional[dict]:
        try:
            return json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None

    def store_json(self, key: str, payload: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)  # atomic: concurrent workers never see partial files

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed


def parallel_map(fn, items, jobs: Optional[int] = None) -> list:
    """Apply *fn* to *items* on a worker pool, preserving order.

    The shared concurrency layer of the engine, batch and fuzz drivers:
    the analysis memo tables are plain dicts guarded by the GIL, so
    workers share warm caches and at worst recompute a value, never
    corrupt one.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1 (got {jobs})")
    items = list(items)
    workers = jobs or os.cpu_count() or 4
    with ThreadPoolExecutor(max_workers=min(workers, max(len(items), 1))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]
