"""Versioned request/response dataclasses with a stable JSON schema.

Every consumer of the analysis pipeline -- the CLI, the batch driver,
the fuzz harness, a future HTTP front-end -- speaks this protocol:

* :class:`AnalyzeRequest` -> :class:`AnalyzeResponse`: compile the
  source and plan one labelled loop (classification, techniques,
  per-array transforms and cascade stages);
* :class:`ExecuteRequest` -> :class:`ExecuteResponse`: additionally run
  the planned loop against concrete inputs under the hybrid runtime and
  report decisions, overheads and the ground-truth verdict.

Schema stability contract: for any response, ``serialize -> deserialize
-> re-serialize`` is byte-identical (enforced by
``tests/unit/test_api_protocol.py``).  :data:`PROTOCOL_VERSION` is part
of every document; a reader must reject documents whose version it does
not understand rather than guess.  The transient ``cached`` flag is
deliberately *not* part of the wire schema (it describes how this
process obtained the document, not the document itself).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_REQUEST_BYTES",
    "ERROR_CODES",
    "canonical_json",
    "wire_json",
    "ArrayPlanSummary",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "ExecuteRequest",
    "ExecuteResponse",
    "ErrorResponse",
    "StatsRequest",
    "StatsResponse",
    "SubscribeRequest",
    "UnsubscribeRequest",
    "MetricsFrame",
    "UnsubscribeResponse",
    "TraceRequest",
    "TraceResponse",
    "request_from_json",
    "response_from_json",
]

#: Bump on any incompatible change to the request/response schemas.
#: Readers reject unknown versions; the engine's disk-cache keys include
#: it, so a bump orphans stale cached responses by construction.
#: v2: real execution backends -- ExecuteRequest grew ``backend`` /
#: ``jobs`` / ``chunk`` selectors, ExecuteResponse reports the backend
#: that ran and its worker/chunk counts.  Responses stay reproducible
#: for a given request *on a given host* (``backend_used``/``jobs``
#: legitimately differ across environments -- fallbacks, CPU counts);
#: real wall-clock time is never reproducible and therefore stays off
#: the wire, on ExecutionReport.
#: v3: network serving -- a ``stats`` verb (:class:`StatsRequest` /
#: :class:`StatsResponse`) and a typed :class:`ErrorResponse` the server
#: returns instead of dropping connections; a v2 reader would reject
#: both kinds, so the version moves.
#: v4: the speculative LRPD backend -- ExecuteRequest's ``backend``
#: accepts ``speculative``, and ExecuteResponse reports the speculation
#: outcome (``speculation_commits`` / ``speculation_rollbacks`` /
#: ``speculation_privatized``).  A v3 reader would silently drop those
#: fields from a round-trip, breaking the byte-identity contract, so
#: the version moves.
#: v5: tiered analysis -- AnalyzeResponse reports tier provenance
#: (``tier_used`` / ``screening`` / ``escalation_reason``).  The fields
#: are additive and default-tolerant (a document without them reads as
#: an untired ``tier1``/``off`` answer), but a v4 reader re-serializing
#: a v5 document would drop them, so the version moves.
#: v6: live metrics streaming -- a ``subscribe`` verb
#: (:class:`SubscribeRequest` / :class:`UnsubscribeRequest`) that
#: streams incremental :class:`MetricsFrame` documents over the same
#: connection, answered by an :class:`UnsubscribeResponse` ack.  The
#: frame fields are default-tolerant in the v5 style (absent ``final``
#: reads as false, absent ``history`` as empty), but a v5 reader would
#: reject all four new kinds outright, so the version moves.
#: v7: distributed tracing -- AnalyzeRequest/ExecuteRequest carry an
#: optional ``trace`` context (``trace_id`` / ``parent_span_id`` /
#: ``sampled``) minted at whichever tier accepts the request, and a
#: ``trace`` verb (:class:`TraceRequest` / :class:`TraceResponse`)
#: fetches stored traces by id or recency.  The ``trace`` field is
#: additive and default-tolerant (absent reads as untraced), but a v6
#: reader re-serializing a v7 request would drop it and would reject
#: the new verb, so the version moves.
PROTOCOL_VERSION = 7

#: Default upper bound on one serialized request document (the serving
#: layer's admission control rejects larger payloads with a
#: ``too_large`` error instead of buffering without bound).  Also the
#: bound on per-request admission cost: decode + digest of a line this
#: size is ~a millisecond of event-loop time, so one large request
#: cannot stall unrelated connections for long.
MAX_REQUEST_BYTES = 1024 * 1024

#: The closed set of :class:`ErrorResponse` codes.  ``overloaded`` is
#: the only retryable-by-construction code (admission control shed the
#: request before any work happened).
ERROR_CODES = frozenset({
    "malformed",        # not JSON, or not a JSON object
    "unsupported_version",
    "unknown_verb",     # unrecognized "kind" tag
    "bad_request",      # well-formed but unservable (bad loop, bad field)
    "too_large",        # request exceeds the size budget
    "overloaded",       # shed by admission control; retry later
    "internal",         # unexpected server-side failure
})


def canonical_json(payload: dict) -> str:
    """The one true serialization (sorted keys, indent=1) -- the form the
    byte-identity contract and the disk cache are defined over."""
    return json.dumps(payload, indent=1, sort_keys=True)


def wire_json(payload: dict) -> str:
    """Single-line serialization for the JSON-lines transport (sorted
    keys, compact separators, no embedded newlines).  Semantically the
    same document as :func:`canonical_json`; the byte-identity contract
    stays defined over the canonical form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _check_version(payload: dict, what: str) -> None:
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"{what}: unsupported protocol version {version!r} "
            f"(this reader speaks {PROTOCOL_VERSION})"
        )


def _check_str(payload: dict, field_name: str, what: str) -> str:
    value = payload[field_name]
    if not isinstance(value, str):
        raise ValueError(
            f"{what}: {field_name!r} must be a string "
            f"(got {type(value).__name__})"
        )
    return value


def _check_number(payload: dict, field_name: str, what: str, default):
    value = payload.get(field_name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"{what}: {field_name!r} must be a number "
            f"(got {type(value).__name__})"
        )
    return value


def _check_count(payload: dict, field_name: str, what: str, default: int) -> int:
    value = payload.get(field_name, default)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValueError(
            f"{what}: {field_name!r} must be a non-negative integer "
            f"(got {value!r})"
        )
    return value


def _check_obj(payload: dict, field_name: str, what: str) -> dict:
    value = payload.get(field_name)
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise ValueError(
            f"{what}: {field_name!r} must be a JSON object "
            f"(got {type(value).__name__})"
        )
    return value


# -- requests ----------------------------------------------------------------


def _check_trace(payload: dict, what: str) -> Optional[dict]:
    """The additive v7 trace context: absent/null reads as untraced;
    anything else must be a JSON object (shape is the tracing layer's
    concern, not the protocol's)."""
    trace = payload.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, dict):
        raise ValueError(
            f"{what}: 'trace' must be a JSON object or null "
            f"(got {type(trace).__name__})"
        )
    return dict(trace)


@dataclass(frozen=True)
class AnalyzeRequest:
    """Compile *source* and plan the loop labelled *loop*.

    *options* may override the engine's analyzer knobs per request
    (``use_monotonicity``, ``use_reshaping``, ``use_civagg``,
    ``interprocedural``, ``size_cap``, ``work_cap``).  ``trace`` is the
    optional v7 trace context (``trace_id`` / ``parent_span_id`` /
    ``sampled``) propagated by a tracing-aware caller.
    """

    source: str
    loop: str
    options: dict = field(default_factory=dict)
    trace: Optional[dict] = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "analyze",
            "version": self.version,
            "source": self.source,
            "loop": self.loop,
            "options": dict(self.options),
            "trace": dict(self.trace) if self.trace is not None else None,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AnalyzeRequest":
        _check_version(payload, "AnalyzeRequest")
        return cls(
            source=_check_str(payload, "source", "AnalyzeRequest"),
            loop=_check_str(payload, "loop", "AnalyzeRequest"),
            options=dict(_check_obj(payload, "options", "AnalyzeRequest")),
            trace=_check_trace(payload, "AnalyzeRequest"),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class ExecuteRequest:
    """Plan *loop* and execute it against concrete inputs.

    *params* maps parameter names to integers; *arrays* maps array names
    to initial contents (missing arrays start zeroed).  ``backend`` /
    ``jobs`` / ``chunk`` select the real execution backend (``None``
    defers to the serving engine's configured defaults); ``chunk`` is a
    ``{"policy": "static"|"dynamic", "size": int|null}`` document.
    ``trace`` is the optional v7 trace context.
    """

    source: str
    loop: str
    params: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: exact-test fallback: 'inspector' (hoistable USR evaluation) or
    #: 'tls' (LRPD speculation)
    exact_strategy: str = "inspector"
    #: execution backend ('sequential' | 'thread' | 'process' | 'numpy'
    #: | 'speculative'; None = engine default)
    backend: Optional[str] = None
    #: worker count for parallel backends (None = engine default)
    jobs: Optional[int] = None
    #: chunk-scheduler spec document (None = engine default)
    chunk: Optional[dict] = None
    options: dict = field(default_factory=dict)
    #: optional v7 trace context
    trace: Optional[dict] = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "execute",
            "version": self.version,
            "source": self.source,
            "loop": self.loop,
            "params": dict(self.params),
            "arrays": {k: list(v) for k, v in self.arrays.items()},
            "exact_strategy": self.exact_strategy,
            "backend": self.backend,
            "jobs": self.jobs,
            "chunk": dict(self.chunk) if self.chunk is not None else None,
            "options": dict(self.options),
            "trace": dict(self.trace) if self.trace is not None else None,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExecuteRequest":
        _check_version(payload, "ExecuteRequest")
        what = "ExecuteRequest"
        arrays = {}
        for name, values in _check_obj(payload, "arrays", what).items():
            if not isinstance(values, list):
                raise ValueError(
                    f"{what}: array {name!r} must be a list "
                    f"(got {type(values).__name__})"
                )
            arrays[name] = list(values)
        chunk = payload.get("chunk")
        if chunk is not None and not isinstance(chunk, dict):
            raise ValueError(
                f"{what}: 'chunk' must be a JSON object or null "
                f"(got {type(chunk).__name__})"
            )
        return cls(
            source=_check_str(payload, "source", what),
            loop=_check_str(payload, "loop", what),
            params=dict(_check_obj(payload, "params", what)),
            arrays=arrays,
            exact_strategy=payload.get("exact_strategy", "inspector"),
            backend=payload.get("backend"),
            jobs=payload.get("jobs"),
            chunk=dict(chunk) if chunk is not None else None,
            options=dict(_check_obj(payload, "options", what)),
            trace=_check_trace(payload, what),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class StatsRequest:
    """Ask a serving endpoint for its observability snapshot.

    Engines themselves hold no counters; the server
    (:mod:`repro.server`) answers from its metrics registry.
    """

    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {"kind": "stats", "version": self.version}

    @classmethod
    def from_json(cls, payload: dict) -> "StatsRequest":
        _check_version(payload, "StatsRequest")
        return cls()

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class SubscribeRequest:
    """Open a live metrics stream on this connection (protocol v6).

    The server answers with :class:`MetricsFrame` documents at
    approximately ``interval_s`` spacing (servers clamp the interval to
    their supported range) until ``frames`` frames were sent (0 streams
    until an :class:`UnsubscribeRequest`), the connection closes, or the
    server shuts down -- whichever comes first; the last frame carries
    ``final``.  ``history`` asks for up to that many recent ring-buffer
    samples in the first frame, so a late subscriber sees recent load.
    One subscription may be active per connection at a time.
    """

    interval_s: float = 1.0
    #: total frames to stream; 0 = until unsubscribe
    frames: int = 0
    #: recent ring samples to include in the first frame
    history: int = 0
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "subscribe",
            "version": self.version,
            "interval_s": self.interval_s,
            "frames": self.frames,
            "history": self.history,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SubscribeRequest":
        what = "SubscribeRequest"
        _check_version(payload, what)
        interval_s = _check_number(payload, "interval_s", what, 1.0)
        if interval_s <= 0:
            raise ValueError(f"{what}: 'interval_s' must be > 0 (got {interval_s!r})")
        return cls(
            interval_s=interval_s,
            frames=_check_count(payload, "frames", what, 0),
            history=_check_count(payload, "history", what, 0),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class UnsubscribeRequest:
    """End this connection's active metrics stream (protocol v6).

    The server finishes the stream (one last ``final``
    :class:`MetricsFrame`), then acknowledges with an
    :class:`UnsubscribeResponse` -- still in request order, so a client
    reads frames until ``final`` and then exactly one ack.
    """

    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {"kind": "unsubscribe", "version": self.version}

    @classmethod
    def from_json(cls, payload: dict) -> "UnsubscribeRequest":
        _check_version(payload, "UnsubscribeRequest")
        return cls()

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class TraceRequest:
    """Fetch stored traces from a serving tier (protocol v7).

    ``trace_id`` fetches one trace by id; when absent the server
    returns up to ``limit`` recent traces (newest first), optionally
    filtered to one root ``status`` (``ok`` / ``error``).
    """

    trace_id: Optional[str] = None
    limit: int = 10
    status: Optional[str] = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "trace",
            "version": self.version,
            "trace_id": self.trace_id,
            "limit": self.limit,
            "status": self.status,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TraceRequest":
        what = "TraceRequest"
        _check_version(payload, what)
        trace_id = payload.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ValueError(
                f"{what}: 'trace_id' must be a string or null "
                f"(got {type(trace_id).__name__})"
            )
        status = payload.get("status")
        if status is not None and not isinstance(status, str):
            raise ValueError(
                f"{what}: 'status' must be a string or null "
                f"(got {type(status).__name__})"
            )
        return cls(
            trace_id=trace_id,
            limit=_check_count(payload, "limit", what, 10),
            status=status,
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


#: Either request type (what :meth:`repro.api.Engine.serve` accepts,
#: plus the serving layer's ``stats``, streaming and ``trace`` verbs).
Request = Union[
    AnalyzeRequest, ExecuteRequest, StatsRequest,
    SubscribeRequest, UnsubscribeRequest, TraceRequest,
]


def request_from_json(payload: dict) -> Request:
    """Dispatch a request document on its ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "analyze":
        return AnalyzeRequest.from_json(payload)
    if kind == "execute":
        return ExecuteRequest.from_json(payload)
    if kind == "stats":
        return StatsRequest.from_json(payload)
    if kind == "subscribe":
        return SubscribeRequest.from_json(payload)
    if kind == "unsubscribe":
        return UnsubscribeRequest.from_json(payload)
    if kind == "trace":
        return TraceRequest.from_json(payload)
    raise ValueError(f"unknown request kind {kind!r}")


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class ArrayPlanSummary:
    """Wire form of one :class:`~repro.core.analyzer.ArrayPlan`.

    Cascade fields hold the ordered stage labels of the runtime cascade,
    or ``None`` when no runtime test of that kind is needed.
    """

    array: str
    #: 'shared' | 'private' | 'reduction'
    transform: str
    flow: Optional[list] = None
    output: Optional[list] = None
    slv: Optional[list] = None
    rred: Optional[list] = None
    needs_exact: bool = False
    needs_bounds_comp: bool = False
    extended_reduction: bool = False
    reduction_additive: bool = True
    static_parallel: bool = False

    @classmethod
    def from_plan(cls, plan) -> "ArrayPlanSummary":
        def stages(cascade) -> Optional[list]:
            if cascade is None:
                return None
            return [stage.label for stage in cascade.stages]

        return cls(
            array=plan.array,
            transform=plan.transform,
            flow=stages(plan.flow),
            output=stages(plan.output),
            slv=stages(plan.slv),
            rred=stages(plan.rred),
            needs_exact=plan.needs_exact,
            needs_bounds_comp=plan.needs_bounds_comp,
            extended_reduction=plan.extended_reduction,
            reduction_additive=plan.reduction_additive,
            static_parallel=plan.static_parallel(),
        )

    def to_json(self) -> dict:
        return {
            "array": self.array,
            "transform": self.transform,
            "flow": self.flow,
            "output": self.output,
            "slv": self.slv,
            "rred": self.rred,
            "needs_exact": self.needs_exact,
            "needs_bounds_comp": self.needs_bounds_comp,
            "extended_reduction": self.extended_reduction,
            "reduction_additive": self.reduction_additive,
            "static_parallel": self.static_parallel,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ArrayPlanSummary":
        return cls(
            array=payload["array"],
            transform=payload["transform"],
            flow=payload.get("flow"),
            output=payload.get("output"),
            slv=payload.get("slv"),
            rred=payload.get("rred"),
            needs_exact=payload.get("needs_exact", False),
            needs_bounds_comp=payload.get("needs_bounds_comp", False),
            extended_reduction=payload.get("extended_reduction", False),
            reduction_additive=payload.get("reduction_additive", True),
            static_parallel=payload.get("static_parallel", False),
        )


@dataclass
class AnalyzeResponse:
    """The plan for one loop, in wire form."""

    digest: str
    loop: str
    classification: str
    techniques: list = field(default_factory=list)
    static_parallel: bool = False
    runtime_tested: bool = False
    needs_exact_fallback: bool = False
    has_scalar_dependence: bool = False
    approximate: bool = False
    is_while: bool = False
    civs: list = field(default_factory=list)
    arrays: list = field(default_factory=list)
    #: v5 tier provenance: 'tier0' = every independence equation was
    #: resolved by the screening pass (no USR cascade construction),
    #: 'tier1' = the full FACTOR pipeline ran for at least one equation.
    tier_used: str = "tier1"
    #: screening verdict: 'resolved' | 'escalated' | 'off'
    screening: str = "off"
    #: 'array:equation' of the first inconclusive screening query
    escalation_reason: str = ""
    version: int = PROTOCOL_VERSION
    #: served from a cache (process-local; never serialized)
    cached: bool = False

    @classmethod
    def from_plan(cls, plan, digest: str) -> "AnalyzeResponse":
        return cls(
            digest=digest,
            loop=plan.label,
            classification=plan.classification(),
            techniques=plan.techniques(),
            static_parallel=plan.static_parallel(),
            runtime_tested=plan.runtime_tested(),
            needs_exact_fallback=plan.needs_exact_fallback(),
            has_scalar_dependence=plan.has_scalar_dependence(),
            approximate=plan.approximate,
            is_while=plan.is_while,
            civs=[info.name for info in plan.civs],
            arrays=[
                ArrayPlanSummary.from_plan(p)
                for _, p in sorted(plan.arrays.items())
            ],
            tier_used=plan.tier_used,
            screening=plan.screening,
            escalation_reason=plan.escalation_reason,
        )

    def to_json(self) -> dict:
        return {
            "kind": "analyze",
            "version": self.version,
            "digest": self.digest,
            "loop": self.loop,
            "classification": self.classification,
            "techniques": list(self.techniques),
            "static_parallel": self.static_parallel,
            "runtime_tested": self.runtime_tested,
            "needs_exact_fallback": self.needs_exact_fallback,
            "has_scalar_dependence": self.has_scalar_dependence,
            "approximate": self.approximate,
            "is_while": self.is_while,
            "civs": list(self.civs),
            "arrays": [a.to_json() for a in self.arrays],
            "tier_used": self.tier_used,
            "screening": self.screening,
            "escalation_reason": self.escalation_reason,
        }

    @classmethod
    def from_json(cls, payload: dict, cached: bool = False) -> "AnalyzeResponse":
        _check_version(payload, "AnalyzeResponse")
        return cls(
            digest=payload["digest"],
            loop=payload["loop"],
            classification=payload["classification"],
            techniques=list(payload.get("techniques", [])),
            static_parallel=payload.get("static_parallel", False),
            runtime_tested=payload.get("runtime_tested", False),
            needs_exact_fallback=payload.get("needs_exact_fallback", False),
            has_scalar_dependence=payload.get("has_scalar_dependence", False),
            approximate=payload.get("approximate", False),
            is_while=payload.get("is_while", False),
            civs=list(payload.get("civs", [])),
            arrays=[
                ArrayPlanSummary.from_json(a)
                for a in payload.get("arrays", [])
            ],
            # Absent tier fields (a pre-v5 document) read as an untired
            # tier1/off answer -- the default-tolerance contract.
            tier_used=payload.get("tier_used", "tier1"),
            screening=payload.get("screening", "off"),
            escalation_reason=payload.get("escalation_reason", ""),
            cached=cached,
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass
class ExecuteResponse:
    """The outcome of one planned execution, in wire form.

    Per-iteration cost vectors are intentionally summarized (``trips``)
    rather than shipped; the simulated-timing API stays on
    :class:`~repro.runtime.ExecutionReport`.
    """

    digest: str
    loop: str
    classification: str
    parallel: bool
    correct: bool
    #: array -> {'strategy', 'via', 'passed_stage'}
    decisions: dict = field(default_factory=dict)
    trips: int = 0
    seq_work: float = 0.0
    test_overhead: float = 0.0
    test_leaf_overhead: float = 0.0
    civ_overhead: float = 0.0
    bounds_overhead: float = 0.0
    inspector_overhead: float = 0.0
    speculation_overhead: float = 0.0
    used_speculation: bool = False
    misspeculated: bool = False
    #: committed speculative-backend runs (LRPD validation passed)
    speculation_commits: int = 0
    #: rolled-back speculative-backend runs (conflict -> sequential)
    speculation_rollbacks: int = 0
    #: arrays the LRPD test privatized during a committed run
    speculation_privatized: list = field(default_factory=list)
    #: backend the caller requested
    backend: str = "sequential"
    #: backend that actually ran the loop ('' for sequential outcomes)
    backend_used: str = ""
    #: workers that participated in the real parallel execution
    jobs: int = 1
    #: chunks the iteration space was carved into
    chunks: int = 0
    version: int = PROTOCOL_VERSION
    #: served from a cache (process-local; never serialized)
    cached: bool = False

    @classmethod
    def from_report(
        cls, report, classification: str, digest: str
    ) -> "ExecuteResponse":
        return cls(
            digest=digest,
            loop=report.label,
            classification=classification,
            parallel=report.parallel,
            correct=report.correct,
            decisions={
                name: {
                    "strategy": d.strategy,
                    "via": d.via,
                    "passed_stage": d.passed_stage,
                }
                for name, d in sorted(report.decisions.items())
            },
            trips=len(report.iteration_costs),
            seq_work=report.seq_work,
            test_overhead=report.test_overhead,
            test_leaf_overhead=report.test_leaf_overhead,
            civ_overhead=report.civ_overhead,
            bounds_overhead=report.bounds_overhead,
            inspector_overhead=report.inspector_overhead,
            speculation_overhead=report.speculation_overhead,
            used_speculation=report.used_speculation,
            misspeculated=report.misspeculated,
            speculation_commits=report.speculation_commits,
            speculation_rollbacks=report.speculation_rollbacks,
            speculation_privatized=list(report.speculation_privatized),
            backend=report.backend,
            backend_used=report.backend_used,
            jobs=report.jobs,
            chunks=report.chunks,
        )

    def to_json(self) -> dict:
        return {
            "kind": "execute",
            "version": self.version,
            "digest": self.digest,
            "loop": self.loop,
            "classification": self.classification,
            "parallel": self.parallel,
            "correct": self.correct,
            "decisions": {
                name: dict(d) for name, d in sorted(self.decisions.items())
            },
            "trips": self.trips,
            "seq_work": self.seq_work,
            "test_overhead": self.test_overhead,
            "test_leaf_overhead": self.test_leaf_overhead,
            "civ_overhead": self.civ_overhead,
            "bounds_overhead": self.bounds_overhead,
            "inspector_overhead": self.inspector_overhead,
            "speculation_overhead": self.speculation_overhead,
            "used_speculation": self.used_speculation,
            "misspeculated": self.misspeculated,
            "speculation_commits": self.speculation_commits,
            "speculation_rollbacks": self.speculation_rollbacks,
            "speculation_privatized": list(self.speculation_privatized),
            "backend": self.backend,
            "backend_used": self.backend_used,
            "jobs": self.jobs,
            "chunks": self.chunks,
        }

    @classmethod
    def from_json(cls, payload: dict, cached: bool = False) -> "ExecuteResponse":
        _check_version(payload, "ExecuteResponse")
        return cls(
            digest=payload["digest"],
            loop=payload["loop"],
            classification=payload["classification"],
            parallel=payload["parallel"],
            correct=payload["correct"],
            decisions={
                name: dict(d)
                for name, d in payload.get("decisions", {}).items()
            },
            trips=payload.get("trips", 0),
            seq_work=payload.get("seq_work", 0.0),
            test_overhead=payload.get("test_overhead", 0.0),
            test_leaf_overhead=payload.get("test_leaf_overhead", 0.0),
            civ_overhead=payload.get("civ_overhead", 0.0),
            bounds_overhead=payload.get("bounds_overhead", 0.0),
            inspector_overhead=payload.get("inspector_overhead", 0.0),
            speculation_overhead=payload.get("speculation_overhead", 0.0),
            used_speculation=payload.get("used_speculation", False),
            misspeculated=payload.get("misspeculated", False),
            speculation_commits=payload.get("speculation_commits", 0),
            speculation_rollbacks=payload.get("speculation_rollbacks", 0),
            speculation_privatized=list(
                payload.get("speculation_privatized", [])
            ),
            backend=payload.get("backend", "sequential"),
            backend_used=payload.get("backend_used", ""),
            jobs=payload.get("jobs", 1),
            chunks=payload.get("chunks", 0),
            cached=cached,
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class ErrorResponse:
    """A structured failure document: the serving layer's answer to any
    request it cannot serve (never a traceback, never a silently closed
    connection).

    ``code`` is drawn from :data:`ERROR_CODES` for servers of this
    protocol version; clients must *tolerate* codes outside that set (a
    newer server may add one), treating them like ``internal`` unless
    ``retryable`` says otherwise.  ``retryable`` tells the client
    whether the identical request may succeed later (true exactly for
    load-shedding).  ``message`` is human-oriented detail and makes no
    stability promise beyond being a string.
    """

    code: str
    message: str = ""
    retryable: bool = False
    version: int = PROTOCOL_VERSION

    def __post_init__(self):
        # only shape is enforced here -- the closed set would make a
        # newer server's error document undecodable by older clients
        if not isinstance(self.code, str) or not self.code:
            raise ValueError(
                f"error code must be a non-empty string (got {self.code!r})"
            )

    def to_json(self) -> dict:
        return {
            "kind": "error",
            "version": self.version,
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ErrorResponse":
        # deliberately NO version check: a version-skewed client must be
        # able to decode the very error document telling it about the
        # skew.  The foreign version is preserved so re-serialization
        # stays byte-identical.
        return cls(
            code=payload["code"],
            message=payload.get("message", ""),
            retryable=payload.get("retryable", False),
            version=payload.get("version", PROTOCOL_VERSION),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class StatsResponse:
    """A serving endpoint's observability snapshot.

    ``stats`` is the metrics document of
    :meth:`repro.server.ServerMetrics.snapshot`; its key set is pinned
    there (and by the server tests), not here -- the protocol only
    promises a JSON object.
    """

    stats: dict
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "stats",
            "version": self.version,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StatsResponse":
        _check_version(payload, "StatsResponse")
        return cls(stats=dict(payload.get("stats", {})))

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class TraceResponse:
    """Stored traces answering a :class:`TraceRequest` (protocol v7).

    ``traces`` is a list of trace documents as built by
    :class:`repro.server.tracing.RequestTrace` (span lists with ids,
    wall-clock timestamps and attributes); ``store`` is the serving
    tier's :meth:`repro.server.tracing.TraceStore.snapshot` counters.
    Their key sets are pinned by the tracing layer and its tests, not
    here -- the protocol only promises a list and an object.
    """

    traces: list = field(default_factory=list)
    store: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "trace",
            "version": self.version,
            "traces": list(self.traces),
            "store": dict(self.store),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TraceResponse":
        what = "TraceResponse"
        _check_version(payload, what)
        traces = payload.get("traces", [])
        if not isinstance(traces, list):
            raise ValueError(
                f"{what}: 'traces' must be a list "
                f"(got {type(traces).__name__})"
            )
        return cls(
            traces=list(traces),
            store=dict(_check_obj(payload, "store", what)),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class MetricsFrame:
    """One incremental metrics frame of a live stream (protocol v6).

    ``seq`` counts frames within the subscription, monotone from 0.
    ``elapsed_s`` is the measured wall time since the previous frame
    (0 for the first).  ``stream`` is the frame body -- counter deltas,
    current gauges, sparse latency-bucket deltas and (on the front
    tier) the hot-shard snapshot; its key set is pinned by the server
    tests (:mod:`repro.server.stream`), not by the protocol, which only
    promises a JSON object.  ``history`` is non-empty only on the first
    frame and only when the subscriber asked for ring-buffer history.
    Absent ``final``/``history``/``elapsed_s`` fields read as their
    defaults -- the default-tolerance contract.
    """

    seq: int
    stream: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    final: bool = False
    history: list = field(default_factory=list)
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "metrics",
            "version": self.version,
            "seq": self.seq,
            "elapsed_s": self.elapsed_s,
            "stream": dict(self.stream),
            "final": self.final,
            "history": list(self.history),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MetricsFrame":
        what = "MetricsFrame"
        _check_version(payload, what)
        return cls(
            seq=_check_count(payload, "seq", what, 0),
            stream=dict(_check_obj(payload, "stream", what)),
            elapsed_s=_check_number(payload, "elapsed_s", what, 0.0),
            final=bool(payload.get("final", False)),
            history=list(payload.get("history", [])),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class UnsubscribeResponse:
    """Acknowledgement ending a metrics stream (protocol v6).

    Arrives after the stream's ``final`` frame; ``frames`` is the exact
    number of frames the subscription delivered.
    """

    frames: int = 0
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "unsubscribed",
            "version": self.version,
            "frames": self.frames,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "UnsubscribeResponse":
        _check_version(payload, "UnsubscribeResponse")
        return cls(frames=_check_count(payload, "frames", "UnsubscribeResponse", 0))

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


#: Either response type (what :meth:`repro.api.Engine.serve` returns,
#: plus the serving layer's ``stats``, ``error`` and streaming
#: documents).
Response = Union[
    AnalyzeResponse, ExecuteResponse, StatsResponse, ErrorResponse,
    MetricsFrame, UnsubscribeResponse, TraceResponse,
]


def response_from_json(payload: dict) -> Response:
    """Dispatch a response document on its ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "analyze":
        return AnalyzeResponse.from_json(payload)
    if kind == "execute":
        return ExecuteResponse.from_json(payload)
    if kind == "stats":
        return StatsResponse.from_json(payload)
    if kind == "error":
        return ErrorResponse.from_json(payload)
    if kind == "metrics":
        return MetricsFrame.from_json(payload)
    if kind == "unsubscribed":
        return UnsubscribeResponse.from_json(payload)
    if kind == "trace":
        return TraceResponse.from_json(payload)
    raise ValueError(f"unknown response kind {kind!r}")
