"""Versioned request/response dataclasses with a stable JSON schema.

Every consumer of the analysis pipeline -- the CLI, the batch driver,
the fuzz harness, a future HTTP front-end -- speaks this protocol:

* :class:`AnalyzeRequest` -> :class:`AnalyzeResponse`: compile the
  source and plan one labelled loop (classification, techniques,
  per-array transforms and cascade stages);
* :class:`ExecuteRequest` -> :class:`ExecuteResponse`: additionally run
  the planned loop against concrete inputs under the hybrid runtime and
  report decisions, overheads and the ground-truth verdict.

Schema stability contract: for any response, ``serialize -> deserialize
-> re-serialize`` is byte-identical (enforced by
``tests/unit/test_api_protocol.py``).  :data:`PROTOCOL_VERSION` is part
of every document; a reader must reject documents whose version it does
not understand rather than guess.  The transient ``cached`` flag is
deliberately *not* part of the wire schema (it describes how this
process obtained the document, not the document itself).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "PROTOCOL_VERSION",
    "canonical_json",
    "ArrayPlanSummary",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "ExecuteRequest",
    "ExecuteResponse",
    "request_from_json",
    "response_from_json",
]

#: Bump on any incompatible change to the request/response schemas.
#: Readers reject unknown versions; the engine's disk-cache keys include
#: it, so a bump orphans stale cached responses by construction.
#: v2: real execution backends -- ExecuteRequest grew ``backend`` /
#: ``jobs`` / ``chunk`` selectors, ExecuteResponse reports the backend
#: that ran and its worker/chunk counts.  Responses stay reproducible
#: for a given request *on a given host* (``backend_used``/``jobs``
#: legitimately differ across environments -- fallbacks, CPU counts);
#: real wall-clock time is never reproducible and therefore stays off
#: the wire, on ExecutionReport.
PROTOCOL_VERSION = 2


def canonical_json(payload: dict) -> str:
    """The one true serialization (sorted keys, indent=1) -- the form the
    byte-identity contract and the disk cache are defined over."""
    return json.dumps(payload, indent=1, sort_keys=True)


def _check_version(payload: dict, what: str) -> None:
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ValueError(
            f"{what}: unsupported protocol version {version!r} "
            f"(this reader speaks {PROTOCOL_VERSION})"
        )


# -- requests ----------------------------------------------------------------


@dataclass(frozen=True)
class AnalyzeRequest:
    """Compile *source* and plan the loop labelled *loop*.

    *options* may override the engine's analyzer knobs per request
    (``use_monotonicity``, ``use_reshaping``, ``use_civagg``,
    ``interprocedural``, ``size_cap``, ``work_cap``).
    """

    source: str
    loop: str
    options: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "analyze",
            "version": self.version,
            "source": self.source,
            "loop": self.loop,
            "options": dict(self.options),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AnalyzeRequest":
        _check_version(payload, "AnalyzeRequest")
        return cls(
            source=payload["source"],
            loop=payload["loop"],
            options=dict(payload.get("options", {})),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class ExecuteRequest:
    """Plan *loop* and execute it against concrete inputs.

    *params* maps parameter names to integers; *arrays* maps array names
    to initial contents (missing arrays start zeroed).  ``backend`` /
    ``jobs`` / ``chunk`` select the real execution backend (``None``
    defers to the serving engine's configured defaults); ``chunk`` is a
    ``{"policy": "static"|"dynamic", "size": int|null}`` document.
    """

    source: str
    loop: str
    params: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: exact-test fallback: 'inspector' (hoistable USR evaluation) or
    #: 'tls' (LRPD speculation)
    exact_strategy: str = "inspector"
    #: execution backend ('sequential' | 'thread' | 'process' | 'numpy';
    #: None = engine default)
    backend: Optional[str] = None
    #: worker count for parallel backends (None = engine default)
    jobs: Optional[int] = None
    #: chunk-scheduler spec document (None = engine default)
    chunk: Optional[dict] = None
    options: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict:
        return {
            "kind": "execute",
            "version": self.version,
            "source": self.source,
            "loop": self.loop,
            "params": dict(self.params),
            "arrays": {k: list(v) for k, v in self.arrays.items()},
            "exact_strategy": self.exact_strategy,
            "backend": self.backend,
            "jobs": self.jobs,
            "chunk": dict(self.chunk) if self.chunk is not None else None,
            "options": dict(self.options),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExecuteRequest":
        _check_version(payload, "ExecuteRequest")
        chunk = payload.get("chunk")
        return cls(
            source=payload["source"],
            loop=payload["loop"],
            params=dict(payload.get("params", {})),
            arrays={k: list(v) for k, v in payload.get("arrays", {}).items()},
            exact_strategy=payload.get("exact_strategy", "inspector"),
            backend=payload.get("backend"),
            jobs=payload.get("jobs"),
            chunk=dict(chunk) if chunk is not None else None,
            options=dict(payload.get("options", {})),
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


#: Either request type (what :meth:`repro.api.Engine.serve` accepts).
Request = Union[AnalyzeRequest, ExecuteRequest]


def request_from_json(payload: dict) -> Request:
    """Dispatch a request document on its ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "analyze":
        return AnalyzeRequest.from_json(payload)
    if kind == "execute":
        return ExecuteRequest.from_json(payload)
    raise ValueError(f"unknown request kind {kind!r}")


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class ArrayPlanSummary:
    """Wire form of one :class:`~repro.core.analyzer.ArrayPlan`.

    Cascade fields hold the ordered stage labels of the runtime cascade,
    or ``None`` when no runtime test of that kind is needed.
    """

    array: str
    #: 'shared' | 'private' | 'reduction'
    transform: str
    flow: Optional[list] = None
    output: Optional[list] = None
    slv: Optional[list] = None
    rred: Optional[list] = None
    needs_exact: bool = False
    needs_bounds_comp: bool = False
    extended_reduction: bool = False
    reduction_additive: bool = True
    static_parallel: bool = False

    @classmethod
    def from_plan(cls, plan) -> "ArrayPlanSummary":
        def stages(cascade) -> Optional[list]:
            if cascade is None:
                return None
            return [stage.label for stage in cascade.stages]

        return cls(
            array=plan.array,
            transform=plan.transform,
            flow=stages(plan.flow),
            output=stages(plan.output),
            slv=stages(plan.slv),
            rred=stages(plan.rred),
            needs_exact=plan.needs_exact,
            needs_bounds_comp=plan.needs_bounds_comp,
            extended_reduction=plan.extended_reduction,
            reduction_additive=plan.reduction_additive,
            static_parallel=plan.static_parallel(),
        )

    def to_json(self) -> dict:
        return {
            "array": self.array,
            "transform": self.transform,
            "flow": self.flow,
            "output": self.output,
            "slv": self.slv,
            "rred": self.rred,
            "needs_exact": self.needs_exact,
            "needs_bounds_comp": self.needs_bounds_comp,
            "extended_reduction": self.extended_reduction,
            "reduction_additive": self.reduction_additive,
            "static_parallel": self.static_parallel,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ArrayPlanSummary":
        return cls(
            array=payload["array"],
            transform=payload["transform"],
            flow=payload.get("flow"),
            output=payload.get("output"),
            slv=payload.get("slv"),
            rred=payload.get("rred"),
            needs_exact=payload.get("needs_exact", False),
            needs_bounds_comp=payload.get("needs_bounds_comp", False),
            extended_reduction=payload.get("extended_reduction", False),
            reduction_additive=payload.get("reduction_additive", True),
            static_parallel=payload.get("static_parallel", False),
        )


@dataclass
class AnalyzeResponse:
    """The plan for one loop, in wire form."""

    digest: str
    loop: str
    classification: str
    techniques: list = field(default_factory=list)
    static_parallel: bool = False
    runtime_tested: bool = False
    needs_exact_fallback: bool = False
    has_scalar_dependence: bool = False
    approximate: bool = False
    is_while: bool = False
    civs: list = field(default_factory=list)
    arrays: list = field(default_factory=list)
    version: int = PROTOCOL_VERSION
    #: served from a cache (process-local; never serialized)
    cached: bool = False

    @classmethod
    def from_plan(cls, plan, digest: str) -> "AnalyzeResponse":
        return cls(
            digest=digest,
            loop=plan.label,
            classification=plan.classification(),
            techniques=plan.techniques(),
            static_parallel=plan.static_parallel(),
            runtime_tested=plan.runtime_tested(),
            needs_exact_fallback=plan.needs_exact_fallback(),
            has_scalar_dependence=plan.has_scalar_dependence(),
            approximate=plan.approximate,
            is_while=plan.is_while,
            civs=[info.name for info in plan.civs],
            arrays=[
                ArrayPlanSummary.from_plan(p)
                for _, p in sorted(plan.arrays.items())
            ],
        )

    def to_json(self) -> dict:
        return {
            "kind": "analyze",
            "version": self.version,
            "digest": self.digest,
            "loop": self.loop,
            "classification": self.classification,
            "techniques": list(self.techniques),
            "static_parallel": self.static_parallel,
            "runtime_tested": self.runtime_tested,
            "needs_exact_fallback": self.needs_exact_fallback,
            "has_scalar_dependence": self.has_scalar_dependence,
            "approximate": self.approximate,
            "is_while": self.is_while,
            "civs": list(self.civs),
            "arrays": [a.to_json() for a in self.arrays],
        }

    @classmethod
    def from_json(cls, payload: dict, cached: bool = False) -> "AnalyzeResponse":
        _check_version(payload, "AnalyzeResponse")
        return cls(
            digest=payload["digest"],
            loop=payload["loop"],
            classification=payload["classification"],
            techniques=list(payload.get("techniques", [])),
            static_parallel=payload.get("static_parallel", False),
            runtime_tested=payload.get("runtime_tested", False),
            needs_exact_fallback=payload.get("needs_exact_fallback", False),
            has_scalar_dependence=payload.get("has_scalar_dependence", False),
            approximate=payload.get("approximate", False),
            is_while=payload.get("is_while", False),
            civs=list(payload.get("civs", [])),
            arrays=[
                ArrayPlanSummary.from_json(a)
                for a in payload.get("arrays", [])
            ],
            cached=cached,
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


@dataclass
class ExecuteResponse:
    """The outcome of one planned execution, in wire form.

    Per-iteration cost vectors are intentionally summarized (``trips``)
    rather than shipped; the simulated-timing API stays on
    :class:`~repro.runtime.ExecutionReport`.
    """

    digest: str
    loop: str
    classification: str
    parallel: bool
    correct: bool
    #: array -> {'strategy', 'via', 'passed_stage'}
    decisions: dict = field(default_factory=dict)
    trips: int = 0
    seq_work: float = 0.0
    test_overhead: float = 0.0
    test_leaf_overhead: float = 0.0
    civ_overhead: float = 0.0
    bounds_overhead: float = 0.0
    inspector_overhead: float = 0.0
    speculation_overhead: float = 0.0
    used_speculation: bool = False
    misspeculated: bool = False
    #: backend the caller requested
    backend: str = "sequential"
    #: backend that actually ran the loop ('' for sequential outcomes)
    backend_used: str = ""
    #: workers that participated in the real parallel execution
    jobs: int = 1
    #: chunks the iteration space was carved into
    chunks: int = 0
    version: int = PROTOCOL_VERSION
    #: served from a cache (process-local; never serialized)
    cached: bool = False

    @classmethod
    def from_report(
        cls, report, classification: str, digest: str
    ) -> "ExecuteResponse":
        return cls(
            digest=digest,
            loop=report.label,
            classification=classification,
            parallel=report.parallel,
            correct=report.correct,
            decisions={
                name: {
                    "strategy": d.strategy,
                    "via": d.via,
                    "passed_stage": d.passed_stage,
                }
                for name, d in sorted(report.decisions.items())
            },
            trips=len(report.iteration_costs),
            seq_work=report.seq_work,
            test_overhead=report.test_overhead,
            test_leaf_overhead=report.test_leaf_overhead,
            civ_overhead=report.civ_overhead,
            bounds_overhead=report.bounds_overhead,
            inspector_overhead=report.inspector_overhead,
            speculation_overhead=report.speculation_overhead,
            used_speculation=report.used_speculation,
            misspeculated=report.misspeculated,
            backend=report.backend,
            backend_used=report.backend_used,
            jobs=report.jobs,
            chunks=report.chunks,
        )

    def to_json(self) -> dict:
        return {
            "kind": "execute",
            "version": self.version,
            "digest": self.digest,
            "loop": self.loop,
            "classification": self.classification,
            "parallel": self.parallel,
            "correct": self.correct,
            "decisions": {
                name: dict(d) for name, d in sorted(self.decisions.items())
            },
            "trips": self.trips,
            "seq_work": self.seq_work,
            "test_overhead": self.test_overhead,
            "test_leaf_overhead": self.test_leaf_overhead,
            "civ_overhead": self.civ_overhead,
            "bounds_overhead": self.bounds_overhead,
            "inspector_overhead": self.inspector_overhead,
            "speculation_overhead": self.speculation_overhead,
            "used_speculation": self.used_speculation,
            "misspeculated": self.misspeculated,
            "backend": self.backend,
            "backend_used": self.backend_used,
            "jobs": self.jobs,
            "chunks": self.chunks,
        }

    @classmethod
    def from_json(cls, payload: dict, cached: bool = False) -> "ExecuteResponse":
        _check_version(payload, "ExecuteResponse")
        return cls(
            digest=payload["digest"],
            loop=payload["loop"],
            classification=payload["classification"],
            parallel=payload["parallel"],
            correct=payload["correct"],
            decisions={
                name: dict(d)
                for name, d in payload.get("decisions", {}).items()
            },
            trips=payload.get("trips", 0),
            seq_work=payload.get("seq_work", 0.0),
            test_overhead=payload.get("test_overhead", 0.0),
            test_leaf_overhead=payload.get("test_leaf_overhead", 0.0),
            civ_overhead=payload.get("civ_overhead", 0.0),
            bounds_overhead=payload.get("bounds_overhead", 0.0),
            inspector_overhead=payload.get("inspector_overhead", 0.0),
            speculation_overhead=payload.get("speculation_overhead", 0.0),
            used_speculation=payload.get("used_speculation", False),
            misspeculated=payload.get("misspeculated", False),
            backend=payload.get("backend", "sequential"),
            backend_used=payload.get("backend_used", ""),
            jobs=payload.get("jobs", 1),
            chunks=payload.get("chunks", 0),
            cached=cached,
        )

    def canonical_text(self) -> str:
        return canonical_json(self.to_json())


#: Either response type (what :meth:`repro.api.Engine.serve` returns).
Response = Union[AnalyzeResponse, ExecuteResponse]


def response_from_json(payload: dict) -> Response:
    """Dispatch a response document on its ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "analyze":
        return AnalyzeResponse.from_json(payload)
    if kind == "execute":
        return ExecuteResponse.from_json(payload)
    raise ValueError(f"unknown response kind {kind!r}")
