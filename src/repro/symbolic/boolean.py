"""Symbolic boolean expressions -- the leaves of the PDAG predicate language.

A leaf predicate is a comparison between integer expressions (kept in a
canonical ``e OP 0`` form), a divisibility fact used by the interleaved-
access disjointness rule, or a small and/or/not combination thereof.  The
PDAG language of :mod:`repro.pdag` layers loop-level conjunction and
call-site nodes on top of these leaves.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Mapping

from .expr import EvalEnv, Expr, ExprLike, as_expr

__all__ = [
    "BoolExpr",
    "BTrue",
    "BFalse",
    "TRUE",
    "FALSE",
    "Cmp",
    "Divides",
    "NotB",
    "AndB",
    "OrB",
    "b_and",
    "b_or",
    "b_not",
    "ge0",
    "gt0",
    "eq0",
    "ne0",
    "cmp_ge",
    "cmp_gt",
    "cmp_le",
    "cmp_lt",
    "cmp_eq",
    "cmp_ne",
    "divides",
]


class BoolExpr:
    """Base class of symbolic boolean expressions.

    Instances are immutable, hashable, and evaluable against a runtime
    environment.  ``is_true()`` / ``is_false()`` report *syntactic*
    certainty only.
    """

    __slots__ = ("_hash_cache", "_free_cache")

    def evaluate(self, env: EvalEnv) -> bool:
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        """Free symbols, cached per node (predicates share subtrees
        heavily; see the matching caches on Expr and PDAG)."""
        cached = getattr(self, "_free_cache", None)
        if cached is None:
            cached = self._free_symbols()
            self._free_cache = cached
        return cached

    def _free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        raise NotImplementedError

    def key(self) -> tuple:
        raise NotImplementedError

    def is_true(self) -> bool:
        return isinstance(self, BTrue)

    def is_false(self) -> bool:
        return isinstance(self, BFalse)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.key() == other.key()

    def __hash__(self) -> int:
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((type(self).__name__,) + self.key())
            self._hash_cache = cached
        return cached


class BTrue(BoolExpr):
    """The constant true predicate."""

    __slots__ = ()

    def evaluate(self, env: EvalEnv) -> bool:
        return True

    def _free_symbols(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return self

    def key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "true"


class BFalse(BoolExpr):
    """The constant false predicate."""

    __slots__ = ()

    def evaluate(self, env: EvalEnv) -> bool:
        return False

    def _free_symbols(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return self

    def key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "false"


TRUE = BTrue()
FALSE = BFalse()

_OPS = {
    ">": lambda v: v > 0,
    ">=": lambda v: v >= 0,
    "==": lambda v: v == 0,
    "!=": lambda v: v != 0,
}

_NEGATED = {">": "<=", ">=": "<", "==": "!=", "!=": "=="}


class Cmp(BoolExpr):
    """A canonical comparison ``expr OP 0`` with OP in ``> >= == !=``.

    Use the module-level constructors (:func:`cmp_ge` etc.) which fold
    constant operands and normalize ``<``/``<=`` away.
    """

    __slots__ = ("expr", "op")

    def __init__(self, expr: Expr, op: str):
        if op not in _OPS:
            raise ValueError(f"bad canonical comparison operator {op!r}")
        self.expr = expr
        self.op = op

    def evaluate(self, env: EvalEnv) -> bool:
        return _OPS[self.op](self.expr.evaluate(env))

    def _free_symbols(self) -> frozenset[str]:
        return self.expr.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return _make_cmp(self.expr.substitute(mapping), self.op)

    def negated(self) -> "BoolExpr":
        if self.op == ">":
            return _make_cmp(-self.expr, ">=")
        if self.op == ">=":
            return _make_cmp(-self.expr, ">")
        return _make_cmp(self.expr, "!=" if self.op == "==" else "==")

    def key(self) -> tuple:
        return (self.expr, self.op)

    def __repr__(self) -> str:
        return f"({self.expr!r} {self.op} 0)"


class Divides(BoolExpr):
    """``k | expr`` -- the constant *k* divides the expression's value."""

    __slots__ = ("k", "expr")

    def __init__(self, k: int, expr: ExprLike):
        if k <= 0:
            raise ValueError("divisor must be a positive constant")
        self.k = k
        self.expr = as_expr(expr)

    def evaluate(self, env: EvalEnv) -> bool:
        return self.expr.evaluate(env) % self.k == 0

    def _free_symbols(self) -> frozenset[str]:
        return self.expr.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return divides(self.k, self.expr.substitute(mapping))

    def key(self) -> tuple:
        return (self.k, self.expr)

    def __repr__(self) -> str:
        return f"({self.k} | {self.expr!r})"


class NotB(BoolExpr):
    """Logical negation of a leaf that has no cheaper negated form."""

    __slots__ = ("arg",)

    def __init__(self, arg: BoolExpr):
        self.arg = arg

    def evaluate(self, env: EvalEnv) -> bool:
        return not self.arg.evaluate(env)

    def _free_symbols(self) -> frozenset[str]:
        return self.arg.free_symbols()

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return b_not(self.arg.substitute(mapping))

    def key(self) -> tuple:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


class _NaryBool(BoolExpr):
    """Shared implementation of flat n-ary and/or leaves."""

    __slots__ = ("args",)
    _neutral: BoolExpr
    _absorbing: BoolExpr
    _symbol: str

    def __init__(self, args: Iterable[BoolExpr]):
        self.args = tuple(args)
        if len(self.args) < 2:
            raise ValueError("n-ary boolean needs at least two arguments")

    def _free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out

    def key(self) -> tuple:
        return (frozenset(self.args),)

    def __repr__(self) -> str:
        inside = f" {self._symbol} ".join(repr(a) for a in self.args)
        return f"({inside})"


class AndB(_NaryBool):
    """Flat n-ary conjunction of boolean leaves."""

    __slots__ = ()
    _symbol = "&&"

    def evaluate(self, env: EvalEnv) -> bool:
        return all(a.evaluate(env) for a in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return b_and(*(a.substitute(mapping) for a in self.args))


class OrB(_NaryBool):
    """Flat n-ary disjunction of boolean leaves."""

    __slots__ = ()
    _symbol = "||"

    def evaluate(self, env: EvalEnv) -> bool:
        return any(a.evaluate(env) for a in self.args)

    def substitute(self, mapping: Mapping[str, Expr]) -> "BoolExpr":
        return b_or(*(a.substitute(mapping) for a in self.args))


def _make_cmp(expr: Expr, op: str) -> BoolExpr:
    if expr.is_constant():
        return TRUE if _OPS[op](expr.constant_value()) else FALSE
    # Normalize by the content gcd: 2*N - 4 > 0  ==  N - 2 > 0.
    g = expr.content_gcd()
    if g > 1:
        if op in (">=", "==", "!="):
            expr = Expr._from_terms({m: c // g for m, c in expr.terms})
        elif op == ">":
            # g*e > 0 iff e > 0 for positive g.
            expr = Expr._from_terms({m: c // g for m, c in expr.terms})
    return Cmp(expr, op)


def cmp_gt(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a > b``."""
    return _make_cmp(as_expr(a) - as_expr(b), ">")


def cmp_ge(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a >= b``."""
    return _make_cmp(as_expr(a) - as_expr(b), ">=")


def cmp_lt(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a < b``."""
    return cmp_gt(b, a)


def cmp_le(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a <= b``."""
    return cmp_ge(b, a)


def cmp_eq(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a == b``."""
    return _make_cmp(as_expr(a) - as_expr(b), "==")


def cmp_ne(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a != b``."""
    return _make_cmp(as_expr(a) - as_expr(b), "!=")


def gt0(e: ExprLike) -> BoolExpr:
    """``e > 0``."""
    return _make_cmp(as_expr(e), ">")


def ge0(e: ExprLike) -> BoolExpr:
    """``e >= 0``."""
    return _make_cmp(as_expr(e), ">=")


def eq0(e: ExprLike) -> BoolExpr:
    """``e == 0``."""
    return _make_cmp(as_expr(e), "==")


def ne0(e: ExprLike) -> BoolExpr:
    """``e != 0``."""
    return _make_cmp(as_expr(e), "!=")


def divides(k: int, e: ExprLike) -> BoolExpr:
    """``k | e`` with constant folding."""
    if k <= 0:
        raise ValueError("divisor must be positive")
    e = as_expr(e)
    if k == 1:
        return TRUE
    if e.is_constant():
        return TRUE if e.constant_value() % k == 0 else FALSE
    # If every coefficient shares a factor with k we can reduce both sides.
    g = gcd(k, e.content_gcd())
    if g == k:
        return TRUE
    return Divides(k, e)


def b_not(arg: BoolExpr) -> BoolExpr:
    """Logical negation with constant folding and comparison flipping."""
    if arg.is_true():
        return FALSE
    if arg.is_false():
        return TRUE
    if isinstance(arg, Cmp):
        return arg.negated()
    if isinstance(arg, NotB):
        return arg.arg
    if isinstance(arg, AndB):
        return b_or(*(b_not(a) for a in arg.args))
    if isinstance(arg, OrB):
        return b_and(*(b_not(a) for a in arg.args))
    return NotB(arg)


def _flatten(cls: type, args: Iterable[BoolExpr]) -> list[BoolExpr]:
    out: list[BoolExpr] = []
    seen: set[BoolExpr] = set()
    for a in args:
        children = a.args if isinstance(a, cls) else (a,)
        for c in children:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


def _absorb_bool(args: list[BoolExpr], inner: type) -> list[BoolExpr]:
    """Absorption over leaf combinations (see :func:`repro.pdag.p_or`)."""
    if len(args) < 2:
        return args
    part_sets = [
        frozenset(a.args) if isinstance(a, inner) else frozenset((a,)) for a in args
    ]
    kept: list[BoolExpr] = []
    for i, a in enumerate(args):
        redundant = False
        for j, other in enumerate(part_sets):
            if i == j:
                continue
            if other < part_sets[i] or (other == part_sets[i] and j < i):
                redundant = True
                break
        if not redundant:
            kept.append(a)
    return kept


def b_and(*args: BoolExpr) -> BoolExpr:
    """Flat conjunction with folding, deduplication and absorption."""
    flat = _absorb_bool(_flatten(AndB, args), OrB)
    kept = [a for a in flat if not a.is_true()]
    if any(a.is_false() for a in kept):
        return FALSE
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return AndB(kept)


def b_or(*args: BoolExpr) -> BoolExpr:
    """Flat disjunction with folding, deduplication, absorption, and
    complementary-pair detection (``C or not C -> true``, which is what
    collapses the cross-branch terms of mutually exclusive gates)."""
    flat = _absorb_bool(_flatten(OrB, args), AndB)
    kept = [a for a in flat if not a.is_false()]
    if any(a.is_true() for a in kept):
        return TRUE
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    seen = set(kept)
    for a in kept:
        if isinstance(a, Cmp) and a.negated() in seen:
            return TRUE
        if isinstance(a, NotB) and a.arg in seen:
            return TRUE
    return OrB(kept)
