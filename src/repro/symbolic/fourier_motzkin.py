"""Symbolic Fourier-Motzkin-style elimination (Fig. 6(b) of the paper).

``REDUCE_GT_0`` receives an integer expression ``expr`` and returns a
*sufficient* predicate for ``expr > 0`` that no longer mentions the
eliminated (ranged) symbols.  The rule implemented is exactly the paper's:

    expr = a*i + b,  L <= i <= U,  i not in b
    P = [a >= 0  and  a*L + b > 0]  or  [a < 0  and  a*U + b > 0]

where the four subproblems recurse with a strictly smaller exponent of
``i`` (``a`` may still mention ``i`` for super-linear inputs), so the
recursion terminates -- in exponential time in the number of eliminated
symbols, as the paper notes in Section 3.6.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import profiling as _profiling
from .boolean import FALSE, TRUE, BoolExpr, b_and, b_or, gt0
from .expr import Expr, ExprLike, as_expr
from .intern import Memo
from .ranges import BoundsEnv, freeze_bounds_env, try_sign

__all__ = ["reduce_gt0", "reduce_ge0", "eliminate_symbol"]

#: Hard cap on recursion depth: the typical use eliminates one outer-loop
#: index (Section 3.6), so a small cap loses nothing in practice while
#: bounding compile time.
_MAX_DEPTH = 24


def _find_symbol(expr: Expr, bounds: BoundsEnv, order: Sequence[str]) -> Optional[str]:
    """Pick the next symbol to eliminate: honours *order*, else any ranged
    symbol occurring affinely-decomposably in *expr*."""
    present = expr.free_symbols()
    for name in order:
        if name in present and name in bounds:
            return name
    for name in sorted(present):
        if name in bounds:
            return name
    return None


def _decompose(expr: Expr, name: str) -> tuple[Expr, Expr]:
    """Write ``expr = a*name + b`` with ``name`` not in ``b``.

    For super-linear occurrences, ``a`` keeps the residual powers (degree
    reduced by one), matching the paper's termination argument.  Opaque
    atoms that mention *name* (e.g. ``IA(i)``) cannot be decomposed; the
    caller must treat the expression as irreducible then.
    """
    from .expr import Sym

    target = Sym(name)
    a_terms: dict = {}
    b_terms: dict = {}
    for mono, coeff in expr.terms:
        powers = dict(mono)
        if target in powers:
            new_powers = dict(powers)
            if new_powers[target] == 1:
                del new_powers[target]
            else:
                new_powers[target] -= 1
            key = tuple(sorted(new_powers.items(), key=lambda ap: ap[0]._order_key()))
            a_terms[key] = a_terms.get(key, 0) + coeff
        else:
            b_terms[mono] = b_terms.get(mono, 0) + coeff
    return (Expr._from_terms(a_terms), Expr._from_terms(b_terms))


def _decomposable(expr: Expr, name: str) -> bool:
    """True when every occurrence of *name* is as a plain symbol power."""
    from .expr import Sym

    for mono, _ in expr.terms:
        for atom, _p in mono:
            if name in atom.free_symbols() and not (
                isinstance(atom, Sym) and atom.name == name
            ):
                return False
    return True


#: Memo for :func:`reduce_gt0`.  The elimination is exponential in the
#: eliminated symbols (Section 3.6) and the same subproblems recur both
#: within one elimination (the four-way case split shares ``a``/``b``
#: pieces) and across simplification passes; the recursion depth is part
#: of the key so cold and warm runs produce bit-identical predicates.
_REDUCE_MEMO = Memo("symbolic.reduce_gt0", max_size=500_000)


def reduce_gt0(
    expr: ExprLike,
    bounds: BoundsEnv,
    order: Sequence[str] = (),
    _depth: int = 0,
) -> BoolExpr:
    """A sufficient predicate for ``expr > 0`` free of the ranged symbols.

    *bounds* maps symbol names to inclusive ``(lower, upper)`` expressions;
    *order* optionally prioritizes elimination (outermost loop index first,
    per Section 3.6).  Falls back to the raw comparison when no eliminable
    symbol remains.  Memoized on interned identities; the environment is
    frozen once here and threaded through the (exponential) recursion so
    the hot path never re-canonicalizes it.
    """
    return _reduce_cached(
        as_expr(expr), bounds, freeze_bounds_env(bounds), tuple(order), _depth
    )


def _reduce_cached(
    expr: Expr,
    bounds: BoundsEnv,
    fenv: tuple,
    order: tuple,
    depth: int,
) -> BoolExpr:
    key = (expr, fenv, order, depth)
    cached = _REDUCE_MEMO.get(key)
    if cached is not None:
        return cached
    return _REDUCE_MEMO.put(key, _reduce_gt0(expr, bounds, fenv, order, depth))


def _reduce_gt0(
    expr: Expr,
    bounds: BoundsEnv,
    fenv: tuple,
    order: Sequence[str],
    _depth: int,
) -> BoolExpr:
    sign = try_sign(expr, bounds)
    if sign == "+":
        return TRUE
    if sign in ("-", "0"):
        return FALSE
    if _depth >= _MAX_DEPTH:
        return FALSE  # give up conservatively: predicate is only sufficient
    name = _find_symbol(expr, bounds, order)
    if name is None or not _decomposable(expr, name):
        return gt0(expr)
    lower, upper = (as_expr(b) for b in bounds[name])
    a, b = _decompose(expr, name)
    # a >= 0  <=>  a + 1 > 0 over the integers.
    sub = {name: lower}
    at_lower = (a * lower + b).substitute(sub) if a.depends_on(name) else a * lower + b
    case_nonneg = b_and(
        _reduce_cached(a + 1, bounds, fenv, tuple(order), _depth + 1),
        _reduce_cached(at_lower, bounds, fenv, tuple(order), _depth + 1),
    )
    sub = {name: upper}
    at_upper = (a * upper + b).substitute(sub) if a.depends_on(name) else a * upper + b
    case_neg = b_and(
        _reduce_cached(-a, bounds, fenv, tuple(order), _depth + 1),
        _reduce_cached(at_upper, bounds, fenv, tuple(order), _depth + 1),
    )
    return b_or(case_nonneg, case_neg)


def reduce_ge0(expr: ExprLike, bounds: BoundsEnv, order: Sequence[str] = ()) -> BoolExpr:
    """A sufficient predicate for ``expr >= 0`` (integers: ``expr+1 > 0``)."""
    return reduce_gt0(as_expr(expr) + 1, bounds, order)


_ELIM_MEMO = Memo("symbolic.eliminate_symbol", max_size=200_000)


@_profiling.timed("fm.eliminate_symbol")
def eliminate_symbol(
    pred: BoolExpr, name: str, lower: ExprLike, upper: ExprLike
) -> BoolExpr:
    """Eliminate one ranged symbol from every comparison leaf of *pred*.

    Comparisons are strengthened via :func:`reduce_gt0`; leaves that do not
    mention *name* pass through unchanged.  Used when hoisting a leaf
    predicate out of its surrounding loop node (Section 3.5).  Memoized:
    the same (leaf, loop) pairs recur across simplification passes and
    cascade stages.
    """
    key = (pred, name, as_expr(lower), as_expr(upper))
    cached = _ELIM_MEMO.get(key)
    if cached is not None:
        return cached
    return _ELIM_MEMO.put(key, _eliminate_symbol(pred, name, lower, upper))


def _eliminate_symbol(
    pred: BoolExpr, name: str, lower: ExprLike, upper: ExprLike
) -> BoolExpr:
    from .boolean import AndB, Cmp, Divides, NotB, OrB

    if name not in pred.free_symbols():
        return pred
    bounds = {name: (as_expr(lower), as_expr(upper))}
    if isinstance(pred, Cmp):
        if pred.op == ">":
            return reduce_gt0(pred.expr, bounds, order=(name,))
        if pred.op == ">=":
            return reduce_ge0(pred.expr, bounds, order=(name,))
        # Equalities/disequalities over a ranged symbol have no useful
        # sufficient strengthening here; keep them (they stay loop-bound).
        return pred
    if isinstance(pred, AndB):
        return b_and(*(eliminate_symbol(a, name, lower, upper) for a in pred.args))
    if isinstance(pred, OrB):
        # A disjunction is strengthened disjunct-wise only if each disjunct
        # can be strengthened independently (sound: each implies original).
        return b_or(*(eliminate_symbol(a, name, lower, upper) for a in pred.args))
    if isinstance(pred, (NotB, Divides)):
        return pred
    return pred
