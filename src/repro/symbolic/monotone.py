"""Monotone-sequence reasoning over opaque array atoms.

CIV aggregation (Section 3.3) represents a conditionally incremented
induction variable's per-iteration values as an opaque prefix array
``$civ(i)``; when every increment is provably non-negative the sequence
is non-decreasing.  The factorizer exploits this to discharge leaf
predicates like ``$civ(i+1) - $civ(i) >= 0`` that no purely algebraic
rule can see.

``provably_nonneg`` decomposes an expression into terms over monotone
arrays plus a residue: pairs ``+c*A(x) - c*A(y)`` with ``x - y`` a
non-negative constant contribute >= 0 for a non-decreasing ``A``; the
residue is checked by range propagation.
"""

from __future__ import annotations

from typing import FrozenSet

from .boolean import AndB, BoolExpr, Cmp, OrB, b_and, b_or
from .expr import ArrayRef, Expr
from .ranges import BoundsEnv, try_sign

__all__ = ["provably_nonneg", "provably_positive", "monotone_simplify"]


def _split_monotone_terms(
    expr: Expr, monotone: FrozenSet[str]
) -> tuple[list[tuple[int, str, Expr]], Expr]:
    """Split into ``(coeff, array, index)`` monotone terms and a residue.

    Only degree-1 monomials that are exactly one monotone-array atom are
    extracted; everything else lands in the residue.
    """
    terms: list[tuple[int, str, Expr]] = []
    residue: dict = {}
    for mono, coeff in expr.terms:
        if len(mono) == 1:
            atom, power = mono[0]
            if (
                power == 1
                and isinstance(atom, ArrayRef)
                and atom.array in monotone
                and len(atom.indices) == 1
            ):
                terms.append((coeff, atom.array, atom.indices[0]))
                continue
        residue[mono] = residue.get(mono, 0) + coeff
    return terms, Expr._from_terms(residue)


def _pair_off(terms: list[tuple[int, str, Expr]]) -> bool:
    """Try to cancel all monotone terms into ``>= 0`` pairs.

    Greedy matching: each negative-coefficient term must find a positive
    term on the same array, with the same magnitude, whose index is
    greater or equal by a constant.  Unmatched positive terms are NOT
    allowed (their sign is unknown), so success means the monotone part
    is provably >= 0 exactly through pairing.
    """
    positives = [t for t in terms if t[0] > 0]
    negatives = [t for t in terms if t[0] < 0]
    for n_coeff, n_arr, n_idx in negatives:
        matched = None
        for k, (p_coeff, p_arr, p_idx) in enumerate(positives):
            if p_arr != n_arr or p_coeff != -n_coeff:
                continue
            diff = p_idx - n_idx
            if diff.is_constant() and diff.constant_value() >= 0:
                matched = k
                break
        if matched is None:
            return False
        positives.pop(matched)
    return not positives


def provably_nonneg(
    expr: Expr, monotone: FrozenSet[str], bounds: BoundsEnv = {}
) -> bool:
    """True when ``expr >= 0`` follows from monotone facts + ranges."""
    if try_sign(expr, bounds) in ("+", "0"):
        return True
    terms, residue = _split_monotone_terms(expr, monotone)
    if not terms:
        return False
    if not _pair_off(terms):
        return False
    return try_sign(residue, bounds) in ("+", "0")


def provably_positive(
    expr: Expr, monotone: FrozenSet[str], bounds: BoundsEnv = {}
) -> bool:
    """True when ``expr > 0`` follows from monotone facts + ranges."""
    if try_sign(expr, bounds) == "+":
        return True
    terms, residue = _split_monotone_terms(expr, monotone)
    if not terms:
        return False
    if not _pair_off(terms):
        return False
    return try_sign(residue, bounds) == "+"


def monotone_simplify(pred: BoolExpr, monotone: FrozenSet[str]) -> BoolExpr:
    """Fold comparison leaves that monotone facts prove true."""
    if not monotone:
        return pred
    if isinstance(pred, Cmp):
        from .boolean import TRUE

        if pred.op == ">=" and provably_nonneg(pred.expr, monotone):
            return TRUE
        if pred.op == ">" and provably_positive(pred.expr, monotone):
            return TRUE
        return pred
    if isinstance(pred, AndB):
        return b_and(*(monotone_simplify(a, monotone) for a in pred.args))
    if isinstance(pred, OrB):
        return b_or(*(monotone_simplify(a, monotone) for a in pred.args))
    return pred
